"""Exception hierarchy for the repro package.

Keeping a small, explicit hierarchy lets callers distinguish data problems
(bad case files, inconsistent networks) from numerical failures (a solver
that did not converge) without string matching on messages.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class DataError(ReproError):
    """A case file or network description is malformed or inconsistent."""


class CaseNotFoundError(DataError):
    """A named case is not registered and no file with that name exists."""


class ConvergenceError(ReproError):
    """An iterative solver failed to reach its termination criterion."""

    def __init__(self, message: str, *, iterations: int | None = None,
                 residual: float | None = None) -> None:
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual


class DimensionError(ReproError):
    """An array argument has an unexpected shape."""


class ConfigurationError(ReproError):
    """Solver options are inconsistent or out of range."""
