"""repro — GPU-style component-based two-level ADMM for AC optimal power flow.

A pure-Python reproduction of "Accelerated Computation and Tracking of AC
Optimal Power Flow Solutions Using GPUs" (Kim & Kim, ICPP 2022): the
component-based two-level ADMM solver (ExaAdmm), the batched trust-region
Newton solver for its branch subproblems (ExaTron), a centralized
interior-point baseline (the paper's Ipopt reference), and the multi-period
warm-start tracking experiment, together with the grid/power-flow substrate
they need.

Quick start::

    import repro

    network = repro.load_case("case9")
    solution = repro.solve_acopf_admm(network)
    print(solution.objective, solution.max_constraint_violation)

See ``README.md`` for the architecture overview, ``DESIGN.md`` for the system
inventory, and ``EXPERIMENTS.md`` for the reproduction of every table and
figure of the paper.
"""

from repro.admm import (
    AdmmParameters,
    AdmmSolution,
    AdmmSolver,
    BatchAdmmSolver,
    scenario_parameters,
    solve_acopf_admm,
    solve_acopf_admm_batch,
)
from repro.admm.parameters import parameters_for_case, suggest_penalties
from repro.analysis import constraint_violation, evaluate_solution, relative_objective_gap
from repro.baseline import BaselineSolution, InteriorPointOptions, solve_acopf_ipm
from repro.grid import Network, available_cases, load_case, make_synthetic_grid
from repro.powerflow import branch_flows, dc_power_flow, solve_power_flow
from repro.scenarios import (
    Scenario,
    ScenarioSet,
    contingency_scenarios,
    load_scaling_scenarios,
    monte_carlo_load_scenarios,
    penalty_sweep_scenarios,
    period_scenario_sets,
    tracking_fleet,
)
from repro.parallel import (
    DevicePool,
    FaultPlan,
    FaultSpec,
    KernelBackend,
    PoolReport,
    available_backends,
    get_backend,
    register_backend,
    solve_acopf_admm_pool,
)
from repro.tracking import (
    WarmStartCache,
    make_load_profile,
    track_horizon,
    track_horizon_batch,
)

__version__ = "1.0.0"

__all__ = [
    "AdmmParameters",
    "AdmmSolution",
    "AdmmSolver",
    "solve_acopf_admm",
    "BatchAdmmSolver",
    "DevicePool",
    "FaultPlan",
    "FaultSpec",
    "PoolReport",
    "solve_acopf_admm_batch",
    "solve_acopf_admm_pool",
    "scenario_parameters",
    "Scenario",
    "ScenarioSet",
    "contingency_scenarios",
    "load_scaling_scenarios",
    "monte_carlo_load_scenarios",
    "penalty_sweep_scenarios",
    "parameters_for_case",
    "suggest_penalties",
    "constraint_violation",
    "evaluate_solution",
    "relative_objective_gap",
    "BaselineSolution",
    "InteriorPointOptions",
    "KernelBackend",
    "available_backends",
    "get_backend",
    "register_backend",
    "solve_acopf_ipm",
    "Network",
    "available_cases",
    "load_case",
    "make_synthetic_grid",
    "branch_flows",
    "dc_power_flow",
    "solve_power_flow",
    "make_load_profile",
    "period_scenario_sets",
    "tracking_fleet",
    "track_horizon",
    "track_horizon_batch",
    "WarmStartCache",
    "__version__",
]
