"""Convenience layer for solving batches of structured problems with TRON.

The ADMM branch update builds one :class:`BatchProblem` per ADMM iteration
(the objective coefficients change, the structure does not) and hands it to
:func:`solve_batch`.  Two backends are provided:

* ``"batched"`` — the vectorised solver, the analogue of launching one GPU
  thread block per problem (the paper's execution model);
* ``"loop"`` — a reference backend solving one problem at a time with the
  same algorithm, useful for debugging and for the backend-equivalence tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.exceptions import ConfigurationError
from repro.tron.driver import TronResult, tron_solve_batch
from repro.tron.options import TronOptions

BACKENDS = ("batched", "loop")


class BatchProblem(Protocol):
    """A batch of independent bound-constrained problems of equal dimension.

    Problems may additionally implement ``select(index) -> BatchProblem``
    returning a one-problem view; the ``"loop"`` backend then evaluates each
    problem on a single-row slice instead of tiling the query point across
    the whole batch (which costs O(B) redundant work per callback).

    Problems may also implement ``select_rows(indices) -> BatchProblem``
    returning a packed view of an arbitrary row subset.  The batched backend
    then stream-compacts: once most problems have converged, the TRON driver
    gathers the active rows, evaluates the callbacks on the packed
    sub-batch, and scatters results back — bitwise identical to the full
    sweep because the callbacks must be row-separable (each problem's
    values independent of which other rows share the batch).
    """

    lb: np.ndarray
    ub: np.ndarray

    def objective(self, x: np.ndarray) -> np.ndarray:
        """Objective values, shape ``(B,)`` for points ``(B, n)``."""

    def gradient(self, x: np.ndarray) -> np.ndarray:
        """Gradients, shape ``(B, n)``."""

    def hessian(self, x: np.ndarray) -> np.ndarray:
        """Dense Hessians, shape ``(B, n, n)``."""


@dataclass(frozen=True)
class QuadraticBatchProblem:
    """Batch of quadratics ``½ xᵀQx - cᵀx`` with box constraints.

    Mostly used in tests and as the simplest example of the
    :class:`BatchProblem` protocol.
    """

    q: np.ndarray
    c: np.ndarray
    lb: np.ndarray
    ub: np.ndarray

    def objective(self, x: np.ndarray) -> np.ndarray:
        qx = np.einsum("bij,bj->bi", self.q, x)
        return 0.5 * np.einsum("bi,bi->b", x, qx) - np.einsum("bi,bi->b", self.c, x)

    def gradient(self, x: np.ndarray) -> np.ndarray:
        return np.einsum("bij,bj->bi", self.q, x) - self.c

    def hessian(self, x: np.ndarray) -> np.ndarray:
        # Read-only broadcast view: the solver never mutates Hessians, so
        # there is no reason to materialise a fresh (B, n, n) copy per call.
        return np.broadcast_to(self.q, x.shape + (x.shape[-1],))

    def select(self, index: int) -> "QuadraticBatchProblem":
        """One-problem view (single-row evaluation in the loop backend)."""
        sl = slice(index, index + 1)
        return QuadraticBatchProblem(q=self.q[sl], c=self.c[sl],
                                     lb=self.lb[sl], ub=self.ub[sl])

    def select_rows(self, indices: np.ndarray) -> "QuadraticBatchProblem":
        """Packed row-subset view (stream compaction in the batched backend)."""
        indices = np.asarray(indices, dtype=int)
        return QuadraticBatchProblem(q=self.q[indices], c=self.c[indices],
                                     lb=self.lb[indices], ub=self.ub[indices])


def solve_batch(problem: BatchProblem, x0: np.ndarray,
                options: TronOptions | None = None,
                backend: str = "batched",
                kernel_backend=None) -> TronResult:
    """Solve every problem in the batch and return the stacked result.

    ``backend`` picks the execution *strategy* (vectorised vs one-problem
    loop); ``kernel_backend`` picks the kernel *implementation* the driver's
    dense products and compaction gathers run with (a
    :class:`~repro.parallel.backends.base.KernelBackend` or registered
    name; ``None`` resolves the ``REPRO_BACKEND`` environment default).
    """
    if backend not in BACKENDS:
        raise ConfigurationError(f"unknown TRON backend {backend!r}; choose from {BACKENDS}")
    x0 = np.atleast_2d(np.asarray(x0, dtype=float))
    if backend == "batched":
        row_view = getattr(problem, "select_rows", None)
        select_rows = None
        if row_view is not None:
            def select_rows(indices: np.ndarray):
                sub = row_view(indices)
                return sub.objective, sub.gradient, sub.hessian
        return tron_solve_batch(problem.objective, problem.gradient, problem.hessian,
                                x0, problem.lb, problem.ub, options,
                                select_rows=select_rows,
                                kernel_backend=kernel_backend)

    # Loop backend: run the same algorithm one problem at a time.
    batch = x0.shape[0]
    xs, fs, pgs, its, conv = [], [], [], [], []
    total_feval = 0
    lb = np.broadcast_to(problem.lb, x0.shape)
    ub = np.broadcast_to(problem.ub, x0.shape)
    select = getattr(problem, "select", None)
    for b in range(batch):
        idx = slice(b, b + 1)

        if select is not None:
            # Single-row evaluation: the problem can slice its own data, so
            # each callback costs O(1) instead of O(B) tiled work.
            single = select(b)
            obj, grad, hess = single.objective, single.gradient, single.hessian
        else:
            def obj(x: np.ndarray, _i=b) -> np.ndarray:
                return _call_single(problem.objective, x, _i, batch)

            def grad(x: np.ndarray, _i=b) -> np.ndarray:
                return _call_single(problem.gradient, x, _i, batch)

            def hess(x: np.ndarray, _i=b) -> np.ndarray:
                return _call_single(problem.hessian, x, _i, batch)

        res = tron_solve_batch(obj, grad, hess, x0[idx], lb[idx], ub[idx], options,
                               kernel_backend=kernel_backend)
        xs.append(res.x[0])
        fs.append(res.f[0])
        pgs.append(res.projected_gradient_norm[0])
        its.append(res.iterations[0])
        conv.append(res.converged[0])
        total_feval += res.function_evaluations
    return TronResult(x=np.stack(xs), f=np.array(fs),
                      projected_gradient_norm=np.array(pgs),
                      iterations=np.array(its), converged=np.array(conv),
                      function_evaluations=total_feval)


def _call_single(fn, x: np.ndarray, index: int, batch: int) -> np.ndarray:
    """Evaluate a batched callback for a single problem (tiling fallback).

    The callbacks of a :class:`BatchProblem` expect a full batch; when the
    problem offers no ``select`` view, the only way to evaluate problem
    ``index`` alone is to tile the query point across the batch axis and
    slice the result — O(B) redundant work per callback, kept purely as the
    fallback for problems whose arrays cannot be sliced.
    """
    tiled = np.repeat(x, batch, axis=0)
    out = np.asarray(fn(tiled))
    return out[index:index + 1]
