"""Batched Steihaug–Toint conjugate gradients for the trust-region subproblem.

Given the quadratic model restricted to the free variables (those not
clamped at a bound by the Cauchy point), the CG loop approximately minimises

``q(w) = -rhsᵀ w + ½ wᵀ H w``   subject to   ``‖w‖ ≤ radius``,

terminating on (i) sufficient residual reduction, (ii) hitting the
trust-region boundary, or (iii) encountering a direction of negative
curvature, which is followed to the boundary — the mechanism the paper relies
on to handle the nonconvexity of the branch subproblems.

Every quantity carries a leading batch axis; problems finish independently
via boolean masks, emulating ExaTron's per-thread-block control flow.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.parallel.backends import get_backend


@dataclass(frozen=True)
class CgResult:
    """Outcome of one batched Steihaug CG solve."""

    step: np.ndarray
    iterations: np.ndarray
    hit_boundary: np.ndarray
    negative_curvature: np.ndarray


def _boundary_step(w: np.ndarray, d: np.ndarray, radius: np.ndarray) -> np.ndarray:
    """Positive τ with ‖w + τ d‖ = radius (per problem); 0 when d vanishes."""
    dd = np.einsum("...i,...i->...", d, d)
    wd = np.einsum("...i,...i->...", w, d)
    ww = np.einsum("...i,...i->...", w, w)
    safe_dd = np.where(dd > 0, dd, 1.0)
    disc = np.maximum(wd * wd + safe_dd * np.maximum(radius * radius - ww, 0.0), 0.0)
    tau = (-wd + np.sqrt(disc)) / safe_dd
    return np.where(dd > 0, np.maximum(tau, 0.0), 0.0)


def steihaug_cg(hess: np.ndarray, rhs: np.ndarray, radius: np.ndarray,
                free_mask: np.ndarray, tol: float = 0.1,
                max_iter: int | None = None, backend=None) -> CgResult:
    """Approximately solve the batched trust-region subproblems.

    Parameters
    ----------
    hess:
        Hessians ``(B, n, n)``.
    rhs:
        Negative model gradient at the subproblem origin, ``(B, n)``.
    radius:
        Remaining trust-region radius per problem ``(B,)``.
    free_mask:
        Boolean ``(B, n)``; clamped variables are frozen (their step is 0).
    tol:
        Relative residual-reduction target.
    max_iter:
        Cap on CG iterations (default ``n + 1``).
    backend:
        Kernel backend for the Hessian-vector products and inner products
        (``None`` resolves the ``REPRO_BACKEND`` environment default).
    """
    kb = get_backend(backend)
    batch, n = rhs.shape
    if max_iter is None:
        max_iter = n + 1

    free = free_mask.astype(float)
    w = np.zeros_like(rhs)
    r = rhs * free
    d = r.copy()
    r_norm0 = np.linalg.norm(r, axis=-1)
    active = (r_norm0 > 1e-14) & (radius > 0)
    rr = kb.batched_dot(r, r)

    iterations = np.zeros(batch, dtype=int)
    hit_boundary = np.zeros(batch, dtype=bool)
    negative_curvature = np.zeros(batch, dtype=bool)

    for _ in range(max_iter):
        if not active.any():
            break
        hd = kb.batched_matvec(hess, d) * free
        curv = kb.batched_dot(d, hd)

        # Negative (or zero) curvature: follow d to the boundary and stop.
        neg = active & (curv <= 0.0)
        if neg.any():
            tau = _boundary_step(w, d, radius)
            w = np.where(neg[..., None], w + tau[..., None] * d, w)
            negative_curvature |= neg
            hit_boundary |= neg
            active = active & ~neg

        safe_curv = np.where(curv > 0, curv, 1.0)
        alpha = np.where(active, rr / safe_curv, 0.0)
        w_trial = w + alpha[..., None] * d
        too_far = active & (np.linalg.norm(w_trial, axis=-1) >= radius)
        if too_far.any():
            tau = _boundary_step(w, d, radius)
            w = np.where(too_far[..., None], w + tau[..., None] * d, w)
            hit_boundary |= too_far
            active = active & ~too_far

        w = np.where(active[..., None], w_trial, w)
        r_new = r - alpha[..., None] * hd
        rr_new = kb.batched_dot(r_new, r_new)
        iterations = iterations + active.astype(int)

        converged = active & (np.sqrt(rr_new) <= tol * r_norm0)
        active = active & ~converged

        beta = np.where(rr > 0, rr_new / np.where(rr > 0, rr, 1.0), 0.0)
        d = np.where(active[..., None], r_new + beta[..., None] * d, d)
        r = np.where(active[..., None], r_new, r)
        rr = np.where(active, rr_new, rr)

    return CgResult(step=w, iterations=iterations, hit_boundary=hit_boundary,
                    negative_curvature=negative_curvature)
