"""Cauchy-point computation for the batched TRON solver.

The Cauchy point is the first step of every TRON iteration: a point of
sufficient decrease along the projected steepest-descent path

``x(α) = P(x - α g)``

restricted to the trust region.  The initial step size is the smaller of the
trust-region step ``δ/‖g‖`` and the exact minimiser of the quadratic model
along ``-g`` (when the curvature ``gᵀHg`` is positive); if the sufficient
decrease test ``q(s) ≤ μ0 gᵀs`` fails, α is halved — evaluating only the
problems that still fail, so a few stragglers in a large batch do not force
repeated work on the whole batch (the batched analogue of per-thread-block
control flow).
"""

from __future__ import annotations

import numpy as np

from repro.parallel.backends import get_backend
from repro.tron.projection import project


def _quadratic_model(g: np.ndarray, hess: np.ndarray, s: np.ndarray,
                     backend=None) -> np.ndarray:
    """Evaluate ``q(s) = gᵀs + ½ sᵀHs`` per problem."""
    kb = get_backend(backend)
    hs = kb.batched_matvec(hess, s)
    return kb.batched_dot(g, s) + 0.5 * kb.batched_dot(s, hs)


def cauchy_point(x: np.ndarray, g: np.ndarray, hess: np.ndarray, delta: np.ndarray,
                 lb: np.ndarray, ub: np.ndarray, mu0: float = 1e-2,
                 max_steps: int = 25, backend=None) -> tuple[np.ndarray, np.ndarray]:
    """Compute the Cauchy step for each problem in the batch.

    Parameters
    ----------
    x, g, hess:
        Current iterate ``(B, n)``, gradient ``(B, n)``, Hessian ``(B, n, n)``.
    delta:
        Trust-region radius per problem ``(B,)``.
    lb, ub:
        Bounds ``(B, n)``.
    mu0:
        Sufficient-decrease fraction.
    max_steps:
        Cap on interpolation (halving) steps.

    Returns
    -------
    s:
        Cauchy step ``(B, n)``; ``x + s`` lies in the box and ``‖s‖ ≤ δ``.
    alpha:
        The accepted step size per problem ``(B,)`` (zero where no acceptable
        step was found — the driver then shrinks the trust region).
    """
    kb = get_backend(backend)
    gnorm = np.linalg.norm(g, axis=-1)
    positive = gnorm > 0
    safe_gnorm = np.where(positive, gnorm, 1.0)

    hg = kb.batched_matvec(hess, g)
    ghg = kb.batched_dot(g, hg)
    alpha_tr = delta / safe_gnorm
    with np.errstate(divide="ignore", invalid="ignore"):
        alpha_newton = np.where(ghg > 0, gnorm * gnorm / np.where(ghg > 0, ghg, 1.0), np.inf)
    alpha = np.where(positive, np.minimum(alpha_tr, alpha_newton), 0.0)

    def trial_step(alpha_vec: np.ndarray, xs, gs, lbs, ubs) -> np.ndarray:
        return project(xs - alpha_vec[..., None] * gs, lbs, ubs) - xs

    def acceptable(s: np.ndarray, gs, hs, ds) -> np.ndarray:
        grad_dot = kb.batched_dot(gs, s)
        q = _quadratic_model(gs, hs, s, backend=kb)
        within = np.linalg.norm(s, axis=-1) <= ds * (1.0 + 1e-10)
        return (q <= mu0 * grad_dot) & within

    s = trial_step(alpha, x, g, lb, ub)
    ok = acceptable(s, g, hess, delta)

    # Interpolation on the failing subset only.
    failing = np.flatnonzero(~ok & positive)
    for _ in range(max_steps):
        if failing.size == 0:
            break
        alpha[failing] *= 0.5
        s_sub = trial_step(alpha[failing], x[failing], g[failing], lb[failing], ub[failing])
        ok_sub = acceptable(s_sub, g[failing], hess[failing], delta[failing])
        accepted = failing[ok_sub]
        if accepted.size:
            s[accepted] = s_sub[ok_sub]
        failing = failing[~ok_sub]

    # Problems that never produced an acceptable step take a zero step.
    if failing.size:
        s[failing] = 0.0
        alpha[failing] = 0.0
    return s, alpha
