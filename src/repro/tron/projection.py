"""Bound-projection utilities shared by the TRON solver components.

All functions are written for batched arrays ``(B, n)`` but work equally for
single problems shaped ``(n,)`` thanks to NumPy broadcasting.
"""

from __future__ import annotations

import numpy as np


def project(x: np.ndarray, lb: np.ndarray, ub: np.ndarray) -> np.ndarray:
    """Project ``x`` onto the box ``[lb, ub]``."""
    return np.minimum(np.maximum(x, lb), ub)


def projected_gradient(x: np.ndarray, g: np.ndarray, lb: np.ndarray,
                       ub: np.ndarray) -> np.ndarray:
    """The projected-gradient stationarity measure ``x - P(x - g)``.

    Its infinity norm vanishes exactly at first-order stationary points of a
    bound-constrained problem, which is TRON's convergence measure.
    """
    return x - project(x - g, lb, ub)


def projected_gradient_norm(x: np.ndarray, g: np.ndarray, lb: np.ndarray,
                            ub: np.ndarray) -> np.ndarray:
    """Infinity norm of the projected gradient along the last axis."""
    return np.max(np.abs(projected_gradient(x, g, lb, ub)), axis=-1)


def free_variable_mask(x: np.ndarray, g: np.ndarray, lb: np.ndarray, ub: np.ndarray,
                       tol: float = 1e-12) -> np.ndarray:
    """Boolean mask of variables *not* clamped at an active bound.

    A variable is considered bound (not free) when it sits at a bound and the
    gradient pushes it further outside.
    """
    at_lower = (x <= lb + tol) & (g >= 0.0)
    at_upper = (x >= ub - tol) & (g <= 0.0)
    return ~(at_lower | at_upper)


def max_feasible_step(x: np.ndarray, d: np.ndarray, lb: np.ndarray, ub: np.ndarray,
                      cap: float = 1.0) -> np.ndarray:
    """Largest ``t in [0, cap]`` with ``x + t d`` inside the box (per problem).

    Directions with zero components impose no restriction.  Used for the
    projected line search after the CG refinement step.
    """
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        to_upper = np.where(d > 0, (ub - x) / d, np.inf)
        to_lower = np.where(d < 0, (lb - x) / d, np.inf)
    limit = np.minimum(to_upper, to_lower)
    limit = np.where(np.isnan(limit), np.inf, limit)
    t = np.min(limit, axis=-1)
    return np.clip(t, 0.0, cap)
