"""Options controlling the TRON trust-region solver."""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError


@dataclass
class TronOptions:
    """Tuning knobs of the batched TRON solver.

    The defaults follow Lin & Moré (1999) and the ExaTron implementation.

    Attributes
    ----------
    max_iter:
        Maximum outer trust-region iterations per problem.
    gtol:
        Convergence tolerance on the infinity norm of the projected gradient.
    frtol:
        Relative function-reduction tolerance: a problem also stops when the
        predicted reduction falls below ``frtol * |f|``.
    cg_tol:
        Relative residual-reduction target of the Steihaug CG solve.
    max_cg_iter:
        Cap on CG iterations per trust-region iteration (default: problem
        dimension + 1).
    mu0:
        Sufficient-decrease fraction of the Cauchy-point search.
    cauchy_max_steps:
        Maximum interpolation / extrapolation steps of the Cauchy search.
    eta0, eta1, eta2:
        Step-acceptance and trust-region-update thresholds on the ratio of
        actual to predicted reduction.
    sigma1, sigma2, sigma3:
        Trust-region shrink / keep / grow factors.
    delta_init:
        Initial trust-region radius; ``None`` uses the gradient norm.
    delta_max:
        Upper bound on the trust-region radius.
    compaction_threshold:
        Stream-compaction trigger: once the fraction of still-active
        problems in the current working set drops to this value or below,
        the driver gathers the active rows into a dense sub-batch and
        sweeps only those (requires row-sliceable callbacks; results are
        bitwise identical to the full sweep).  ``0`` disables compaction.
    compaction_min_batch:
        Batches smaller than this never compact — at tiny widths the
        gather/scatter bookkeeping costs more than the saved sweep.
    """

    max_iter: int = 200
    gtol: float = 1e-6
    frtol: float = 1e-12
    cg_tol: float = 0.1
    max_cg_iter: int | None = None
    mu0: float = 1e-2
    cauchy_max_steps: int = 25
    eta0: float = 1e-4
    eta1: float = 0.25
    eta2: float = 0.75
    sigma1: float = 0.25
    sigma2: float = 0.5
    sigma3: float = 4.0
    delta_init: float | None = None
    delta_max: float = 1e10
    compaction_threshold: float = 0.5
    compaction_min_batch: int = 16

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` for inconsistent settings."""
        if self.max_iter < 1:
            raise ConfigurationError("max_iter must be at least 1")
        if self.gtol <= 0:
            raise ConfigurationError("gtol must be positive")
        if not (0 < self.eta0 < self.eta1 < self.eta2 < 1):
            raise ConfigurationError("require 0 < eta0 < eta1 < eta2 < 1")
        if not (0 < self.sigma1 <= self.sigma2 < 1 < self.sigma3):
            raise ConfigurationError("require 0 < sigma1 <= sigma2 < 1 < sigma3")
        if not (0 < self.mu0 < 1):
            raise ConfigurationError("mu0 must lie in (0, 1)")
        if self.cg_tol <= 0 or self.cg_tol >= 1:
            raise ConfigurationError("cg_tol must lie in (0, 1)")
        if not (0 <= self.compaction_threshold <= 1):
            raise ConfigurationError("compaction_threshold must lie in [0, 1]")
        if self.compaction_min_batch < 1:
            raise ConfigurationError("compaction_min_batch must be at least 1")
