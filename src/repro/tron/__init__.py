"""Batched bound-constrained trust-region Newton solver (ExaTron substitute).

The paper solves its branch subproblems — tiny (≤6 variable) nonconvex
bound-constrained NLPs — with ExaTron, a CUDA implementation of the TRON
algorithm of Lin and Moré (1999): a projected-gradient Cauchy point followed
by a Steihaug–Toint conjugate-gradient solve of the trust-region subproblem
restricted to the free variables, with negative-curvature directions followed
to the trust-region boundary.

This subpackage reimplements that algorithm in NumPy in a *batched* form: all
state arrays carry a leading batch axis and every operation is vectorised
across it, mirroring ExaTron's "one thread block per problem" execution
model.  A loop backend (one problem at a time) is provided as a reference
implementation and for debugging.
"""

from repro.tron.options import TronOptions
from repro.tron.driver import TronResult, tron_solve, tron_solve_batch
from repro.tron.batch import BatchProblem, solve_batch

__all__ = [
    "TronOptions",
    "TronResult",
    "tron_solve",
    "tron_solve_batch",
    "BatchProblem",
    "solve_batch",
]
