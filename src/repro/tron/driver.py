"""Batched TRON driver (trust-region Newton for bound-constrained problems).

One call advances an entire batch of independent small problems to
convergence, mirroring ExaTron's one-thread-block-per-problem execution: the
batch axis of every array plays the role of the CUDA grid, and per-problem
control flow (convergence, step acceptance, trust-region updates) is realised
with boolean masks.

The algorithm per problem and iteration is the TRON scheme of Lin & Moré:

1. stop if the projected gradient is small;
2. compute a Cauchy point along the projected steepest-descent path;
3. refine within the free subspace by Steihaug CG, following negative
   curvature to the trust-region boundary;
4. apply a projected (feasibility-preserving) step back into the box;
5. accept/reject by comparing actual to predicted reduction, and update the
   trust-region radius.

**Stream compaction.**  Problems converge at very different iteration
counts, so late iterations of a plain batched sweep spend most of their
width on rows that stopped moving long ago.  When the caller supplies
``select_rows`` (row-sliced callbacks, see :func:`tron_solve_batch`), the
driver gathers the still-active rows into a dense *working set* once their
fraction drops below :attr:`~repro.tron.options.TronOptions.compaction_threshold`,
sweeps only the packed rows, and scatters the results back — every kernel in
the loop is row-separable, so the packed trajectory is bitwise identical to
the full-batch one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.exceptions import DimensionError
from repro.parallel.backends import get_backend
from repro.parallel.compaction import ActiveSet, compaction_enabled
from repro.tron.cauchy import cauchy_point, _quadratic_model
from repro.tron.cg import steihaug_cg
from repro.tron.options import TronOptions
from repro.tron.projection import (
    free_variable_mask,
    max_feasible_step,
    project,
    projected_gradient_norm,
)

#: Callback signatures: each maps a batch of points ``(B, n)`` to objective
#: values ``(B,)``, gradients ``(B, n)``, and Hessians ``(B, n, n)``.
ObjectiveFn = Callable[[np.ndarray], np.ndarray]
GradientFn = Callable[[np.ndarray], np.ndarray]
HessianFn = Callable[[np.ndarray], np.ndarray]

#: Row-slicing hook: maps absolute row indices to (objective, gradient,
#: hessian) callbacks over the packed sub-batch of exactly those rows.
SelectRowsFn = Callable[[np.ndarray], tuple[ObjectiveFn, GradientFn, HessianFn]]


@dataclass
class TronResult:
    """Result of a batched TRON solve."""

    x: np.ndarray
    f: np.ndarray
    projected_gradient_norm: np.ndarray
    iterations: np.ndarray
    converged: np.ndarray
    function_evaluations: int

    @property
    def all_converged(self) -> bool:
        return bool(np.all(self.converged))


def tron_solve_batch(objective: ObjectiveFn, gradient: GradientFn, hessian: HessianFn,
                     x0: np.ndarray, lb: np.ndarray, ub: np.ndarray,
                     options: TronOptions | None = None,
                     select_rows: SelectRowsFn | None = None,
                     kernel_backend=None) -> TronResult:
    """Solve a batch of bound-constrained problems with TRON.

    Parameters
    ----------
    objective, gradient, hessian:
        Batched callbacks (see module docstring).  Without ``select_rows``
        they are always called on the full batch; converged problems simply
        stop moving, which mirrors the lock-step execution of a GPU kernel.
    x0:
        Starting points ``(B, n)`` (projected onto the box before use).
    lb, ub:
        Bounds ``(B, n)``; equal entries pin a variable.
    options:
        :class:`TronOptions`; defaults are used when omitted.
    select_rows:
        Optional row-slicing hook enabling stream compaction: called with an
        array of absolute row indices, it must return ``(objective,
        gradient, hessian)`` callbacks that evaluate exactly those problems
        as a packed sub-batch.  Callbacks obtained this way must be
        row-separable (problem ``i``'s values independent of the other rows
        in the batch) so that packed sweeps reproduce full sweeps bitwise.
    kernel_backend:
        :class:`~repro.parallel.backends.base.KernelBackend` (or registered
        name) executing the driver's dense batched products, the Cauchy/CG
        subproblems, and the compaction gathers/scatters; ``None`` resolves
        the ``REPRO_BACKEND`` environment default (the NumPy oracle).
    """
    options = options or TronOptions()
    options.validate()
    kb = get_backend(kernel_backend)

    x0 = np.atleast_2d(np.asarray(x0, dtype=float))
    lb = np.broadcast_to(np.asarray(lb, dtype=float), x0.shape)
    ub = np.broadcast_to(np.asarray(ub, dtype=float), x0.shape)
    if np.any(lb > ub):
        raise DimensionError("lower bounds exceed upper bounds")
    batch, n = x0.shape
    max_cg = options.max_cg_iter or (n + 1)

    x = project(x0, lb, ub)
    # Copies, not views: callbacks may return workspace-backed buffers, and
    # the compaction engine scatters into these arrays in place.
    f = np.array(objective(x), dtype=float)
    g = np.array(gradient(x), dtype=float)
    n_feval = 1

    gnorm0 = np.linalg.norm(g, axis=-1)
    delta = np.full(batch, options.delta_init) if options.delta_init else np.where(
        gnorm0 > 0, gnorm0, 1.0)
    delta = np.minimum(delta, options.delta_max)

    iterations = np.zeros(batch, dtype=int)
    pgnorm = projected_gradient_norm(x, g, lb, ub)
    converged = pgnorm <= options.gtol

    # Row-sliced evaluation pays off only when slicing is available and the
    # batch is wide enough for the saved sweep to beat the gather overhead.
    # ``compaction_threshold = 0`` (like ``REPRO_COMPACTION=0``) disables the
    # whole path — including accepted-row gradient slicing — so a disabled
    # run really is the plain full-batch sweep.
    compact_ok = (select_rows is not None and options.compaction_threshold > 0.0
                  and batch >= options.compaction_min_batch and compaction_enabled())

    # Stream-compaction window.  While ``window`` is engaged the loop names
    # (x, f, g, ...) hold the packed working set and ``resident`` holds the
    # full-batch arrays; ``window is None`` means they are one and the same.
    window: ActiveSet | None = None
    resident: tuple[np.ndarray, ...] | None = None
    lb_w, ub_w = lb, ub
    obj_fn, grad_fn, hess_fn = objective, gradient, hessian

    def flush() -> None:
        """Scatter the packed working arrays back into the resident ones."""
        for target, values in zip(resident,
                                  (x, f, g, delta, iterations, converged, pgnorm)):
            window.scatter(target, values)

    for _ in range(options.max_iter):
        active = ~converged
        n_active = int(active.sum())
        if n_active == 0:
            break

        if (compact_ok and n_active < active.shape[0]
                and n_active <= options.compaction_threshold * active.shape[0]):
            # Compact: gather the active rows into a dense sub-batch.  Rows
            # left behind are converged and final; rows in the new window
            # continue exactly the trajectory they were on.
            if window is None:
                resident = (x, f, g, delta, iterations, converged, pgnorm)
                window = ActiveSet.from_mask(active, backend=kb)
            else:
                flush()
                window = window.refine(active)
            r_x, r_f, r_g, r_delta, r_iter, r_conv, r_pg = resident
            x, f, g = window.gather(r_x), window.gather(r_f), window.gather(r_g)
            delta, iterations = window.gather(r_delta), window.gather(r_iter)
            converged, pgnorm = window.gather(r_conv), window.gather(r_pg)
            lb_w, ub_w = lb[window.indices], ub[window.indices]
            obj_fn, grad_fn, hess_fn = select_rows(window.indices)
            active = np.ones(window.size, dtype=bool)

        hess = np.asarray(hess_fn(x), dtype=float)

        # --- Cauchy point -------------------------------------------------
        s_cauchy, _ = cauchy_point(x, g, hess, delta, lb_w, ub_w,
                                   mu0=options.mu0, max_steps=options.cauchy_max_steps,
                                   backend=kb)
        x_cauchy = project(x + s_cauchy, lb_w, ub_w)
        s_cauchy = x_cauchy - x

        # --- CG refinement on the free subspace ---------------------------
        model_grad = g + kb.batched_matvec(hess, s_cauchy)
        free = free_variable_mask(x_cauchy, model_grad, lb_w, ub_w)
        radius_left = np.maximum(delta - np.linalg.norm(s_cauchy, axis=-1), 0.0)
        cg = steihaug_cg(hess, -model_grad, radius_left, free,
                         tol=options.cg_tol, max_iter=max_cg, backend=kb)

        # --- projected step back into the box ------------------------------
        step_len = max_feasible_step(x_cauchy, cg.step, lb_w, ub_w, cap=1.0)
        s = s_cauchy + step_len[..., None] * cg.step
        x_trial = project(x + s, lb_w, ub_w)
        s = x_trial - x

        predicted = -_quadratic_model(g, hess, s, backend=kb)
        f_trial = np.asarray(obj_fn(x_trial), dtype=float)
        n_feval += 1
        actual = f - f_trial
        safe_pred = np.where(np.abs(predicted) > 1e-300, predicted, 1e-300)
        ratio = actual / safe_pred
        degenerate = predicted <= 0

        accept = active & ~degenerate & (ratio > options.eta0) & np.isfinite(f_trial)

        # --- trust-region update -------------------------------------------
        s_norm = np.linalg.norm(s, axis=-1)
        shrink = active & (degenerate | (ratio <= options.eta1) | ~np.isfinite(f_trial))
        grow = active & ~degenerate & (ratio >= options.eta2) & np.isfinite(f_trial)
        delta = np.where(shrink, np.maximum(options.sigma1 * np.minimum(s_norm, delta),
                                            1e-12), delta)
        delta = np.where(grow, np.minimum(options.sigma3 * delta, options.delta_max), delta)

        # --- commit accepted steps -----------------------------------------
        if accept.any():
            x = np.where(accept[..., None], x_trial, x)
            f = np.where(accept, f_trial, f)
            accepted_rows = np.flatnonzero(accept)
            if compact_ok and accepted_rows.size < x.shape[0]:
                # Only the accepted rows moved, so only they need a fresh
                # gradient; rejected/converged rows keep theirs bit for bit.
                absolute = (window.indices[accepted_rows] if window is not None
                            else accepted_rows)
                _, grad_rows, _ = select_rows(absolute)
                g[accepted_rows] = np.asarray(grad_rows(x[accepted_rows]), dtype=float)
            else:
                g_new = np.asarray(grad_fn(x), dtype=float)
                g = np.where(accept[..., None], g_new, g)

        iterations = iterations + active.astype(int)
        pgnorm = projected_gradient_norm(x, g, lb_w, ub_w)
        small_model = active & (predicted > 0) & (predicted <= options.frtol * (1.0 + np.abs(f)))
        tiny_radius = active & (delta <= 1e-11)
        converged = converged | (pgnorm <= options.gtol) | small_model | tiny_radius

    if window is not None:
        flush()
        x, f, g, delta, iterations, converged, pgnorm = resident

    return TronResult(x=x, f=f, projected_gradient_norm=pgnorm,
                      iterations=iterations, converged=converged | (pgnorm <= options.gtol),
                      function_evaluations=n_feval)


def tron_solve(objective: Callable[[np.ndarray], float],
               gradient: Callable[[np.ndarray], np.ndarray],
               hessian: Callable[[np.ndarray], np.ndarray],
               x0: np.ndarray, lb: np.ndarray, ub: np.ndarray,
               options: TronOptions | None = None) -> TronResult:
    """Single-problem convenience wrapper around :func:`tron_solve_batch`.

    The callbacks take and return unbatched arrays (``(n,)`` points, scalar
    objective, ``(n, n)`` Hessian).
    """
    x0 = np.asarray(x0, dtype=float)

    def batched_obj(xs: np.ndarray) -> np.ndarray:
        return np.array([objective(row) for row in xs])

    def batched_grad(xs: np.ndarray) -> np.ndarray:
        return np.stack([np.asarray(gradient(row), dtype=float) for row in xs])

    def batched_hess(xs: np.ndarray) -> np.ndarray:
        return np.stack([np.asarray(hessian(row), dtype=float) for row in xs])

    result = tron_solve_batch(batched_obj, batched_grad, batched_hess,
                              x0[None, :], lb[None, :], ub[None, :], options)
    return TronResult(x=result.x[0], f=result.f[0],
                      projected_gradient_norm=result.projected_gradient_norm[:1][0],
                      iterations=result.iterations[0], converged=result.converged[:1][0],
                      function_evaluations=result.function_evaluations)
