"""Solution-quality metrics, report rendering, and the experiment registry."""

from repro.analysis.metrics import (
    SolutionMetrics,
    constraint_violation,
    evaluate_solution,
    relative_objective_gap,
)

__all__ = [
    "SolutionMetrics",
    "constraint_violation",
    "evaluate_solution",
    "relative_objective_gap",
]
