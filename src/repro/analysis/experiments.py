"""Experiment registry: one function per table / figure of the paper.

Each experiment returns plain data (lists / dicts / arrays) and can also be
rendered as text; the ``benchmarks/`` suite is a thin wrapper that calls
these functions on scaled-down cases and asserts the qualitative shape the
paper reports.  The module doubles as a CLI::

    python -m repro.analysis.experiments table2 --cases case9 pegase118_like
"""

from __future__ import annotations

import argparse
import os
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.admm.batch_solver import solve_acopf_admm_batch
from repro.admm.parameters import AdmmParameters, parameters_for_case, suggest_penalties
from repro.admm.solver import solve_acopf_admm
from repro.analysis.metrics import relative_objective_gap
from repro.analysis.reporting import render_series, render_table
from repro.baseline.interior_point import InteriorPointOptions
from repro.baseline.solver import solve_acopf_ipm
from repro.exceptions import ConfigurationError
from repro.grid.cases import load_case
from repro.scenarios import ScenarioSet, tracking_fleet
from repro.tracking.horizon import relative_gap_series, relative_gaps, track_horizon
from repro.tracking.load_profile import make_load_profile
from repro.tracking.pipeline import BatchHorizonResult, track_horizon_batch

#: Cases used by default for the scaled-down reproduction runs.  They are the
#: synthetic analogues of the paper's Table I systems at a size a pure-Python
#: substrate can turn around in benchmark time.
DEFAULT_CASES = ("case9", "pegase30_like", "pegase118_like", "activsg200_like")

#: Horizon length of the tracking experiment (30 one-minute periods).
DEFAULT_PERIODS = 30


# --------------------------------------------------------------------- #
# Benchmark-suite configuration (environment-variable overridable)       #
# --------------------------------------------------------------------- #
def bench_cases() -> list[str]:
    """Cases run by the cold-start benchmark (``REPRO_BENCH_CASES``)."""
    # case9 and pegase118_like are the cases whose ADMM quality lands inside
    # the paper's Table II band with the default penalties; larger analogues
    # (activsg200_like, 1354pegase_like, ...) can be added via the env var at
    # the cost of minutes-per-case runtimes (see EXPERIMENTS.md).
    default = "case9,pegase118_like"
    return os.environ.get("REPRO_BENCH_CASES", default).split(",")


def bench_tracking_case() -> str:
    """Case used by the tracking benchmarks (``REPRO_BENCH_TRACKING_CASE``)."""
    return os.environ.get("REPRO_BENCH_TRACKING_CASE", "case9")


def bench_tracking_periods() -> int:
    """Tracking horizon length for benchmarks (``REPRO_BENCH_PERIODS``)."""
    return int(os.environ.get("REPRO_BENCH_PERIODS", "12"))


# --------------------------------------------------------------------- #
# Table I                                                                #
# --------------------------------------------------------------------- #
def table1(cases: Sequence[str] = DEFAULT_CASES) -> list[dict[str, object]]:
    """Case inventory and penalty parameters (paper Table I)."""
    rows = []
    for name in cases:
        network = load_case(name)
        rho_pq, rho_va = suggest_penalties(network)
        rows.append({
            "case": name,
            "generators": network.n_gen_active,
            "branches": network.n_branch,
            "buses": network.n_bus,
            "rho_pq": rho_pq,
            "rho_va": rho_va,
        })
    return rows


def render_table1(cases: Sequence[str] = DEFAULT_CASES) -> str:
    rows = table1(cases)
    return render_table(
        ["case", "# generators", "# branches", "# buses", "rho_pq", "rho_va"],
        [[r["case"], r["generators"], r["branches"], r["buses"], r["rho_pq"], r["rho_va"]]
         for r in rows],
        title="Table I: data and parameters for experiments")


# --------------------------------------------------------------------- #
# Table II                                                               #
# --------------------------------------------------------------------- #
@dataclass
class ColdStartRow:
    """One row of the cold-start comparison (paper Table II)."""

    case: str
    admm_iterations: int
    admm_seconds: float
    ipm_seconds: float
    max_violation: float
    relative_gap: float
    admm_objective: float
    ipm_objective: float


def table2(cases: Sequence[str] = DEFAULT_CASES,
           admm_params: AdmmParameters | None = None,
           ipm_options: InteriorPointOptions | None = None,
           time_limit: float | None = None,
           batched: bool = True,
           pool_workers: int | None = None,
           pool_executor: str = "process") -> list[ColdStartRow]:
    """Cold-start performance of the ADMM solver vs. the centralized baseline.

    With ``batched=True`` (the default) every case's ADMM solve runs in one
    scenario-stacked kernel stream — the disjoint union of all cases fills
    the batch axis the way the paper's large cases fill the GPU — and the
    per-case results match the sequential solves bit for bit (each case
    keeps its own Table-I penalties, residual tests, and β schedule).  The
    per-case ``admm_seconds`` is the shared stream's elapsed time at the
    moment the case froze, so the *last* row's time is the whole batch's.

    ``pool_workers`` shards the batch across a
    :class:`~repro.parallel.pool.DevicePool` of that many simulated devices
    (``pool_executor`` selects the executor; per-case results stay
    bit-for-bit identical — the pool only changes where each case runs);
    ``admm_seconds`` then reports each case's shard solve time.

    ``time_limit`` is a *per-case* ADMM budget in all modes; the batched
    stream, which solves all cases concurrently, receives the aggregate
    ``time_limit * len(cases)``.
    """
    networks = [load_case(name) for name in cases]
    if pool_workers is not None and not batched:
        raise ConfigurationError(
            "pool_workers shards the batched stream; it cannot be combined "
            "with batched=False (one-solve-per-case mode)")
    if batched and pool_workers is not None:
        from repro.parallel.pool import DevicePool
        scenario_set = ScenarioSet.from_networks(networks, names=list(cases))
        pool = DevicePool(n_workers=pool_workers, executor=pool_executor)
        admm_solutions = pool.solve(scenario_set, params=admm_params,
                                    time_limit=time_limit).solutions
    elif batched:
        scenario_set = ScenarioSet.from_networks(networks, names=list(cases))
        admm_solutions = solve_acopf_admm_batch(
            scenario_set, params=admm_params,
            time_limit=None if time_limit is None else time_limit * len(networks))
    else:
        admm_solutions = [
            solve_acopf_admm(
                network,
                params=(admm_params if admm_params is not None
                        else parameters_for_case(network)),
                time_limit=time_limit)
            for network in networks]

    rows = []
    for name, network, admm in zip(cases, networks, admm_solutions):
        baseline = solve_acopf_ipm(network, options=ipm_options)
        rows.append(ColdStartRow(
            case=name,
            admm_iterations=admm.inner_iterations,
            admm_seconds=admm.solve_seconds,
            ipm_seconds=baseline.solve_seconds,
            max_violation=admm.max_constraint_violation,
            relative_gap=relative_objective_gap(admm.objective, baseline.objective),
            admm_objective=admm.objective,
            ipm_objective=baseline.objective))
    return rows


def render_table2(rows: Sequence[ColdStartRow]) -> str:
    return render_table(
        ["case", "ADMM iters", "ADMM time (s)", "baseline time (s)",
         "||c(x)||inf", "gap |f-f*|/f*"],
        [[r.case, r.admm_iterations, r.admm_seconds, r.ipm_seconds,
          r.max_violation, r.relative_gap] for r in rows],
        title="Table II: performance of solving ACOPF from cold start")


# --------------------------------------------------------------------- #
# Figures 1–3: warm-start tracking                                       #
# --------------------------------------------------------------------- #
@dataclass
class TrackingExperiment:
    """All per-period series of the warm-start experiment for one case."""

    case: str
    periods: int
    admm_cumulative_seconds: np.ndarray
    ipm_cumulative_seconds: np.ndarray
    admm_violations: np.ndarray
    admm_gaps: np.ndarray
    admm_objectives: np.ndarray
    ipm_objectives: np.ndarray
    load_multipliers: np.ndarray = field(default_factory=lambda: np.zeros(0))


def tracking_experiment(case: str, n_periods: int = DEFAULT_PERIODS,
                        admm_params: AdmmParameters | None = None,
                        ipm_options: InteriorPointOptions | None = None,
                        seed: int = 0,
                        time_limit_per_period: float | None = None) -> TrackingExperiment:
    """Run the warm-start tracking experiment behind Figures 1, 2, and 3."""
    network = load_case(case)
    profile = make_load_profile(n_periods=n_periods, seed=seed)
    params = admm_params if admm_params is not None else parameters_for_case(network)

    admm_run = track_horizon(network, profile, method="admm", warm_start=True,
                             admm_params=params,
                             time_limit_per_period=time_limit_per_period)
    ipm_run = track_horizon(network, profile, method="ipm", warm_start=True,
                            ipm_options=ipm_options)
    gaps = relative_gaps(admm_run, ipm_run)
    return TrackingExperiment(
        case=case, periods=n_periods,
        admm_cumulative_seconds=admm_run.cumulative_seconds,
        ipm_cumulative_seconds=ipm_run.cumulative_seconds,
        admm_violations=admm_run.violations,
        admm_gaps=gaps,
        admm_objectives=admm_run.objectives,
        ipm_objectives=ipm_run.objectives,
        load_multipliers=profile.multipliers)


def render_figure1(experiment: TrackingExperiment) -> str:
    return render_series(
        f"Figure 1: cumulative computation time of warm start ({experiment.case})",
        {"ADMM (s)": experiment.admm_cumulative_seconds,
         "baseline (s)": experiment.ipm_cumulative_seconds})


def render_figure2(experiment: TrackingExperiment) -> str:
    return render_series(
        f"Figure 2: maximum constraint violation of warm start ({experiment.case})",
        {"||c(x)||inf": experiment.admm_violations})


def render_figure3(experiment: TrackingExperiment) -> str:
    return render_series(
        f"Figure 3: relative objective gap of warm start ({experiment.case})",
        {"gap (%)": 100.0 * experiment.admm_gaps})


# --------------------------------------------------------------------- #
# Batched tracking (Figures 1–3 over a whole fleet)                       #
# --------------------------------------------------------------------- #
@dataclass
class TrackingTableRow:
    """One period of the batched warm-vs-cold tracking comparison."""

    period: int
    warm_cumulative_seconds: float
    cold_cumulative_seconds: float
    warm_iterations: int
    cold_iterations: int
    max_violation: float
    max_gap: float               # worst per-scenario warm-vs-cold objective gap


def tracking_table(case: str = "case9", n_scenarios: int = 4,
                   n_periods: int = DEFAULT_PERIODS, fleet: str = "load",
                   pool_workers: int | None = None,
                   pool_executor: str = "sequential",
                   admm_params: AdmmParameters | None = None,
                   seed: int = 0,
                   time_limit_per_period: float | None = None,
                   ) -> list[TrackingTableRow]:
    """Figures 1–3 over a whole scenario fleet: warm vs. cold, batched.

    Runs the rolling-horizon pipeline twice over the same fleet and profile
    — warm-started (the paper's tracking mode) and the cold-start ablation —
    and reports the per-period series the figures are built from, fleet-wide:
    cumulative solve seconds (Figure 1; the pool **makespan** when
    ``pool_workers`` shards the periods across a
    :class:`~repro.parallel.pool.DevicePool`), total inner iterations, the
    worst per-scenario constraint violation of the warm run (Figure 2), and
    the worst per-scenario warm-vs-cold objective gap (Figure 3's gap with
    the cold converged solutions as the reference).

    ``fleet`` picks the scenario family (see
    :func:`~repro.scenarios.tracking_fleet`): ``"load"``, ``"n-1"``, or
    ``"monte-carlo"``.

    ``pool_executor`` defaults to ``"sequential"`` here (unlike the one-shot
    :func:`table2` pool): :meth:`DevicePool.solve` spins its workers up per
    call, and the tracking loop calls it once per period per run — the
    process executor would pay that spawn cost ``2 * n_periods`` times for
    identical (bitwise-asserted) results.  Pass ``"process"`` to exercise
    real process isolation anyway.
    """
    from repro.parallel.pool import DevicePool

    network = load_case(case)
    base = tracking_fleet(network, kind=fleet, n_scenarios=n_scenarios,
                          seed=seed)
    profile = make_load_profile(n_periods=n_periods, seed=seed)
    params = admm_params if admm_params is not None else parameters_for_case(network)
    pool = (DevicePool(n_workers=pool_workers, executor=pool_executor)
            if pool_workers is not None else None)

    warm = track_horizon_batch(base, profile, params=params, warm_start=True,
                               pool=pool,
                               time_limit_per_period=time_limit_per_period)
    cold = track_horizon_batch(base, profile, params=params, warm_start=False,
                               pool=pool,
                               time_limit_per_period=time_limit_per_period)

    return tracking_rows(warm, cold)


def tracking_rows(warm: BatchHorizonResult,
                  cold: BatchHorizonResult) -> list[TrackingTableRow]:
    """Per-period comparison rows from an already-run warm/cold pair.

    The single source of the warm-vs-cold series: :func:`tracking_table`,
    the tracking benchmark, and ``examples/tracking_pipeline.py`` all build
    their tables from these rows (via :func:`render_tracking_table`).
    """
    warm_cumulative = warm.cumulative_seconds
    cold_cumulative = cold.cumulative_seconds
    rows = []
    for t in range(warm.n_periods):
        gaps = relative_gap_series(warm.periods[t].objectives,
                                   cold.periods[t].objectives)
        rows.append(TrackingTableRow(
            period=t,
            warm_cumulative_seconds=float(warm_cumulative[t]),
            cold_cumulative_seconds=float(cold_cumulative[t]),
            warm_iterations=int(warm.periods[t].iterations.sum()),
            cold_iterations=int(cold.periods[t].iterations.sum()),
            max_violation=float(warm.periods[t].violations.max()),
            max_gap=float(gaps.max())))
    return rows


def render_tracking_table(rows: Sequence[TrackingTableRow],
                          title: str | None = None) -> str:
    total_warm = sum(r.warm_iterations for r in rows)
    total_cold = sum(r.cold_iterations for r in rows)
    table = render_table(
        ["period", "warm cum (s)", "cold cum (s)", "warm iters", "cold iters",
         "||c(x)||inf", "gap |f-f_cold|/f_cold"],
        [[r.period, r.warm_cumulative_seconds, r.cold_cumulative_seconds,
          r.warm_iterations, r.cold_iterations, r.max_violation, r.max_gap]
         for r in rows],
        title=title or "Batched tracking: warm start vs. cold-start ablation")
    ratio = total_cold / total_warm if total_warm else float("nan")
    return (f"{table}\n\ntotal inner iterations: warm={total_warm} "
            f"cold={total_cold} ({ratio:.2f}x fewer warm)")


# --------------------------------------------------------------------- #
# CLI                                                                    #
# --------------------------------------------------------------------- #
def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("experiment",
                        choices=["table1", "table2", "tracking",
                                 "fig1", "fig2", "fig3"])
    parser.add_argument("--cases", nargs="+", default=list(DEFAULT_CASES))
    parser.add_argument("--periods", type=int, default=DEFAULT_PERIODS)
    parser.add_argument("--workers", type=int, default=None,
                        help="shard table2 / tracking across a DevicePool of "
                             "this many simulated devices (default: one "
                             "shared stream)")
    parser.add_argument("--scenarios", type=int, default=4,
                        help="fleet size of the batched tracking experiment")
    parser.add_argument("--fleet", choices=["load", "n-1", "monte-carlo"],
                        default="load",
                        help="scenario family of the batched tracking fleet")
    args = parser.parse_args(argv)

    if args.experiment == "table1":
        print(render_table1(args.cases))
    elif args.experiment == "table2":
        print(render_table2(table2(args.cases, pool_workers=args.workers)))
    elif args.experiment == "tracking":
        rows = tracking_table(args.cases[0], n_scenarios=args.scenarios,
                              n_periods=args.periods, fleet=args.fleet,
                              pool_workers=args.workers)
        print(render_tracking_table(
            rows, title=f"Batched tracking ({args.cases[0]}, "
                        f"{args.scenarios} scenarios x {args.periods} periods)"))
    else:
        experiment = tracking_experiment(args.cases[0], n_periods=args.periods)
        renderer = {"fig1": render_figure1, "fig2": render_figure2,
                    "fig3": render_figure3}[args.experiment]
        print(renderer(experiment))
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    raise SystemExit(main())
