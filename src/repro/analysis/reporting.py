"""Plain-text rendering of the paper's tables and figures.

The benchmark harness prints the same rows / series the paper reports.
Figures are rendered as aligned numeric series (one row per time period)
because the reproduction is judged on the *shape* of the curves, not on a
graphic; the arrays behind them are returned so users can plot them with any
tool they like.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str | None = None) -> str:
    """Render an aligned text table."""
    rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1e4 or abs(cell) < 1e-3:
            return f"{cell:.3e}"
        return f"{cell:.3f}"
    return str(cell)


def render_series(title: str, series: Mapping[str, np.ndarray],
                  index_name: str = "period") -> str:
    """Render per-period series (the data behind Figures 1–3) as a table."""
    names = list(series)
    length = max((len(np.atleast_1d(v)) for v in series.values()), default=0)
    rows = []
    for i in range(length):
        row: list[object] = [i + 1]
        for name in names:
            values = np.atleast_1d(series[name])
            row.append(float(values[i]) if i < len(values) else float("nan"))
        rows.append(row)
    return render_table([index_name, *names], rows, title=title)


def summarize_speedup(admm_seconds: float, baseline_seconds: float) -> str:
    """One-line speed comparison used in benchmark output."""
    if admm_seconds <= 0:
        return "speedup: n/a"
    return (f"ADMM {admm_seconds:.2f}s vs baseline {baseline_seconds:.2f}s "
            f"(x{baseline_seconds / admm_seconds:.2f})")
