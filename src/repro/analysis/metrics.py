"""Solution-quality metrics matching the paper's reporting conventions.

The paper reports two quantities per solve (Table II, Figures 2–3):

* ``‖c(x)‖_∞`` — the maximum constraint violation of the reported solution,
  with branch flows *recomputed from the bus voltages* and line limits
  tightened to 99 % of their capacity;
* the relative objective gap ``|f − f*| / f*`` against the reference
  objective ``f*`` produced by the centralized baseline (Ipopt in the paper,
  the interior-point solver of :mod:`repro.baseline` here).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.grid.network import Network
from repro.powerflow.flows import branch_flows, line_limit_violation, power_balance_residual

#: Fraction of the line rating used when checking the reported solution
#: (Section IV-A of the paper).
LINE_CAPACITY_FRACTION = 0.99


@dataclass(frozen=True)
class SolutionMetrics:
    """Violation breakdown of a candidate ACOPF solution."""

    power_balance: float
    line_limit: float
    voltage_bound: float
    generator_bound: float
    objective: float

    @property
    def max_violation(self) -> float:
        """The paper's ``‖c(x)‖_∞``: the worst violation across all groups."""
        return max(self.power_balance, self.line_limit, self.voltage_bound,
                   self.generator_bound)


def constraint_violation(network: Network, vm: np.ndarray, va: np.ndarray,
                         pg: np.ndarray, qg: np.ndarray,
                         capacity_fraction: float = LINE_CAPACITY_FRACTION) -> SolutionMetrics:
    """Evaluate the violation breakdown of a solution (all in per unit)."""
    vm = np.asarray(vm, dtype=float)
    va = np.asarray(va, dtype=float)
    pg = np.asarray(pg, dtype=float)
    qg = np.asarray(qg, dtype=float)

    p_res, q_res = power_balance_residual(network, vm, va, pg, qg)
    balance = float(np.max(np.abs(np.concatenate([p_res, q_res])))) if p_res.size else 0.0

    flows = branch_flows(network, vm, va)
    limit = line_limit_violation(network, flows, capacity_fraction=capacity_fraction)
    line = float(limit.max()) if limit.size else 0.0

    v_viol = np.maximum(network.bus_vmin - vm, 0.0) + np.maximum(vm - network.bus_vmax, 0.0)
    voltage = float(v_viol.max()) if v_viol.size else 0.0

    active = network.gen_status
    p_viol = np.maximum(network.gen_pmin - pg, 0.0) + np.maximum(pg - network.gen_pmax, 0.0)
    q_viol = np.maximum(network.gen_qmin - qg, 0.0) + np.maximum(qg - network.gen_qmax, 0.0)
    gen = float(np.max((p_viol + q_viol)[active])) if active.any() else 0.0

    objective = network.generation_cost(pg)
    return SolutionMetrics(power_balance=balance, line_limit=line, voltage_bound=voltage,
                           generator_bound=gen, objective=objective)


def relative_objective_gap(objective: float, reference: float) -> float:
    """The paper's ``|f − f*| / f*`` (returns ``nan`` for a zero reference)."""
    if reference == 0:
        return float("nan")
    return abs(objective - reference) / abs(reference)


def evaluate_solution(network: Network, vm, va, pg, qg,
                      reference_objective: float | None = None) -> dict[str, float]:
    """Convenience dictionary with the metrics the benchmark tables print."""
    metrics = constraint_violation(network, vm, va, pg, qg)
    out = {
        "objective": metrics.objective,
        "max_violation": metrics.max_violation,
        "power_balance_violation": metrics.power_balance,
        "line_limit_violation": metrics.line_limit,
        "voltage_bound_violation": metrics.voltage_bound,
        "generator_bound_violation": metrics.generator_bound,
    }
    if reference_objective is not None:
        out["relative_gap"] = relative_objective_gap(metrics.objective, reference_objective)
    return out
