"""Logging helpers shared across solvers.

Solvers in this package log per-iteration progress through the standard
:mod:`logging` module under the ``"repro"`` logger namespace so that library
users can control verbosity the usual way.  The helpers here add a small
amount of convenience: a package-level logger factory and a fixed-width
iteration-table formatter used by both the ADMM solver and the interior-point
baseline.
"""

from __future__ import annotations

import logging
from typing import Iterable, Sequence

_PACKAGE_LOGGER_NAME = "repro"


def get_logger(name: str | None = None) -> logging.Logger:
    """Return a logger below the package namespace.

    Parameters
    ----------
    name:
        Optional dotted suffix, e.g. ``"admm"`` gives the ``"repro.admm"``
        logger.  ``None`` returns the package root logger.
    """
    if name:
        return logging.getLogger(f"{_PACKAGE_LOGGER_NAME}.{name}")
    return logging.getLogger(_PACKAGE_LOGGER_NAME)


def enable_console_logging(level: int = logging.INFO) -> None:
    """Attach a console handler to the package logger (idempotent).

    Intended for scripts and examples; library code should not call this.
    """
    logger = get_logger()
    logger.setLevel(level)
    if not any(isinstance(h, logging.StreamHandler) for h in logger.handlers):
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter("%(name)s %(levelname)s: %(message)s"))
        logger.addHandler(handler)


def format_table_row(values: Sequence[object], widths: Sequence[int]) -> str:
    """Format one row of an iteration table with fixed column widths."""
    cells = []
    for value, width in zip(values, widths):
        if isinstance(value, float):
            cells.append(f"{value:>{width}.3e}")
        else:
            cells.append(f"{value!s:>{width}}")
    return "  ".join(cells)


def format_table_header(names: Iterable[str], widths: Sequence[int]) -> str:
    """Format the header row matching :func:`format_table_row`."""
    return "  ".join(f"{name:>{width}}" for name, width in zip(names, widths))
