"""Simulated GPU execution layer.

The paper runs every ADMM update as a CUDA kernel: closed-form updates launch
one thread per array element, branch subproblems launch one thread block per
branch (ExaTron).  Without a GPU, this package keeps the same *structure* —
each update is an explicitly named "kernel" operating on contiguous arrays
with no cross-component data dependencies — and executes it with vectorised
NumPy.  The :class:`~repro.parallel.device.SimulatedDevice` records per-kernel
wall-clock time so benchmarks can report the breakdown the paper discusses
(closed-form component updates vs. batched branch solves).
"""

from repro.parallel.compaction import ActiveSet, Workspace, compaction_enabled
from repro.parallel.device import KernelRecord, SimulatedDevice, merge_device_dicts
from repro.parallel.faults import FaultCommand, FaultPlan, FaultSpec
from repro.parallel.kernels import elementwise_kernel, launch_over_elements
from repro.parallel.pool import (
    ChunkFailure,
    DevicePool,
    PoolExecutionError,
    PoolReport,
    solve_acopf_admm_pool,
)

__all__ = [
    "ActiveSet",
    "ChunkFailure",
    "DevicePool",
    "FaultCommand",
    "FaultPlan",
    "FaultSpec",
    "KernelRecord",
    "PoolExecutionError",
    "PoolReport",
    "SimulatedDevice",
    "Workspace",
    "compaction_enabled",
    "elementwise_kernel",
    "launch_over_elements",
    "merge_device_dicts",
    "solve_acopf_admm_pool",
]
