"""Simulated GPU execution layer.

The paper runs every ADMM update as a CUDA kernel: closed-form updates launch
one thread per array element, branch subproblems launch one thread block per
branch (ExaTron).  Without a GPU, this package keeps the same *structure* —
each update is an explicitly named "kernel" operating on contiguous arrays
with no cross-component data dependencies — and executes it with vectorised
NumPy.  The :class:`~repro.parallel.device.SimulatedDevice` records per-kernel
wall-clock time so benchmarks can report the breakdown the paper discusses
(closed-form component updates vs. batched branch solves).

Kernel *implementations* are pluggable: :mod:`repro.parallel.backends`
defines the :class:`~repro.parallel.backends.base.KernelBackend` protocol,
the reference :class:`~repro.parallel.backends.numpy_backend.NumpyBackend`
(the bitwise oracle), the per-element
:class:`~repro.parallel.backends.loop_backend.LoopBackend`, and an optional
numba-JIT backend; ``register_backend`` / ``get_backend`` manage the
registry, with selection via :class:`~repro.admm.parameters.AdmmParameters`
or the ``REPRO_BACKEND`` environment variable.
"""

from repro.parallel.backends import (
    BACKEND_ENV_VAR,
    JIT_TOLERANCE,
    KernelBackend,
    LoopBackend,
    NumbaBackend,
    NumpyBackend,
    available_backends,
    default_backend_name,
    get_backend,
    register_backend,
    unregister_backend,
)
from repro.parallel.compaction import ActiveSet, Workspace, compaction_enabled
from repro.parallel.device import KernelRecord, SimulatedDevice, merge_device_dicts
from repro.parallel.faults import FaultCommand, FaultPlan, FaultSpec
from repro.parallel.kernels import elementwise_kernel, launch_over_elements
from repro.parallel.pool import (
    ChunkFailure,
    DevicePool,
    PoolExecutionError,
    PoolReport,
    solve_acopf_admm_pool,
)

__all__ = [
    "ActiveSet",
    "BACKEND_ENV_VAR",
    "ChunkFailure",
    "DevicePool",
    "FaultCommand",
    "FaultPlan",
    "FaultSpec",
    "JIT_TOLERANCE",
    "KernelBackend",
    "KernelRecord",
    "LoopBackend",
    "NumbaBackend",
    "NumpyBackend",
    "PoolExecutionError",
    "PoolReport",
    "SimulatedDevice",
    "Workspace",
    "available_backends",
    "compaction_enabled",
    "default_backend_name",
    "elementwise_kernel",
    "get_backend",
    "launch_over_elements",
    "merge_device_dicts",
    "register_backend",
    "solve_acopf_admm_pool",
    "unregister_backend",
]
