"""Multi-device scenario sharding: a pool of simulated devices.

The paper's decomposition turns one ACOPF into millions of tiny independent
subproblems precisely so they can saturate *wide* hardware; scenario
batching (PR 1) and stream compaction (PR 2) fill one simulated device.
This module adds the next axis — many devices.  A :class:`DevicePool`
shards a :class:`~repro.scenarios.ScenarioSet` into cost-balanced
sub-batches, runs every shard through a
:class:`~repro.admm.batch_solver.BatchAdmmSolver` on its own
:class:`~repro.parallel.device.SimulatedDevice` (one ``multiprocessing``
worker per device by default; an in-process sequential executor for
determinism and debugging), and merges per-scenario results and device
metrics back into one :class:`PoolReport` in the original batch order.

**Placement** is cost-aware: scenarios are partitioned by estimated element
count (:meth:`~repro.scenarios.ScenarioSet.split`), not scenario count, so
one huge network weighs as much as many small ones.  **Rebalance** is
dynamic: the parent process keeps every shard as a queue of not-yet-
dispatched scenarios and hands them to its worker a chunk at a time; a
worker whose shard freezes early (cheap scenarios converge first — exactly
the heterogeneity stream compaction exposes) *steals* pending scenarios
from the most-loaded shard instead of going dark.

Because scenarios never couple, every per-scenario trajectory is bit-for-bit
the one the single-device batched solve (and the standalone sequential
solve) produces — sharding only changes *where* a scenario runs.

**Makespan accounting.**  Each chunk's solve time is measured inside the
worker; a worker's busy time is the sum of its chunks and the pool's
*makespan* is the largest per-worker busy time — the wall-clock a fleet of
real devices would need, independent of how many CPU cores this host can
actually dedicate to the worker processes.  ``wall_seconds`` records the
observed host wall-clock as well (on a single-core host the processes
timeshare, so only the makespan shows the multi-device scaling; this is the
same simulated-hardware viewpoint as ``SimulatedDevice`` itself).
"""

from __future__ import annotations

import os
import queue as queue_module
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.exceptions import ConfigurationError, ReproError
from repro.logging_utils import get_logger
from repro.parallel.device import merge_device_dicts
from repro.scenarios import ScenarioSet, as_scenario_set, partition_costs

LOGGER = get_logger("parallel.pool")

#: Executors a :class:`DevicePool` can run shards on.
EXECUTORS = ("process", "sequential")

#: Placement policies for the initial shard partition.
PLACEMENTS = ("cost", "count")


class PoolExecutionError(ReproError):
    """A worker failed while solving a shard.

    Carries the global indices and names of the scenarios in the failing
    chunk plus the worker-side traceback, so the offending scenario is
    identifiable without digging through worker logs.
    """

    def __init__(self, message: str, *, worker: int | None = None,
                 indices: tuple[int, ...] = (),
                 scenario_names: tuple[str, ...] = ()) -> None:
        super().__init__(message)
        self.worker = worker
        self.indices = indices
        self.scenario_names = scenario_names


@dataclass(frozen=True)
class ChunkRecord:
    """One dispatched chunk: which worker solved which scenarios."""

    worker: int
    indices: tuple[int, ...]
    origin: int
    stolen: bool
    seconds: float


@dataclass
class WorkerStats:
    """Per-worker aggregate of the pool run."""

    worker: int
    chunks: int = 0
    scenarios: int = 0
    steals: int = 0
    busy_seconds: float = 0.0
    device: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return {"worker": self.worker, "chunks": self.chunks,
                "scenarios": self.scenarios, "steals": self.steals,
                "busy_seconds": self.busy_seconds, "device": self.device}


@dataclass
class PoolReport:
    """Merged result of one pooled solve.

    ``solutions`` are in the original batch order regardless of which worker
    solved what; ``makespan_seconds`` is the simulated multi-device
    wall-clock (max per-worker busy time), ``total_busy_seconds`` the
    serial-equivalent work, and ``device`` the fleet-wide merged kernel
    metrics.
    """

    solutions: list
    n_workers: int
    executor: str
    placement: str
    wall_seconds: float
    makespan_seconds: float
    total_busy_seconds: float
    chunks: list[ChunkRecord] = field(default_factory=list)
    workers: list[WorkerStats] = field(default_factory=list)
    device: dict[str, Any] = field(default_factory=dict)

    @property
    def n_steals(self) -> int:
        return sum(1 for chunk in self.chunks if chunk.stolen)

    @property
    def scenario_workers(self) -> dict[int, int]:
        """Which worker solved each scenario (global index → worker id).

        This is the *observed* placement — the input of the next period's
        shard affinity in warm-started tracking: a scenario that was stolen
        reports its thief, so its warm state follows it on the next solve.
        """
        return {index: chunk.worker
                for chunk in self.chunks for index in chunk.indices}

    @property
    def parallel_speedup(self) -> float:
        """Serial-equivalent work over makespan — the scheduling speedup."""
        if self.makespan_seconds <= 0.0:
            return 1.0
        return self.total_busy_seconds / self.makespan_seconds

    def as_dict(self) -> dict[str, Any]:
        """Machine-readable snapshot for the benchmark harness."""
        return {
            "n_workers": self.n_workers,
            "executor": self.executor,
            "placement": self.placement,
            "wall_seconds": self.wall_seconds,
            "makespan_seconds": self.makespan_seconds,
            "total_busy_seconds": self.total_busy_seconds,
            "parallel_speedup": self.parallel_speedup,
            "n_steals": self.n_steals,
            "chunks": [{"worker": c.worker, "indices": list(c.indices),
                        "origin": c.origin, "stolen": c.stolen,
                        "seconds": c.seconds} for c in self.chunks],
            "workers": [w.as_dict() for w in self.workers],
            "device": self.device,
        }


class _StealScheduler:
    """Parent-side work queue: per-shard pending scenarios plus stealing.

    ``pending[w]`` holds shard ``w``'s not-yet-dispatched scenario ids in
    ascending order.  ``next_chunk(w)`` serves worker ``w`` from its own
    shard first; once that is empty it steals from the tail of the shard
    with the largest remaining cost, provided the victim still has at least
    ``steal_threshold`` pending scenarios (below that, the owner finishes
    its own tail and stealing would only shuffle work around).
    """

    def __init__(self, shards: Sequence[Sequence[int]], costs: Sequence[float],
                 chunk_scenarios: int, steal_threshold: int) -> None:
        self.pending = [deque(shard) for shard in shards]
        self.costs = list(costs)
        self.chunk = max(1, int(chunk_scenarios))
        self.steal_threshold = max(1, int(steal_threshold))

    def remaining_cost(self, shard: int) -> float:
        return sum(self.costs[i] for i in self.pending[shard])

    @property
    def n_pending(self) -> int:
        return sum(len(p) for p in self.pending)

    def next_chunk(self, worker: int) -> tuple[tuple[int, ...], int, bool] | None:
        """``(indices, origin_shard, stolen)`` for ``worker``, or ``None``."""
        own = self.pending[worker]
        if own:
            take = tuple(own.popleft() for _ in range(min(self.chunk, len(own))))
            return take, worker, False
        victims = [w for w, p in enumerate(self.pending)
                   if w != worker and len(p) >= self.steal_threshold]
        if not victims:
            return None
        victim = max(victims, key=self.remaining_cost)
        queue = self.pending[victim]
        take = tuple(reversed([queue.pop()
                               for _ in range(min(self.chunk, len(queue)))]))
        return take, victim, True


class DevicePool:
    """Shard a scenario batch across a pool of simulated devices.

    Parameters
    ----------
    n_workers:
        Devices in the pool (default: the host CPU count).  A solve never
        uses more workers than it has scenarios.
    executor:
        ``"process"`` (default) runs each device in its own
        ``multiprocessing`` worker; ``"sequential"`` runs the identical
        scheduler in-process, one chunk at a time, for determinism and
        debugging (results are identical either way — only wall-clock and
        the busy-time measurements differ).
    placement:
        ``"cost"`` (default) balances the initial shards by estimated
        element count; ``"count"`` by scenario count.
    chunk_scenarios:
        Scenarios dispatched to a worker per task — the stealing
        granularity.  Default: about a quarter shard,
        ``ceil(S / (4 * workers))``, so every worker returns to the
        scheduler a few times and can steal or be stolen from.
    steal_threshold:
        Minimum pending scenarios a victim shard must have before an idle
        worker may steal from it (default 1: steal whatever is left).
    start_method:
        ``multiprocessing`` start method (default: ``fork`` where
        available, else the platform default).
    solve_fn:
        The shard entry point, a picklable callable mapping
        :class:`~repro.admm.batch_solver.ShardTask` to
        :class:`~repro.admm.batch_solver.ShardResult`.  Defaults to
        :func:`~repro.admm.batch_solver.solve_scenario_shard`; tests inject
        failing stand-ins here.
    """

    def __init__(self, n_workers: int | None = None, executor: str = "process",
                 placement: str = "cost", chunk_scenarios: int | None = None,
                 steal_threshold: int = 1, start_method: str | None = None,
                 solve_fn: Callable | None = None) -> None:
        if executor not in EXECUTORS:
            raise ConfigurationError(
                f"unknown executor {executor!r}; choose from {EXECUTORS}")
        if placement not in PLACEMENTS:
            raise ConfigurationError(
                f"unknown placement {placement!r}; choose from {PLACEMENTS}")
        if n_workers is not None and n_workers < 1:
            raise ConfigurationError("n_workers must be at least 1")
        if chunk_scenarios is not None and chunk_scenarios < 1:
            raise ConfigurationError("chunk_scenarios must be at least 1")
        self.n_workers = n_workers if n_workers is not None else (os.cpu_count() or 1)
        self.executor = executor
        self.placement = placement
        self.chunk_scenarios = chunk_scenarios
        self.steal_threshold = steal_threshold
        self.start_method = start_method
        self._solve_fn = solve_fn

    # ------------------------------------------------------------------ #
    def solve(self, scenarios, params=None, time_limit: float | None = None,
              warm_states=None, affinity=None) -> PoolReport:
        """Solve the batch across the pool; results in batch order.

        ``time_limit`` is a *per-scenario* budget: each dispatched chunk
        receives ``time_limit * len(chunk)`` as its aggregate shard budget
        (the pool analogue of the batched solver's aggregate limit).

        ``warm_states`` optionally supplies one per-scenario
        :class:`~repro.admm.state.AdmmState` (or ``None`` for a cold start
        of that scenario), in global batch order; each dispatched chunk
        ships its scenarios' states inside the
        :class:`~repro.admm.batch_solver.ShardTask`, so warm starts survive
        process boundaries — and travel with a *stolen* scenario to the
        thief.

        ``affinity`` switches the initial partition to **persistent
        placement**: a sequence (or ``{index: worker}`` mapping) of
        preferred workers, one per scenario, ``None`` meaning "no
        preference".  A preferred scenario goes to its worker (ids wrap
        modulo the pool width, so affinities recorded on a wider pool stay
        usable); unpreferred scenarios fill up the lightest shards by cost.
        This is what keeps a warm-started tracking scenario on the worker
        already holding its state; work stealing still rebalances — the
        state simply ships with the stolen chunk.
        """
        scenario_set = as_scenario_set(scenarios)
        n_scenarios = len(scenario_set)
        workers = max(1, min(self.n_workers, n_scenarios))
        costs = scenario_set.costs(self.placement)
        if warm_states is not None:
            warm_states = list(warm_states)
            if len(warm_states) != n_scenarios:
                raise ConfigurationError(
                    f"warm_states has {len(warm_states)} entries for "
                    f"{n_scenarios} scenarios")
        if affinity is not None:
            shards = self._affinity_partition(affinity, costs, workers)
            placement = "affinity"
        else:
            shards = partition_costs(costs, workers)
            placement = self.placement
        chunk = self.chunk_scenarios
        if chunk is None:
            chunk = max(1, -(-n_scenarios // (4 * workers)))
        scheduler = _StealScheduler(shards, costs, chunk, self.steal_threshold)
        LOGGER.debug("pool: %d scenarios over %d %s workers, shards=%s, chunk=%d",
                     n_scenarios, workers, self.executor, shards, chunk)

        start = time.perf_counter()
        if self.executor == "sequential":
            result = self._run_sequential(scenario_set, params, time_limit,
                                          scheduler, workers, warm_states)
        else:
            result = self._run_processes(scenario_set, params, time_limit,
                                         scheduler, workers, warm_states)
        solutions, chunks, worker_devices = result
        wall = time.perf_counter() - start

        missing = [s for s, solution in enumerate(solutions) if solution is None]
        if missing:
            raise PoolExecutionError(
                f"pool finished without solutions for scenarios {missing}",
                indices=tuple(missing),
                scenario_names=tuple(scenario_set[s].name for s in missing))

        stats = [WorkerStats(worker=w) for w in range(workers)]
        for record in chunks:
            worker_stats = stats[record.worker]
            worker_stats.chunks += 1
            worker_stats.scenarios += len(record.indices)
            worker_stats.steals += int(record.stolen)
            worker_stats.busy_seconds += record.seconds
        for w, devices in worker_devices.items():
            stats[w].device = merge_device_dicts(devices, name=f"worker{w}")
        busy = [s.busy_seconds for s in stats]
        return PoolReport(
            solutions=solutions,
            n_workers=workers,
            executor=self.executor,
            placement=placement,
            wall_seconds=wall,
            makespan_seconds=max(busy) if busy else 0.0,
            total_busy_seconds=sum(busy),
            chunks=chunks,
            workers=stats,
            device=merge_device_dicts((s.device for s in stats if s.device),
                                      name=f"pool[{workers}]"),
        )

    # ------------------------------------------------------------------ #
    @staticmethod
    def _affinity_partition(affinity, costs: Sequence[float],
                            workers: int) -> list[list[int]]:
        """Persistent-placement partition: preferences first, LPT fill-in.

        ``affinity`` is a per-scenario preferred worker (sequence or
        ``{index: worker}`` mapping; ``None``/missing = no preference).
        Preferred scenarios land on their worker (mod the pool width);
        the rest go greedily to the lightest shard by cost, and every
        shard's ids stay ascending for the stable re-merge.
        """
        n_scenarios = len(costs)
        if isinstance(affinity, dict):
            preferred = [affinity.get(s) for s in range(n_scenarios)]
        else:
            preferred = list(affinity)
            if len(preferred) != n_scenarios:
                raise ConfigurationError(
                    f"affinity has {len(preferred)} entries for "
                    f"{n_scenarios} scenarios")
        shards: list[list[int]] = [[] for _ in range(workers)]
        loads = [0.0] * workers
        unplaced = []
        for s, pref in enumerate(preferred):
            if pref is None:
                unplaced.append(s)
                continue
            worker = int(pref) % workers
            shards[worker].append(s)
            loads[worker] += costs[s]
        for s in sorted(unplaced, key=lambda s: -costs[s]):
            lightest = min(range(workers), key=lambda w: (loads[w], w))
            shards[lightest].append(s)
            loads[lightest] += costs[s]
        return [sorted(shard) for shard in shards]

    # ------------------------------------------------------------------ #
    def _resolve_solve_fn(self) -> Callable:
        if self._solve_fn is not None:
            return self._solve_fn
        from repro.admm.batch_solver import solve_scenario_shard
        return solve_scenario_shard

    def _make_task(self, scenario_set: ScenarioSet, params,
                   time_limit: float | None, indices: tuple[int, ...],
                   worker: int, warm_states=None):
        from repro.admm.batch_solver import ShardTask
        return ShardTask(
            indices=indices,
            scenarios=scenario_set.subset(indices),
            params=params,
            time_limit=None if time_limit is None else time_limit * len(indices),
            warm_states=(None if warm_states is None
                         else tuple(warm_states[i] for i in indices)),
            device_name=f"worker{worker}")

    @staticmethod
    def _chunk_error(scenario_set: ScenarioSet, worker: int,
                     indices: tuple[int, ...], detail: str) -> PoolExecutionError:
        names = tuple(scenario_set[i].name for i in indices)
        listing = ", ".join(f"{i}:{name}" for i, name in zip(indices, names))
        return PoolExecutionError(
            f"worker {worker} failed on scenarios [{listing}]\n{detail}",
            worker=worker, indices=indices, scenario_names=names)

    # ------------------------------------------------------------------ #
    def _run_sequential(self, scenario_set: ScenarioSet, params,
                        time_limit: float | None, scheduler: _StealScheduler,
                        workers: int, warm_states=None):
        """In-process executor: same scheduler, simulated worker clocks.

        Chunks run one at a time, so each chunk's measured seconds are
        contention-free; dispatch order follows the simulated clocks (the
        worker with the least accumulated busy time is served next), which
        reproduces the process executor's scheduling decisions
        deterministically.
        """
        solve_fn = self._resolve_solve_fn()
        solutions: list = [None] * len(scenario_set)
        chunks: list[ChunkRecord] = []
        worker_devices: dict[int, list[dict]] = {w: [] for w in range(workers)}
        clocks = [0.0] * workers
        dark = [False] * workers

        while not all(dark):
            worker = min((w for w in range(workers) if not dark[w]),
                         key=lambda w: (clocks[w], w))
            assignment = scheduler.next_chunk(worker)
            if assignment is None:
                dark[worker] = True
                continue
            indices, origin, stolen = assignment
            task = self._make_task(scenario_set, params, time_limit, indices,
                                   worker, warm_states)
            try:
                result = solve_fn(task)
            except Exception as exc:  # surface the failing scenario, raise
                raise self._chunk_error(scenario_set, worker, indices,
                                        repr(exc)) from exc
            for index, solution in zip(result.indices, result.solutions):
                solutions[index] = solution
            worker_devices[worker].append(result.device)
            chunks.append(ChunkRecord(worker=worker, indices=indices,
                                      origin=origin, stolen=stolen,
                                      seconds=result.seconds))
            clocks[worker] += result.seconds
        return solutions, chunks, worker_devices

    # ------------------------------------------------------------------ #
    def _run_processes(self, scenario_set: ScenarioSet, params,
                       time_limit: float | None, scheduler: _StealScheduler,
                       workers: int, warm_states=None):
        """Multiprocessing executor: one worker process per device.

        The parent is the scheduler: it dispatches chunks over per-worker
        task queues and collects :class:`ShardResult`s (or error reports)
        from a shared result queue, re-dispatching — own shard first, then
        stealing — as each worker reports back.  A worker that dies without
        reporting is detected by liveness polling, so a mid-shard crash
        surfaces as :class:`PoolExecutionError` instead of a hang.
        """
        import multiprocessing as mp

        solve_fn = self._resolve_solve_fn()
        method = self.start_method
        if method is None:
            method = "fork" if "fork" in mp.get_all_start_methods() else None
        context = mp.get_context(method)

        task_queues = [context.Queue() for _ in range(workers)]
        result_queue = context.Queue()
        processes = [
            context.Process(target=_pool_worker, name=f"device-pool-{w}",
                            args=(w, solve_fn, task_queues[w], result_queue),
                            daemon=True)
            for w in range(workers)]
        for process in processes:
            process.start()

        solutions: list = [None] * len(scenario_set)
        chunks: list[ChunkRecord] = []
        worker_devices: dict[int, list[dict]] = {w: [] for w in range(workers)}
        outstanding: dict[int, tuple[tuple[int, ...], int, bool]] = {}
        shutdown_sent = [False] * workers
        failure: PoolExecutionError | None = None

        def dispatch(worker: int) -> None:
            if shutdown_sent[worker]:
                return
            assignment = None if failure is not None else scheduler.next_chunk(worker)
            if assignment is None:
                task_queues[worker].put(None)
                shutdown_sent[worker] = True
                return
            indices, origin, stolen = assignment
            outstanding[worker] = (indices, origin, stolen)
            task_queues[worker].put(
                self._make_task(scenario_set, params, time_limit, indices,
                                worker, warm_states))

        try:
            for worker in range(workers):
                dispatch(worker)
            while outstanding:
                try:
                    worker, kind, payload = result_queue.get(timeout=0.5)
                except queue_module.Empty:
                    for worker, (indices, _, _) in list(outstanding.items()):
                        if not processes[worker].is_alive():
                            outstanding.pop(worker)
                            shutdown_sent[worker] = True
                            error = self._chunk_error(
                                scenario_set, worker, indices,
                                "worker process died without reporting a result "
                                f"(exit code {processes[worker].exitcode})")
                            failure = failure or error
                    continue
                assignment = outstanding.pop(worker, None)
                if assignment is None:
                    # late-arriving result from a worker already declared
                    # dead by the liveness poll; its chunk was recorded as
                    # failed, so just drop the buffered payload
                    continue
                indices, origin, stolen = assignment
                if kind == "ok":
                    for index, solution in zip(payload.indices, payload.solutions):
                        solutions[index] = solution
                    worker_devices[worker].append(payload.device)
                    chunks.append(ChunkRecord(worker=worker, indices=indices,
                                              origin=origin, stolen=stolen,
                                              seconds=payload.seconds))
                else:
                    failure = failure or self._chunk_error(
                        scenario_set, worker, indices, str(payload))
                dispatch(worker)
        finally:
            for worker in range(workers):
                if not shutdown_sent[worker]:
                    task_queues[worker].put(None)
                    shutdown_sent[worker] = True
            for process in processes:
                process.join(timeout=30.0)
                if process.is_alive():  # last resort; never expected
                    process.terminate()
                    process.join(timeout=5.0)
            for task_queue in task_queues:
                task_queue.close()
            result_queue.close()

        if failure is not None:
            raise failure
        return solutions, chunks, worker_devices


def _pool_worker(worker_id: int, solve_fn: Callable, task_queue,
                 result_queue) -> None:
    """Worker-process loop: solve dispatched shards until told to stop."""
    import traceback

    while True:
        task = task_queue.get()
        if task is None:
            return
        try:
            result_queue.put((worker_id, "ok", solve_fn(task)))
        except Exception:
            result_queue.put((worker_id, "error", traceback.format_exc()))


def solve_acopf_admm_pool(scenarios, params=None, n_workers: int | None = None,
                          time_limit: float | None = None, warm_states=None,
                          affinity=None, **pool_options) -> PoolReport:
    """One-shot pooled solve (module-level convenience wrapper)."""
    pool = DevicePool(n_workers=n_workers, **pool_options)
    return pool.solve(scenarios, params=params, time_limit=time_limit,
                      warm_states=warm_states, affinity=affinity)
