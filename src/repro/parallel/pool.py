"""Multi-device scenario sharding: a pool of simulated devices.

The paper's decomposition turns one ACOPF into millions of tiny independent
subproblems precisely so they can saturate *wide* hardware; scenario
batching (PR 1) and stream compaction (PR 2) fill one simulated device.
This module adds the next axis — many devices.  A :class:`DevicePool`
shards a :class:`~repro.scenarios.ScenarioSet` into cost-balanced
sub-batches, runs every shard through a
:class:`~repro.admm.batch_solver.BatchAdmmSolver` on its own
:class:`~repro.parallel.device.SimulatedDevice` (one ``multiprocessing``
worker per device by default; an in-process sequential executor for
determinism and debugging), and merges per-scenario results and device
metrics back into one :class:`PoolReport` in the original batch order.

**Placement** is cost-aware: scenarios are partitioned by estimated element
count (:meth:`~repro.scenarios.ScenarioSet.split`), not scenario count, so
one huge network weighs as much as many small ones.  **Rebalance** is
dynamic: the parent process keeps every shard as a queue of not-yet-
dispatched scenarios and hands them to its worker a chunk at a time; a
worker whose shard freezes early (cheap scenarios converge first — exactly
the heterogeneity stream compaction exposes) *steals* pending scenarios
from the most-loaded shard instead of going dark.

**Fault tolerance.**  A long-lived fleet must survive its own workers.
With ``on_failure="retry"`` (or ``"partial"``), a chunk lost to a worker
exception, a worker-process death, or a stalled worker blowing its
``chunk_timeout`` is *replayed*: the parent requeues the lost scenario
indices into the scheduler (split in half when the chunk carried more than
one scenario, so a poison scenario isolates itself on replay), bounded by a
per-scenario ``max_retries`` budget; a dead or stalled worker process is
respawned on the same queues — with exponential backoff — up to a
``max_respawns`` budget.  Because scenarios never couple and warm states
live with the parent (they ship inside every dispatched
:class:`~repro.admm.batch_solver.ShardTask`), a replayed scenario's
trajectory is bit-for-bit the one a failure-free run produces — recovery
changes *where and when* a scenario runs, never its arithmetic.  The
default ``on_failure="raise"`` keeps the fail-fast semantics: any chunk
failure aborts the solve and surfaces every failed chunk in one aggregated
:class:`PoolExecutionError`.  Deterministic fault injection for tests and
CI lives in :mod:`repro.parallel.faults` (``REPRO_FAULT_PLAN``).

Because scenarios never couple, every per-scenario trajectory is bit-for-bit
the one the single-device batched solve (and the standalone sequential
solve) produces — sharding only changes *where* a scenario runs.

**Makespan accounting.**  Each chunk's solve time is measured inside the
worker; a worker's busy time is the sum of its chunks and the pool's
*makespan* is the largest per-worker busy time — the wall-clock a fleet of
real devices would need, independent of how many CPU cores this host can
actually dedicate to the worker processes.  ``wall_seconds`` records the
observed host wall-clock as well (on a single-core host the processes
timeshare, so only the makespan shows the multi-device scaling; this is the
same simulated-hardware viewpoint as ``SimulatedDevice`` itself).
"""

from __future__ import annotations

import os
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.exceptions import ConfigurationError, ReproError
from repro.logging_utils import get_logger
from repro.parallel.device import merge_device_dicts
from repro.parallel.faults import FaultCommand, FaultPlan
from repro.scenarios import ScenarioSet, as_scenario_set, partition_costs

LOGGER = get_logger("parallel.pool")

#: Executors a :class:`DevicePool` can run shards on.
EXECUTORS = ("process", "sequential")

#: Placement policies for the initial shard partition.
PLACEMENTS = ("cost", "count")

#: Failure policies: fail fast, replay lost chunks, or return what solved.
ON_FAILURE = ("raise", "retry", "partial")


class PoolExecutionError(ReproError):
    """One or more workers failed while solving their shards.

    Carries the global indices and names of every failed scenario plus the
    per-chunk :class:`ChunkFailure` records (worker-side traceback, failure
    kind, attempt number), so the offending scenarios are identifiable
    without digging through worker logs.  With ``on_failure="retry"`` the
    failures listed are the ones whose retry budget was exhausted.
    """

    def __init__(self, message: str, *, worker: int | None = None,
                 indices: tuple[int, ...] = (),
                 scenario_names: tuple[str, ...] = (),
                 failures: tuple["ChunkFailure", ...] = ()) -> None:
        super().__init__(message)
        self.worker = worker
        self.indices = indices
        self.scenario_names = scenario_names
        self.failures = failures


@dataclass(frozen=True)
class ChunkFailure:
    """One failed chunk dispatch: who lost what, how, on which attempt.

    ``kind`` is ``"error"`` (the worker raised), ``"death"`` (the worker
    process died without reporting), ``"timeout"`` (the worker stalled past
    the chunk deadline and was terminated), or ``"lost"`` (no worker was
    left alive to run the chunk).  ``attempt`` is how many failures the
    chunk's scenarios had already suffered when this dispatch went out
    (0 = first try).
    """

    worker: int
    indices: tuple[int, ...]
    scenario_names: tuple[str, ...]
    kind: str
    detail: str
    attempt: int = 0

    def describe(self) -> str:
        listing = ", ".join(f"{i}:{name}"
                            for i, name in zip(self.indices, self.scenario_names))
        return (f"worker {self.worker} failed on scenarios [{listing}] "
                f"({self.kind}, attempt {self.attempt}): {self.detail}")

    def as_dict(self) -> dict[str, Any]:
        return {"worker": self.worker, "indices": list(self.indices),
                "scenario_names": list(self.scenario_names), "kind": self.kind,
                "attempt": self.attempt, "detail": self.detail}


@dataclass(frozen=True)
class ChunkRecord:
    """One dispatched chunk: which worker solved which scenarios.

    ``attempt`` counts prior failures of the chunk's scenarios — a non-zero
    value marks a successful *replay* of work a failure lost.
    """

    worker: int
    indices: tuple[int, ...]
    origin: int
    stolen: bool
    seconds: float
    attempt: int = 0


@dataclass
class WorkerStats:
    """Per-worker aggregate of the pool run."""

    worker: int
    chunks: int = 0
    scenarios: int = 0
    steals: int = 0
    busy_seconds: float = 0.0
    device: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return {"worker": self.worker, "chunks": self.chunks,
                "scenarios": self.scenarios, "steals": self.steals,
                "busy_seconds": self.busy_seconds, "device": self.device}


@dataclass
class _RecoveryState:
    """Executor-side accounting of the fault-tolerance machinery."""

    retries: int = 0                 # replayed chunk dispatches enqueued
    respawns: int = 0                # worker processes respawned (or simulated)
    replayed: set[int] = field(default_factory=set)   # scenarios replayed
    failures: list[ChunkFailure] = field(default_factory=list)
    failed: dict[int, ChunkFailure] = field(default_factory=dict)  # terminal


@dataclass
class PoolReport:
    """Merged result of one pooled solve.

    ``solutions`` are in the original batch order regardless of which worker
    solved what; ``makespan_seconds`` is the simulated multi-device
    wall-clock (max per-worker busy time), ``total_busy_seconds`` the
    serial-equivalent work, and ``device`` the fleet-wide merged kernel
    metrics.  The recovery counters (``retries``, ``respawns``,
    ``replayed_scenarios``, ``failures``) stay zero / empty on a
    failure-free run; ``failed_scenarios`` is only ever non-empty with
    ``on_failure="partial"``, where the corresponding ``solutions`` entries
    are ``None``.
    """

    solutions: list
    n_workers: int
    executor: str
    placement: str
    wall_seconds: float
    makespan_seconds: float
    total_busy_seconds: float
    chunks: list[ChunkRecord] = field(default_factory=list)
    workers: list[WorkerStats] = field(default_factory=list)
    device: dict[str, Any] = field(default_factory=dict)
    retries: int = 0
    respawns: int = 0
    replayed_scenarios: tuple[int, ...] = ()
    failed_scenarios: tuple[int, ...] = ()
    failures: list[ChunkFailure] = field(default_factory=list)

    @property
    def n_steals(self) -> int:
        return sum(1 for chunk in self.chunks if chunk.stolen)

    @property
    def n_replayed(self) -> int:
        return len(self.replayed_scenarios)

    @property
    def scenario_workers(self) -> dict[int, int]:
        """Which worker solved each scenario (global index → worker id).

        This is the *observed* placement — the input of the next period's
        shard affinity in warm-started tracking: a scenario that was stolen
        reports its thief, so its warm state follows it on the next solve.
        """
        return {index: chunk.worker
                for chunk in self.chunks for index in chunk.indices}

    @property
    def parallel_speedup(self) -> float:
        """Serial-equivalent work over makespan — the scheduling speedup."""
        if self.makespan_seconds <= 0.0:
            return 1.0
        return self.total_busy_seconds / self.makespan_seconds

    def as_dict(self) -> dict[str, Any]:
        """Machine-readable snapshot for the benchmark harness."""
        return {
            "n_workers": self.n_workers,
            "executor": self.executor,
            "placement": self.placement,
            "wall_seconds": self.wall_seconds,
            "makespan_seconds": self.makespan_seconds,
            "total_busy_seconds": self.total_busy_seconds,
            "parallel_speedup": self.parallel_speedup,
            "n_steals": self.n_steals,
            "retries": self.retries,
            "respawns": self.respawns,
            "replayed_scenarios": list(self.replayed_scenarios),
            "failed_scenarios": list(self.failed_scenarios),
            "failures": [f.as_dict() for f in self.failures],
            "chunks": [{"worker": c.worker, "indices": list(c.indices),
                        "origin": c.origin, "stolen": c.stolen,
                        "seconds": c.seconds, "attempt": c.attempt}
                       for c in self.chunks],
            "workers": [w.as_dict() for w in self.workers],
            "device": self.device,
        }


class _StealScheduler:
    """Parent-side work queue: per-shard pending scenarios plus stealing.

    ``pending[w]`` holds shard ``w``'s not-yet-dispatched scenario ids in
    ascending order.  ``next_chunk(w)`` serves worker ``w`` from the replay
    queue first (chunks a failure handed back — any worker may run them),
    then from its own shard; once that is empty it steals from the tail of
    the shard with the largest remaining cost, provided the victim still
    has at least ``steal_threshold`` pending scenarios (below that, the
    owner finishes its own tail and stealing would only shuffle work
    around).
    """

    def __init__(self, shards: Sequence[Sequence[int]], costs: Sequence[float],
                 chunk_scenarios: int, steal_threshold: int) -> None:
        self.pending = [deque(shard) for shard in shards]
        self.costs = list(costs)
        self.chunk = max(1, int(chunk_scenarios))
        self.steal_threshold = max(1, int(steal_threshold))
        #: chunks a failure requeued, servable by any worker before shard work
        self.replay: deque[tuple[tuple[int, ...], int]] = deque()

    def remaining_cost(self, shard: int) -> float:
        return sum(self.costs[i] for i in self.pending[shard])

    @property
    def n_pending(self) -> int:
        return sum(len(p) for p in self.pending)

    @property
    def has_work(self) -> bool:
        return bool(self.replay) or self.n_pending > 0

    @property
    def has_replay(self) -> bool:
        return bool(self.replay)

    def requeue(self, indices: Sequence[int], origin: int,
                split: bool = True) -> None:
        """Hand a lost chunk's scenarios back for replay.

        With ``split`` (default), a multi-scenario chunk is replayed as two
        halves so a poison scenario bisects itself out of healthy company
        within ``O(log chunk)`` retries.
        """
        indices = tuple(indices)
        if split and len(indices) > 1:
            mid = (len(indices) + 1) // 2
            self.replay.append((indices[:mid], origin))
            self.replay.append((indices[mid:], origin))
        elif indices:
            self.replay.append((indices, origin))

    def orphan(self, shard: int) -> None:
        """Move a permanently dead owner's pending work to the replay queue.

        Idle workers only steal from shards above ``steal_threshold``; a
        shard whose worker is gone for good must not strand its tail behind
        that rule, so its chunks become replay work any survivor may take.
        """
        queue = self.pending[shard]
        while queue:
            take = tuple(queue.popleft()
                         for _ in range(min(self.chunk, len(queue))))
            self.replay.append((take, shard))

    def drain(self) -> list[tuple[tuple[int, ...], int]]:
        """Pop every unserved chunk — the run is over, account them lost."""
        items = list(self.replay)
        self.replay.clear()
        for shard, queue in enumerate(self.pending):
            while queue:
                take = tuple(queue.popleft()
                             for _ in range(min(self.chunk, len(queue))))
                items.append((take, shard))
        return items

    def next_chunk(self, worker: int) -> tuple[tuple[int, ...], int, bool] | None:
        """``(indices, origin_shard, stolen)`` for ``worker``, or ``None``."""
        if self.replay:
            indices, origin = self.replay.popleft()
            return indices, origin, False
        own = self.pending[worker]
        if own:
            take = tuple(own.popleft() for _ in range(min(self.chunk, len(own))))
            return take, worker, False
        victims = [w for w, p in enumerate(self.pending)
                   if w != worker and len(p) >= self.steal_threshold]
        if not victims:
            return None
        victim = max(victims, key=self.remaining_cost)
        queue = self.pending[victim]
        take = tuple(reversed([queue.pop()
                               for _ in range(min(self.chunk, len(queue)))]))
        return take, victim, True


class DevicePool:
    """Shard a scenario batch across a pool of simulated devices.

    Parameters
    ----------
    n_workers:
        Devices in the pool (default: the host CPU count).  A solve never
        uses more workers than it has scenarios.
    executor:
        ``"process"`` (default) runs each device in its own
        ``multiprocessing`` worker; ``"sequential"`` runs the identical
        scheduler in-process, one chunk at a time, for determinism and
        debugging (results are identical either way — only wall-clock and
        the busy-time measurements differ).
    placement:
        ``"cost"`` (default) balances the initial shards by estimated
        element count; ``"count"`` by scenario count.
    chunk_scenarios:
        Scenarios dispatched to a worker per task — the stealing
        granularity.  Default: about a quarter shard,
        ``ceil(S / (4 * workers))``, so every worker returns to the
        scheduler a few times and can steal or be stolen from.
    steal_threshold:
        Minimum pending scenarios a victim shard must have before an idle
        worker may steal from it (default 1: steal whatever is left).
    start_method:
        ``multiprocessing`` start method (default: ``fork`` where
        available, else the platform default).
    solve_fn:
        The shard entry point, a picklable callable mapping
        :class:`~repro.admm.batch_solver.ShardTask` to
        :class:`~repro.admm.batch_solver.ShardResult`.  Defaults to
        :func:`~repro.admm.batch_solver.solve_scenario_shard`; tests inject
        failing stand-ins here.
    on_failure:
        ``"raise"`` (default) keeps fail-fast semantics: any chunk failure
        aborts the solve and raises one :class:`PoolExecutionError`
        aggregating *every* failed chunk.  ``"retry"`` replays lost chunks
        within the retry/respawn budgets and raises only once a scenario's
        budget is exhausted.  ``"partial"`` is ``"retry"`` that never
        raises: budget-exhausted scenarios come back as ``None`` solutions,
        marked in :attr:`PoolReport.failed_scenarios`.
    max_retries:
        Per-scenario failure budget under ``"retry"``/``"partial"``: a
        scenario may fail this many times and still be replayed; one more
        failure makes it terminal (default 2).
    max_respawns:
        Pool-wide budget of worker-process respawns after deaths/timeouts
        (default 2).  A worker lost beyond the budget stays dead and its
        pending shard is redistributed to the survivors.
    chunk_timeout:
        Wall-clock seconds a dispatched chunk may run before its worker is
        declared lost, terminated, and the chunk replayed (default
        ``None``: no deadline).  The process executor enforces it for
        real; the sequential executor cannot interrupt itself and applies
        it only to injected stalls.
    respawn_backoff:
        Base seconds of the exponential backoff before respawning a lost
        worker (``backoff · 2^k`` for that worker's ``k``-th respawn;
        default 0.1).
    fault_plan:
        A :class:`~repro.parallel.faults.FaultPlan` of scripted failures,
        consulted at every dispatch (default: the plan scripted by the
        ``REPRO_FAULT_PLAN`` environment variable, or none).  Injection is
        parent-side deterministic, so both executors replay identical
        fault schedules.
    """

    def __init__(self, n_workers: int | None = None, executor: str = "process",
                 placement: str = "cost", chunk_scenarios: int | None = None,
                 steal_threshold: int = 1, start_method: str | None = None,
                 solve_fn: Callable | None = None, on_failure: str = "raise",
                 max_retries: int = 2, max_respawns: int = 2,
                 chunk_timeout: float | None = None,
                 respawn_backoff: float = 0.1,
                 fault_plan: FaultPlan | None = None) -> None:
        if executor not in EXECUTORS:
            raise ConfigurationError(
                f"unknown executor {executor!r}; choose from {EXECUTORS}")
        if placement not in PLACEMENTS:
            raise ConfigurationError(
                f"unknown placement {placement!r}; choose from {PLACEMENTS}")
        if on_failure not in ON_FAILURE:
            raise ConfigurationError(
                f"unknown on_failure {on_failure!r}; choose from {ON_FAILURE}")
        if n_workers is not None and n_workers < 1:
            raise ConfigurationError("n_workers must be at least 1")
        if chunk_scenarios is not None and chunk_scenarios < 1:
            raise ConfigurationError("chunk_scenarios must be at least 1")
        if max_retries < 0:
            raise ConfigurationError("max_retries must be non-negative")
        if max_respawns < 0:
            raise ConfigurationError("max_respawns must be non-negative")
        if chunk_timeout is not None and chunk_timeout <= 0:
            raise ConfigurationError("chunk_timeout must be positive")
        if respawn_backoff < 0:
            raise ConfigurationError("respawn_backoff must be non-negative")
        self.n_workers = n_workers if n_workers is not None else (os.cpu_count() or 1)
        self.executor = executor
        self.placement = placement
        self.chunk_scenarios = chunk_scenarios
        self.steal_threshold = steal_threshold
        self.start_method = start_method
        self.on_failure = on_failure
        self.max_retries = max_retries
        self.max_respawns = max_respawns
        self.chunk_timeout = chunk_timeout
        self.respawn_backoff = respawn_backoff
        self.fault_plan = fault_plan if fault_plan is not None else FaultPlan.from_env()
        self._solve_fn = solve_fn

    # ------------------------------------------------------------------ #
    def solve(self, scenarios, params=None, time_limit: float | None = None,
              warm_states=None, affinity=None, penalties=None) -> PoolReport:
        """Solve the batch across the pool; results in batch order.

        ``time_limit`` is a *per-scenario* budget: each dispatched chunk
        receives ``time_limit * len(chunk)`` as its aggregate shard budget
        (the pool analogue of the batched solver's aggregate limit).

        ``warm_states`` optionally supplies one per-scenario
        :class:`~repro.admm.state.AdmmState` (or ``None`` for a cold start
        of that scenario), in global batch order; each dispatched chunk
        ships its scenarios' states inside the
        :class:`~repro.admm.batch_solver.ShardTask`, so warm starts survive
        process boundaries — and travel with a *stolen* scenario to the
        thief.  Because the states live with the parent, they also survive
        a worker death: a replayed chunk re-ships them, which is what makes
        a recovered solve bitwise identical to a failure-free one.

        ``penalties`` optionally supplies one per-scenario
        ``(rho_pq, rho_va)`` seed (or ``None``), in global batch order —
        the tracking pipeline's ρ-cache values.  Like warm states they live
        with the parent and ship inside every dispatched
        :class:`~repro.admm.batch_solver.ShardTask` (surviving steals,
        replays, and respawns), so a pooled adaptive-ρ solve runs the same
        arithmetic as the single-device one.

        ``affinity`` switches the initial partition to **persistent
        placement**: a sequence (or ``{index: worker}`` mapping) of
        preferred workers, one per scenario, ``None`` meaning "no
        preference".  A preferred scenario goes to its worker (ids wrap
        modulo the pool width, so affinities recorded on a wider pool stay
        usable); unpreferred scenarios fill up the lightest shards by cost.
        This is what keeps a warm-started tracking scenario on the worker
        already holding its state; work stealing still rebalances — the
        state simply ships with the stolen chunk.

        Failure semantics follow ``on_failure`` (see the class docstring):
        fail fast with an aggregated :class:`PoolExecutionError`, replay
        within budgets, or return a partial report with ``None`` solutions
        for the scenarios whose budgets ran out.
        """
        scenario_set = as_scenario_set(scenarios)
        n_scenarios = len(scenario_set)
        workers = max(1, min(self.n_workers, n_scenarios))
        costs = scenario_set.costs(self.placement)
        if warm_states is not None:
            warm_states = list(warm_states)
            if len(warm_states) != n_scenarios:
                raise ConfigurationError(
                    f"warm_states has {len(warm_states)} entries for "
                    f"{n_scenarios} scenarios")
        if penalties is not None:
            penalties = list(penalties)
            if len(penalties) != n_scenarios:
                raise ConfigurationError(
                    f"penalties has {len(penalties)} entries for "
                    f"{n_scenarios} scenarios")
        if affinity is not None:
            shards = self._affinity_partition(affinity, costs, workers)
            placement = "affinity"
        else:
            shards = partition_costs(costs, workers)
            placement = self.placement
        chunk = self.chunk_scenarios
        if chunk is None:
            chunk = max(1, -(-n_scenarios // (4 * workers)))
        scheduler = _StealScheduler(shards, costs, chunk, self.steal_threshold)
        LOGGER.debug("pool: %d scenarios over %d %s workers, shards=%s, chunk=%d",
                     n_scenarios, workers, self.executor, shards, chunk)

        start = time.perf_counter()
        if self.executor == "sequential":
            result = self._run_sequential(scenario_set, params, time_limit,
                                          scheduler, workers, warm_states,
                                          penalties)
        else:
            run = _ProcessRun(self, scenario_set, params, time_limit,
                              scheduler, workers, warm_states, penalties)
            result = run.run()
        solutions, chunks, worker_devices, recovery = result
        wall = time.perf_counter() - start

        if recovery.failed and self.on_failure != "partial":
            raise self._failure_error(recovery)
        missing = [s for s, solution in enumerate(solutions)
                   if solution is None and s not in recovery.failed]
        if missing:
            raise PoolExecutionError(
                f"pool finished without solutions for scenarios {missing}",
                indices=tuple(missing),
                scenario_names=tuple(scenario_set[s].name for s in missing))

        stats = [WorkerStats(worker=w) for w in range(workers)]
        for record in chunks:
            worker_stats = stats[record.worker]
            worker_stats.chunks += 1
            worker_stats.scenarios += len(record.indices)
            worker_stats.steals += int(record.stolen)
            worker_stats.busy_seconds += record.seconds
        for w, devices in worker_devices.items():
            stats[w].device = merge_device_dicts(devices, name=f"worker{w}")
        busy = [s.busy_seconds for s in stats]
        return PoolReport(
            solutions=solutions,
            n_workers=workers,
            executor=self.executor,
            placement=placement,
            wall_seconds=wall,
            makespan_seconds=max(busy) if busy else 0.0,
            total_busy_seconds=sum(busy),
            chunks=chunks,
            workers=stats,
            device=merge_device_dicts((s.device for s in stats if s.device),
                                      name=f"pool[{workers}]"),
            retries=recovery.retries,
            respawns=recovery.respawns,
            replayed_scenarios=tuple(sorted(recovery.replayed)),
            failed_scenarios=tuple(sorted(recovery.failed)),
            failures=list(recovery.failures),
        )

    # ------------------------------------------------------------------ #
    @staticmethod
    def _affinity_partition(affinity, costs: Sequence[float],
                            workers: int) -> list[list[int]]:
        """Persistent-placement partition: preferences first, LPT fill-in.

        ``affinity`` is a per-scenario preferred worker (sequence or
        ``{index: worker}`` mapping; ``None``/missing = no preference).
        Preferred scenarios land on their worker (mod the pool width);
        the rest go greedily to the lightest shard by cost, and every
        shard's ids stay ascending for the stable re-merge.
        """
        n_scenarios = len(costs)
        if isinstance(affinity, dict):
            preferred = [affinity.get(s) for s in range(n_scenarios)]
        else:
            preferred = list(affinity)
            if len(preferred) != n_scenarios:
                raise ConfigurationError(
                    f"affinity has {len(preferred)} entries for "
                    f"{n_scenarios} scenarios")
        shards: list[list[int]] = [[] for _ in range(workers)]
        loads = [0.0] * workers
        unplaced = []
        for s, pref in enumerate(preferred):
            if pref is None:
                unplaced.append(s)
                continue
            worker = int(pref) % workers
            shards[worker].append(s)
            loads[worker] += costs[s]
        for s in sorted(unplaced, key=lambda s: -costs[s]):
            lightest = min(range(workers), key=lambda w: (loads[w], w))
            shards[lightest].append(s)
            loads[lightest] += costs[s]
        return [sorted(shard) for shard in shards]

    # ------------------------------------------------------------------ #
    def _resolve_solve_fn(self) -> Callable:
        if self._solve_fn is not None:
            return self._solve_fn
        from repro.admm.batch_solver import solve_scenario_shard
        return solve_scenario_shard

    def _make_task(self, scenario_set: ScenarioSet, params,
                   time_limit: float | None, indices: tuple[int, ...],
                   worker: int, warm_states=None, penalties=None):
        from repro.admm.batch_solver import ShardTask
        return ShardTask(
            indices=indices,
            scenarios=scenario_set.subset(indices),
            params=params,
            time_limit=None if time_limit is None else time_limit * len(indices),
            warm_states=(None if warm_states is None
                         else tuple(warm_states[i] for i in indices)),
            device_name=f"worker{worker}",
            penalties=(None if penalties is None
                       else tuple(penalties[i] for i in indices)))

    def _chunk_failure(self, scenario_set: ScenarioSet, worker: int,
                       indices: tuple[int, ...], kind: str, detail: str,
                       attempt: int) -> ChunkFailure:
        return ChunkFailure(
            worker=worker, indices=tuple(indices),
            scenario_names=tuple(scenario_set[i].name for i in indices),
            kind=kind, detail=detail, attempt=attempt)

    @staticmethod
    def _failure_error(recovery: _RecoveryState) -> PoolExecutionError:
        """Aggregate *every* failed chunk into one raisable error."""
        failed = tuple(sorted(recovery.failed))
        names = tuple(
            recovery.failed[i].scenario_names[recovery.failed[i].indices.index(i)]
            for i in failed)
        lines = "\n".join(f.describe() for f in recovery.failures)
        workers = {f.worker for f in recovery.failures}
        message = (f"{len(failed)} scenario(s) failed across "
                   f"{len(recovery.failures)} chunk failure(s):\n{lines}")
        return PoolExecutionError(
            message,
            worker=workers.pop() if len(workers) == 1 else None,
            indices=failed, scenario_names=names,
            failures=tuple(recovery.failures))

    def _register_failure(self, recovery: _RecoveryState,
                          scheduler: _StealScheduler,
                          failure: ChunkFailure, origin: int,
                          attempts: dict[int, int]) -> bool:
        """Account one failed chunk; requeue survivors.  True = abort run."""
        recovery.failures.append(failure)
        LOGGER.warning("pool: %s", failure.describe())
        if self.on_failure == "raise":
            for i in failure.indices:
                recovery.failed[i] = failure
            return True
        survivors, exhausted = [], []
        for i in failure.indices:
            attempts[i] = attempts.get(i, 0) + 1
            (survivors if attempts[i] <= self.max_retries else exhausted).append(i)
        for i in exhausted:
            recovery.failed[i] = failure
        if survivors:
            scheduler.requeue(tuple(survivors), origin)
            recovery.retries += 1
            recovery.replayed.update(survivors)
            LOGGER.info("pool: replaying scenarios %s (attempt %d)",
                        survivors, max(attempts[i] for i in survivors))
        return False

    def _drain_lost(self, recovery: _RecoveryState, scheduler: _StealScheduler,
                    scenario_set: ScenarioSet, attempts: dict[int, int]) -> None:
        """No runnable worker left: everything unserved is terminally lost."""
        for indices, origin in scheduler.drain():
            failure = self._chunk_failure(
                scenario_set, origin, indices, "lost",
                "no workers left alive to run the chunk "
                "(respawn budget exhausted)",
                max((attempts.get(i, 0) for i in indices), default=0))
            recovery.failures.append(failure)
            for i in indices:
                recovery.failed[i] = failure

    # ------------------------------------------------------------------ #
    def _run_sequential(self, scenario_set: ScenarioSet, params,
                        time_limit: float | None, scheduler: _StealScheduler,
                        workers: int, warm_states=None, penalties=None):
        """In-process executor: same scheduler, simulated worker clocks.

        Chunks run one at a time, so each chunk's measured seconds are
        contention-free; dispatch order follows the simulated clocks (the
        worker with the least accumulated busy time is served next), which
        reproduces the process executor's scheduling decisions
        deterministically.  Fault recovery is simulated in-process: an
        injected ``crash`` plays as a worker death (counted against the
        respawn budget), an injected ``stall`` longer than ``chunk_timeout``
        as a timeout loss — so every recovery path is exercisable without
        real processes.
        """
        solve_fn = self._resolve_solve_fn()
        solutions: list = [None] * len(scenario_set)
        chunks: list[ChunkRecord] = []
        worker_devices: dict[int, list[dict]] = {w: [] for w in range(workers)}
        recovery = _RecoveryState()
        clocks = [0.0] * workers
        dark = [False] * workers
        dead = [False] * workers
        dispatch_count = [0] * workers
        attempts: dict[int, int] = {}
        abort = False

        while True:
            if scheduler.has_replay and not abort:
                # replay work is servable by anyone: wake the dark workers
                for w in range(workers):
                    if dark[w] and not dead[w]:
                        dark[w] = False
            candidates = [w for w in range(workers) if not dark[w] and not dead[w]]
            if not candidates:
                break
            worker = min(candidates, key=lambda w: (clocks[w], w))
            assignment = None if abort else scheduler.next_chunk(worker)
            if assignment is None:
                dark[worker] = True
                continue
            indices, origin, stolen = assignment
            attempt = max((attempts.get(i, 0) for i in indices), default=0)
            dispatch_count[worker] += 1
            command = (self.fault_plan.draw(worker, dispatch_count[worker], indices)
                       if self.fault_plan is not None else None)

            kind = detail = None
            stall_seconds = 0.0
            result = None
            if command is not None and command.kind == "crash":
                kind = "death"
                detail = ("worker process died without reporting a result "
                          "(injected crash, simulated in-process)")
            elif (command is not None and command.kind == "stall"
                    and self.chunk_timeout is not None
                    and command.seconds > self.chunk_timeout):
                kind = "timeout"
                detail = (f"worker stalled {command.seconds:.1f}s past the "
                          f"{self.chunk_timeout:.1f}s chunk deadline "
                          "(injected stall, simulated in-process)")
            else:
                if command is not None and command.kind == "stall":
                    stall_seconds = command.seconds  # sub-deadline stall: delay only
                try:
                    if command is not None and command.kind == "raise":
                        raise RuntimeError("injected fault: raise")
                    result = solve_fn(self._make_task(
                        scenario_set, params, time_limit, indices, worker,
                        warm_states, penalties))
                except Exception as exc:
                    kind, detail = "error", repr(exc)

            if kind is None:
                for index, solution in zip(result.indices, result.solutions):
                    solutions[index] = solution
                worker_devices[worker].append(result.device)
                chunks.append(ChunkRecord(worker=worker, indices=indices,
                                          origin=origin, stolen=stolen,
                                          seconds=result.seconds + stall_seconds,
                                          attempt=attempt))
                clocks[worker] += result.seconds + stall_seconds
                continue

            failure = self._chunk_failure(scenario_set, worker, indices, kind,
                                          detail, attempt)
            abort = self._register_failure(recovery, scheduler, failure,
                                           origin, attempts)
            if not abort and kind in ("death", "timeout"):
                # the simulated worker is gone; "respawn" it unless the
                # budget ran out, in which case its shard is orphaned
                if recovery.respawns < self.max_respawns:
                    recovery.respawns += 1
                else:
                    dead[worker] = True
                    scheduler.orphan(worker)

        if not abort and scheduler.has_work:
            self._drain_lost(recovery, scheduler, scenario_set, attempts)
        return solutions, chunks, worker_devices, recovery


# --------------------------------------------------------------------- #
# Process executor                                                       #
# --------------------------------------------------------------------- #
@dataclass
class _Dispatch:
    """One in-flight chunk: what a worker is (supposedly) solving."""

    tag: int                  # unique per dispatch; stale results are dropped
    indices: tuple[int, ...]
    origin: int
    stolen: bool
    attempt: int
    deadline: float | None    # monotonic instant the chunk is declared lost


class _ProcessRun:
    """One multiprocessing pool execution, with replay/respawn recovery.

    The parent is the scheduler: it dispatches chunks and collects
    :class:`ShardResult`s (or error reports) over one **private duplex
    pipe per worker**, re-dispatching — replay queue first, own shard
    next, then stealing — as each worker reports back.  A worker that dies
    without reporting is detected by liveness polling; one that stalls past
    ``chunk_timeout`` is terminated.  Both lose their chunk to the replay
    machinery and are respawned (fresh ``Process`` on a fresh pipe,
    exponential backoff) within the ``max_respawns`` budget.  Every
    dispatch carries a monotonically increasing *tag*; a result whose tag
    does not match the worker's current dispatch is a late arrival from a
    worker already declared lost and is dropped — its chunk is replayed (or
    already failed), so dropping the buffered payload cannot lose work.

    Pipes, not ``multiprocessing.Queue``s, are load-bearing for fault
    tolerance: a shared queue multiplexes writers through one shared write
    lock held by a background feeder thread, so a worker killed mid-``put``
    (``os._exit``, ``SIGKILL``, a terminated stall) can exit holding the
    lock and silently wedge every *surviving* writer — the failure then
    cascades as spurious chunk timeouts until the respawn budget dies.  A
    pipe has exactly one writer on each end and no helper threads, so
    corruption is confined to the dead worker's pipe, which is closed and
    replaced on respawn.
    """

    #: result-queue poll granularity (also bounds deadline/respawn latency)
    POLL_SECONDS = 0.25
    #: shared wall-clock budget of the shutdown join across *all* workers
    JOIN_SECONDS = 30.0

    def __init__(self, pool: DevicePool, scenario_set: ScenarioSet, params,
                 time_limit: float | None, scheduler: _StealScheduler,
                 workers: int, warm_states, penalties=None) -> None:
        self.pool = pool
        self.scenario_set = scenario_set
        self.params = params
        self.time_limit = time_limit
        self.scheduler = scheduler
        self.workers = workers
        self.warm_states = warm_states
        self.penalties = penalties
        self.solve_fn = pool._resolve_solve_fn()

        self.solutions: list = [None] * len(scenario_set)
        self.chunks: list[ChunkRecord] = []
        self.worker_devices: dict[int, list[dict]] = {w: [] for w in range(workers)}
        self.recovery = _RecoveryState()
        self.outstanding: dict[int, _Dispatch] = {}
        self.parked: set[int] = set()
        self.dead = [False] * workers
        self.respawn_at: dict[int, float] = {}
        self.worker_respawns = [0] * workers
        self.dispatch_count = [0] * workers
        self.attempts: dict[int, int] = {}
        self.abort = False
        self.next_tag = 0
        self.retired: list = []     # replaced/terminated processes to join

    # -------------------------------------------------------------- #
    def run(self):
        import multiprocessing as mp

        method = self.pool.start_method
        if method is None:
            method = "fork" if "fork" in mp.get_all_start_methods() else None
        self.context = mp.get_context(method)
        self.processes = [None] * self.workers
        self.conns = [None] * self.workers
        for worker in range(self.workers):
            self._start_worker(worker)
        try:
            self._loop()
        finally:
            self._shutdown()
        if not self.abort and self.scheduler.has_work:
            self.pool._drain_lost(self.recovery, self.scheduler,
                                  self.scenario_set, self.attempts)
        return self.solutions, self.chunks, self.worker_devices, self.recovery

    def _start_worker(self, worker: int) -> None:
        """(Re)start ``worker`` on a fresh process and a fresh private pipe."""
        parent_conn, child_conn = self.context.Pipe(duplex=True)
        process = self.context.Process(
            target=_pool_worker, name=f"device-pool-{worker}",
            args=(worker, self.solve_fn, child_conn),
            daemon=True)
        self.processes[worker] = process
        self.conns[worker] = parent_conn
        process.start()
        # drop the parent's copy of the worker end so the pipe reports EOF
        # the moment the worker process is gone
        child_conn.close()

    # -------------------------------------------------------------- #
    def _loop(self) -> None:
        for worker in range(self.workers):
            self._dispatch(worker)
        while True:
            self._feed_parked()
            if not self.outstanding and not self.respawn_at:
                if self.abort or not self.scheduler.has_work:
                    return
                if not self._any_runnable():
                    return  # run() drains the unservable remainder
            self._pump_results(self._poll_timeout())
            self._check_liveness()
            self._check_deadlines()
            self._do_respawns()

    def _pump_results(self, timeout: float) -> None:
        """Wait on every live worker pipe; drain all buffered results.

        Results already buffered on a pipe are always consumed before the
        liveness poll runs, so a result that *did* arrive is never raced by
        a death verdict.  A pipe that reports EOF is retired here (closed,
        slot set to ``None``) and the process's fate is left to
        :meth:`_check_liveness` — the pipe going down and the worker's death
        verdict are the same event, only detected on different channels.
        """
        from multiprocessing import connection as mp_connection

        watched = {conn: worker for worker, conn in enumerate(self.conns)
                   if conn is not None}
        if not watched:
            time.sleep(timeout)
            return
        for conn in mp_connection.wait(list(watched), timeout=timeout):
            worker = watched[conn]
            while self.conns[worker] is conn:
                try:
                    if not conn.poll():
                        break
                    message = conn.recv()
                except (EOFError, OSError):
                    self._retire_conn(worker)
                    break
                self._handle_result(*message)

    def _retire_conn(self, worker: int) -> None:
        conn = self.conns[worker]
        if conn is not None:
            try:
                conn.close()
            except OSError:
                pass
            self.conns[worker] = None

    def _any_runnable(self) -> bool:
        return any(not self.dead[w] for w in range(self.workers))

    def _poll_timeout(self) -> float:
        timeout = self.POLL_SECONDS
        now = time.monotonic()
        for dispatch in self.outstanding.values():
            if dispatch.deadline is not None:
                timeout = min(timeout, dispatch.deadline - now)
        for when in self.respawn_at.values():
            timeout = min(timeout, when - now)
        return max(0.01, timeout)

    # -------------------------------------------------------------- #
    def _dispatch(self, worker: int) -> None:
        """Hand ``worker`` its next chunk, or park it until work appears."""
        if self.dead[worker] or worker in self.respawn_at:
            return
        assignment = None if self.abort else self.scheduler.next_chunk(worker)
        if assignment is None:
            self.parked.add(worker)
            return
        self.parked.discard(worker)
        indices, origin, stolen = assignment
        attempt = max((self.attempts.get(i, 0) for i in indices), default=0)
        self.dispatch_count[worker] += 1
        command = None
        if self.pool.fault_plan is not None:
            command = self.pool.fault_plan.draw(
                worker, self.dispatch_count[worker], indices)
        self.next_tag += 1
        deadline = (None if self.pool.chunk_timeout is None
                    else time.monotonic() + self.pool.chunk_timeout)
        self.outstanding[worker] = _Dispatch(
            tag=self.next_tag, indices=indices, origin=origin, stolen=stolen,
            attempt=attempt, deadline=deadline)
        task = self.pool._make_task(self.scenario_set, self.params,
                                    self.time_limit, indices, worker,
                                    self.warm_states, self.penalties)
        try:
            self.conns[worker].send((self.next_tag, task, command))
        except (BrokenPipeError, OSError):
            # the worker died between scheduling and send: leave the
            # dispatch outstanding — the liveness poll turns it into a
            # death failure and the chunk replays
            self._retire_conn(worker)

    def _feed_parked(self) -> None:
        if self.abort:
            return
        for worker in sorted(self.parked):
            if not self.scheduler.has_work:
                return
            if worker in self.outstanding:
                continue
            self._dispatch(worker)

    # -------------------------------------------------------------- #
    def _handle_result(self, worker: int, tag: int, kind: str, payload) -> None:
        dispatch = self.outstanding.get(worker)
        if dispatch is None or dispatch.tag != tag:
            # late-arriving result from a worker already declared lost (its
            # chunk was requeued or recorded failed): drop the buffered
            # payload — replay re-derives the identical solutions
            LOGGER.debug("pool: dropping stale result tag=%d from worker %d",
                         tag, worker)
            return
        del self.outstanding[worker]
        if kind == "ok":
            for index, solution in zip(payload.indices, payload.solutions):
                self.solutions[index] = solution
            self.worker_devices[worker].append(payload.device)
            self.chunks.append(ChunkRecord(
                worker=worker, indices=dispatch.indices, origin=dispatch.origin,
                stolen=dispatch.stolen, seconds=payload.seconds,
                attempt=dispatch.attempt))
            self._dispatch(worker)
            return
        failure = self.pool._chunk_failure(
            self.scenario_set, worker, dispatch.indices, "error", str(payload),
            dispatch.attempt)
        self.abort |= self.pool._register_failure(
            self.recovery, self.scheduler, failure, dispatch.origin,
            self.attempts)
        if kind == "fatal":
            # the worker reported a non-Exception exit and left its loop:
            # treat the process as lost without waiting for the liveness poll
            self._worker_lost(worker)
        else:
            self._dispatch(worker)

    def _check_liveness(self) -> None:
        for worker in list(self.outstanding):
            process = self.processes[worker]
            if process.is_alive():
                continue
            dispatch = self.outstanding.pop(worker)
            failure = self.pool._chunk_failure(
                self.scenario_set, worker, dispatch.indices, "death",
                "worker process died without reporting a result "
                f"(exit code {process.exitcode})", dispatch.attempt)
            self.abort |= self.pool._register_failure(
                self.recovery, self.scheduler, failure, dispatch.origin,
                self.attempts)
            self._worker_lost(worker)

    def _check_deadlines(self) -> None:
        if self.pool.chunk_timeout is None:
            return
        now = time.monotonic()
        for worker in list(self.outstanding):
            dispatch = self.outstanding[worker]
            if dispatch.deadline is None or now <= dispatch.deadline:
                continue
            del self.outstanding[worker]
            failure = self.pool._chunk_failure(
                self.scenario_set, worker, dispatch.indices, "timeout",
                f"worker stalled past the {self.pool.chunk_timeout:.1f}s "
                "chunk deadline and was terminated", dispatch.attempt)
            self.abort |= self.pool._register_failure(
                self.recovery, self.scheduler, failure, dispatch.origin,
                self.attempts)
            self._worker_lost(worker, terminate=True)

    def _worker_lost(self, worker: int, terminate: bool = False) -> None:
        """Retire a dead/stalled worker; respawn within budget."""
        process = self.processes[worker]
        if terminate and process.is_alive():
            process.terminate()
        self.retired.append(process)
        self._retire_conn(worker)   # corruption dies with the pipe
        self.parked.discard(worker)
        if self.abort or self.recovery.respawns >= self.pool.max_respawns:
            self.dead[worker] = True
            if not self.abort:
                self.scheduler.orphan(worker)
            return
        self.recovery.respawns += 1
        backoff = self.pool.respawn_backoff * (2 ** self.worker_respawns[worker])
        self.worker_respawns[worker] += 1
        self.respawn_at[worker] = time.monotonic() + backoff
        LOGGER.info("pool: respawning worker %d in %.2fs (respawn %d/%d)",
                    worker, backoff, self.recovery.respawns,
                    self.pool.max_respawns)

    def _do_respawns(self) -> None:
        now = time.monotonic()
        for worker, when in list(self.respawn_at.items()):
            if when > now:
                continue
            del self.respawn_at[worker]
            self._start_worker(worker)
            self._dispatch(worker)

    # -------------------------------------------------------------- #
    def _shutdown(self) -> None:
        """Bounded teardown: one shared join deadline, pipes can't hang it.

        A failed solve must not stall the caller for 30 s × workers: every
        process joins against the *same* wall-clock budget and stragglers
        are terminated.  Pipes have no feeder threads, so closing the
        parent ends afterwards is all the cleanup there is — a worker still
        blocked reading its pipe sees EOF and exits on its own.
        """
        for conn in self.conns:
            if conn is None:
                continue
            try:
                conn.send(None)
            except (BrokenPipeError, OSError, ValueError):
                pass  # best effort; the join deadline still bounds teardown
        deadline = time.monotonic() + self.JOIN_SECONDS
        everyone = [p for p in [*self.processes, *self.retired]
                    if p is not None]
        for process in everyone:
            process.join(timeout=max(0.1, deadline - time.monotonic()))
        for process in everyone:
            if process.is_alive():  # last resort; never expected
                process.terminate()
        for process in everyone:
            if process.is_alive():
                process.join(timeout=max(0.1, min(5.0, deadline + 5.0
                                                  - time.monotonic())))
        for worker in range(self.workers):
            self._retire_conn(worker)


def _execute_fault(fault: FaultCommand) -> None:
    """Perform an injected fault inside a worker process (for real)."""
    if fault.kind == "crash":
        os._exit(43)  # hard death: no exception, no cleanup — a segfault proxy
    elif fault.kind == "stall":
        time.sleep(fault.seconds)  # then solve normally; the parent's
        # deadline decides whether this chunk was already declared lost
    elif fault.kind == "raise":
        raise RuntimeError("injected fault: raise")


def _pool_worker(worker_id: int, solve_fn: Callable, conn) -> None:
    """Worker-process loop: solve dispatched shards until told to stop.

    ``conn`` is the worker end of a duplex pipe private to this worker.
    Every envelope is ``(tag, task, fault)``; the tag is echoed back so the
    parent can discard results from dispatches it has given up on.  A
    ``None`` envelope — or the pipe reporting EOF because the parent closed
    its end — is the shutdown signal.  A non-``Exception`` escape
    (``SystemExit``, ``KeyboardInterrupt``) is reported as ``"fatal"``
    before the loop exits, so the parent learns of the loss immediately
    instead of via the liveness poll.
    """
    import traceback

    while True:
        try:
            envelope = conn.recv()
        except (EOFError, OSError):
            return
        if envelope is None:
            return
        tag, task, fault = envelope
        try:
            if fault is not None:
                _execute_fault(fault)
            conn.send((worker_id, tag, "ok", solve_fn(task)))
        except Exception:
            conn.send((worker_id, tag, "error", traceback.format_exc()))
        except BaseException:
            try:
                conn.send((worker_id, tag, "fatal", traceback.format_exc()))
            finally:
                return


def solve_acopf_admm_pool(scenarios, params=None, n_workers: int | None = None,
                          time_limit: float | None = None, warm_states=None,
                          affinity=None, penalties=None,
                          **pool_options) -> PoolReport:
    """One-shot pooled solve (module-level convenience wrapper)."""
    pool = DevicePool(n_workers=n_workers, **pool_options)
    return pool.solve(scenarios, params=params, time_limit=time_limit,
                      warm_states=warm_states, affinity=affinity,
                      penalties=penalties)
