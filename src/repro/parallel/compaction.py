"""Stream-compaction primitives: gather active work, solve densely, scatter back.

The paper's execution model launches one thread (block) per component
subproblem, so a batch in which most problems have converged still sweeps
the full arrays — idle threads on a GPU, wasted vector width here.  Stream
compaction is the standard remedy: *gather* the rows that still need work
into a dense sub-batch, run the unmodified kernels on the sub-batch, and
*scatter* the results back into the resident arrays.  Because every kernel
in this codebase is row-separable (no cross-row reductions inside a batch),
the compacted sweep produces bitwise-identical per-row results.

Two pieces live here:

* :class:`ActiveSet` — the gather/scatter index map between a full resident
  batch and its packed active subset (rows of ``(B,)``/``(B, n)``/
  ``(B, n, n)`` arrays alike);
* :class:`Workspace` — a keyed scratch-array arena so inner loops reuse
  their large temporaries (e.g. ``(B, n, n)`` Hessian accumulators) instead
  of allocating fresh ones every iteration.

The environment variable ``REPRO_COMPACTION`` is a global escape hatch for
A/B runs: set it to ``0`` (or ``false`` / ``off`` / ``no``) to force every
solver onto the uncompacted full-sweep path.
"""

from __future__ import annotations

import os

import numpy as np

from repro.exceptions import DimensionError


def compaction_enabled(default: bool = True) -> bool:
    """Whether stream compaction is globally enabled (``REPRO_COMPACTION``)."""
    value = os.environ.get("REPRO_COMPACTION")
    if value is None:
        return default
    return value.strip().lower() not in ("0", "false", "off", "no")


class ActiveSet:
    """Index map between a resident batch and its packed active subset.

    ``indices`` are the resident-row ids of the active subset, in resident
    order; ``full_size`` is the resident batch size.  All gathers/scatters
    operate on the leading (batch) axis, so the same map serves ``(B,)``
    vectors, ``(B, n)`` matrices, and ``(B, n, n)`` Hessian stacks.

    ``backend`` optionally routes the gather/scatter memory ops through a
    :class:`~repro.parallel.backends.base.KernelBackend` (so e.g. a GPU
    array backend can keep the packing on-device); ``None`` keeps the plain
    NumPy fancy-indexing path.
    """

    __slots__ = ("indices", "full_size", "backend")

    def __init__(self, indices: np.ndarray, full_size: int, backend=None) -> None:
        self.indices = np.asarray(indices, dtype=int)
        if self.indices.ndim != 1:
            raise DimensionError("ActiveSet indices must be one-dimensional")
        self.full_size = int(full_size)
        self.backend = backend
        if self.indices.size and (self.indices.min() < 0
                                  or self.indices.max() >= self.full_size):
            raise DimensionError("ActiveSet indices out of range")

    # ------------------------------------------------------------------ #
    @classmethod
    def from_mask(cls, mask: np.ndarray, backend=None) -> "ActiveSet":
        """Active set of the true rows of a resident-size boolean mask."""
        mask = np.asarray(mask, dtype=bool)
        return cls(np.flatnonzero(mask), mask.shape[0], backend=backend)

    @classmethod
    def identity(cls, n: int, backend=None) -> "ActiveSet":
        """The trivial map (every resident row active)."""
        return cls(np.arange(n), n, backend=backend)

    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        return int(self.indices.shape[0])

    @property
    def fraction(self) -> float:
        """Active fraction of the resident batch (1.0 for an empty batch)."""
        return self.size / self.full_size if self.full_size else 1.0

    def refine(self, mask: np.ndarray) -> "ActiveSet":
        """Compose with a boolean mask over the *packed* axis.

        Used for recompaction: rows of the current working set that are
        still active become the next, smaller working set (indices stay
        resident-relative).
        """
        mask = np.asarray(mask, dtype=bool)
        if mask.shape[0] != self.size:
            raise DimensionError("refine mask must match the packed size")
        return ActiveSet(self.indices[mask], self.full_size, backend=self.backend)

    # ------------------------------------------------------------------ #
    def gather(self, array: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Pack the active rows of a resident array into a dense sub-batch."""
        if self.backend is not None:
            return self.backend.gather(array, self.indices, out=out)
        if out is not None:
            return np.take(array, self.indices, axis=0, out=out)
        return array[self.indices]

    def scatter(self, target: np.ndarray, values: np.ndarray) -> np.ndarray:
        """Write packed rows back into the resident array (in place)."""
        if self.backend is not None:
            return self.backend.scatter(target, self.indices, values)
        target[self.indices] = values
        return target

    def scatter_where(self, target: np.ndarray, values: np.ndarray,
                      mask: np.ndarray) -> np.ndarray:
        """Scatter-merge: write back only the packed rows selected by ``mask``."""
        mask = np.asarray(mask, dtype=bool)
        target[self.indices[mask]] = values[mask]
        return target

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ActiveSet({self.size}/{self.full_size} active)"


class Workspace:
    """Keyed scratch-array arena for allocation-free inner loops.

    ``take(key, shape)`` returns a reusable uninitialised array;
    ``zeros(key, shape)`` returns the same array cleared.  A buffer is
    reallocated only when the requested shape or dtype changes (e.g. after
    a recompaction shrinks the batch), so steady-state iterations perform
    no heap allocation for their large temporaries.

    Callers own the aliasing discipline: a buffer's contents are valid only
    until the next request for the same key, so workspace-backed arrays
    must never be returned to callers that retain them across iterations.
    """

    __slots__ = ("_arrays", "allocations", "reuses")

    def __init__(self) -> None:
        self._arrays: dict[str, np.ndarray] = {}
        self.allocations = 0
        self.reuses = 0

    def take(self, key: str, shape: tuple[int, ...], dtype=float) -> np.ndarray:
        """A reusable scratch array (contents undefined)."""
        shape = tuple(int(s) for s in shape)
        array = self._arrays.get(key)
        if array is None or array.shape != shape or array.dtype != np.dtype(dtype):
            array = np.empty(shape, dtype=dtype)
            self._arrays[key] = array
            self.allocations += 1
        else:
            self.reuses += 1
        return array

    def zeros(self, key: str, shape: tuple[int, ...], dtype=float) -> np.ndarray:
        """A reusable scratch array cleared to zero."""
        array = self.take(key, shape, dtype=dtype)
        array.fill(0)
        return array

    def clear(self) -> None:
        """Drop every cached buffer (e.g. between unrelated solves)."""
        self._arrays.clear()

    @property
    def nbytes(self) -> int:
        """Total bytes currently held by the arena."""
        return sum(array.nbytes for array in self._arrays.values())
