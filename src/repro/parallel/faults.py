"""Deterministic fault injection for the :class:`~repro.parallel.pool.DevicePool`.

Fault tolerance is only trustworthy if every recovery path is *exercised*,
not just written: a worker raising mid-shard, a worker process dying
outright, a worker stalling past its chunk deadline, a scenario that fails
once and then succeeds.  This module provides the scripted failures that
make those paths testable — deterministically, on both pool executors, and
from CI via an environment knob.

A :class:`FaultPlan` is consulted by the **parent** scheduler at dispatch
time: the parent tracks how many chunks each worker has received and asks
the plan whether this dispatch should be sabotaged.  Keeping the decision
parent-side makes the schedule exact regardless of worker respawns (a
respawned process has no memory of earlier chunks) and lets the in-process
sequential executor *simulate* the same crash/stall faults it cannot
physically perform.  The decision itself travels to the worker as a tiny
picklable :class:`FaultCommand` riding the dispatch envelope, where the
process executor performs it for real: ``raise`` raises, ``crash`` calls
``os._exit``, ``stall`` sleeps before solving.

Plans are built three ways:

* explicitly — ``FaultPlan([FaultSpec("crash", worker=1, chunk=2)])``;
* seeded — ``FaultPlan.seeded(seed=7, rate=0.05)`` fires pseudo-randomly
  but reproducibly (the draw is a pure function of ``(seed, worker,
  chunk)``, so the same plan replays the same faults);
* from the environment — ``REPRO_FAULT_PLAN`` parses a compact spec string
  (see :meth:`FaultPlan.parse`), which is how the CI fault-injection leg
  scripts crashes without touching code::

      REPRO_FAULT_PLAN="crash(worker=1,chunk=2);stall(worker=0,chunk=3,seconds=2)"

A plan is stateful on the parent side (each spec remembers how often it has
fired, so ``times=1`` means "once per plan lifetime" — across every solve
that shares the plan, which is what lets one fault hit mid-horizon in a
tracking run).  Call :meth:`FaultPlan.reset` to rearm a plan for reuse.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError

#: Environment variable holding a parseable fault-plan spec (see module doc).
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: Fault kinds a plan may schedule.
FAULT_KINDS = ("raise", "crash", "stall")


@dataclass(frozen=True)
class FaultCommand:
    """The worker-side payload of one scheduled fault (picklable).

    ``kind`` is one of :data:`FAULT_KINDS`; ``seconds`` is the stall
    duration (ignored for the other kinds).
    """

    kind: str
    seconds: float = 0.0


@dataclass(frozen=True)
class FaultSpec:
    """One scripted failure: *what* goes wrong, *where*, and *how often*.

    Match fields that are ``None`` match anything; a dispatch must satisfy
    every non-``None`` field for the spec to fire.  ``chunk`` counts the
    matched worker's dispatches from 1 (cumulative across respawns — the
    parent keeps the count, so "worker 1's 2nd chunk" is exact even if the
    first chunk killed the process).  ``scenario`` matches any chunk
    containing that *global* scenario index — the idiom for "scenario 5
    raises once then succeeds" (``times=1`` stops it firing on the replay).
    """

    kind: str
    worker: int | None = None     # dispatch target (None = any worker)
    chunk: int | None = None      # 1-based dispatch ordinal of that worker
    scenario: int | None = None   # global scenario id carried by the chunk
    times: int = 1                # total firings before the spec disarms
    seconds: float = 1.0          # stall duration (kind == "stall")

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; choose from {FAULT_KINDS}")
        if self.times < 1:
            raise ConfigurationError("fault times must be at least 1")
        if self.seconds < 0:
            raise ConfigurationError("stall seconds must be non-negative")

    def matches(self, worker: int, chunk: int, indices) -> bool:
        if self.worker is not None and worker != self.worker:
            return False
        if self.chunk is not None and chunk != self.chunk:
            return False
        if self.scenario is not None and self.scenario not in indices:
            return False
        return True

    def command(self) -> FaultCommand:
        return FaultCommand(kind=self.kind, seconds=self.seconds)


_SPEC_PATTERN = re.compile(r"^\s*(?P<kind>[a-z]+)\s*(?:\(\s*(?P<args>[^)]*)\)\s*)?$")

#: keys a spec-string entry may carry, with their coercions
_SPEC_KEYS = {"worker": int, "chunk": int, "scenario": int, "times": int,
              "seconds": float, "seed": int, "rate": float}


class FaultPlan:
    """A schedule of scripted faults, consulted at every pool dispatch.

    Parameters
    ----------
    specs:
        Explicit :class:`FaultSpec` entries (checked in order; the first
        armed spec that matches a dispatch fires).
    seed, rate:
        Optional seeded background noise: each dispatch additionally fires
        a pseudo-random fault with probability ``rate``.  The draw depends
        only on ``(seed, worker, chunk)``, so a seeded plan is exactly as
        reproducible as an explicit one.
    kinds:
        The fault kinds the seeded mode draws from (default ``("raise",)``
        — the mildest failure; include ``"crash"``/``"stall"`` to exercise
        respawn and deadline recovery randomly).
    stall_seconds:
        Stall duration used by seeded ``"stall"`` draws.
    """

    def __init__(self, specs=(), *, seed: int | None = None, rate: float = 0.0,
                 kinds=("raise",), stall_seconds: float = 1.0) -> None:
        self.specs = tuple(specs)
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError("fault rate must be in [0, 1]")
        for kind in kinds:
            if kind not in FAULT_KINDS:
                raise ConfigurationError(
                    f"unknown fault kind {kind!r}; choose from {FAULT_KINDS}")
        self.seed = seed
        self.rate = float(rate)
        self.kinds = tuple(kinds)
        self.stall_seconds = float(stall_seconds)
        self._fired = [0] * len(self.specs)

    # ------------------------------------------------------------------ #
    @classmethod
    def seeded(cls, seed: int, rate: float = 0.05, kinds=("raise",),
               stall_seconds: float = 1.0) -> "FaultPlan":
        """A purely pseudo-random (but reproducible) plan."""
        return cls((), seed=seed, rate=rate, kinds=kinds,
                   stall_seconds=stall_seconds)

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Build a plan from a compact spec string.

        Grammar: semicolon-separated entries ``kind(key=value, ...)``.
        Entry kinds are :data:`FAULT_KINDS` plus ``seeded`` (which takes
        ``seed=``/``rate=``/``seconds=`` and turns on the random mode)::

            crash(worker=1,chunk=2); stall(worker=0,chunk=3,seconds=2);
            raise(scenario=5,times=1); seeded(seed=7,rate=0.02)
        """
        specs: list[FaultSpec] = []
        seed, rate, stall_seconds = None, 0.0, 1.0
        for entry in text.split(";"):
            if not entry.strip():
                continue
            match = _SPEC_PATTERN.match(entry.strip())
            if match is None:
                raise ConfigurationError(
                    f"unparseable fault spec entry {entry.strip()!r} "
                    "(expected kind(key=value,...))")
            kind = match.group("kind")
            kwargs = {}
            for item in (match.group("args") or "").split(","):
                if not item.strip():
                    continue
                if "=" not in item:
                    raise ConfigurationError(
                        f"fault spec argument {item.strip()!r} is not key=value")
                key, _, value = item.partition("=")
                key = key.strip()
                if key not in _SPEC_KEYS:
                    raise ConfigurationError(
                        f"unknown fault spec key {key!r}; choose from "
                        f"{sorted(_SPEC_KEYS)}")
                try:
                    kwargs[key] = _SPEC_KEYS[key](value.strip())
                except ValueError:
                    raise ConfigurationError(
                        f"fault spec key {key!r} has non-numeric value "
                        f"{value.strip()!r}") from None
            if kind == "seeded":
                seed = kwargs.get("seed", 0)
                rate = kwargs.get("rate", 0.05)
                stall_seconds = kwargs.get("seconds", 1.0)
            elif kind in FAULT_KINDS:
                kwargs.pop("seed", None)
                kwargs.pop("rate", None)
                specs.append(FaultSpec(kind=kind, **kwargs))
            else:
                raise ConfigurationError(
                    f"unknown fault kind {kind!r}; choose from "
                    f"{FAULT_KINDS + ('seeded',)}")
        return cls(specs, seed=seed, rate=rate, stall_seconds=stall_seconds)

    @classmethod
    def from_env(cls, environ=None) -> "FaultPlan | None":
        """The plan scripted by ``REPRO_FAULT_PLAN``, or ``None`` if unset."""
        environ = os.environ if environ is None else environ
        text = environ.get(FAULT_PLAN_ENV, "").strip()
        return cls.parse(text) if text else None

    # ------------------------------------------------------------------ #
    def reset(self) -> None:
        """Rearm every spec (forget parent-side fire counts)."""
        self._fired = [0] * len(self.specs)

    @property
    def n_fired(self) -> int:
        return sum(self._fired)

    def draw(self, worker: int, chunk: int, indices) -> FaultCommand | None:
        """The fault this dispatch suffers, or ``None``.

        ``chunk`` is the 1-based cumulative dispatch ordinal of ``worker``;
        ``indices`` the global scenario ids in the chunk.  Explicit specs
        are consulted first (in order), then the seeded draw.
        """
        for k, spec in enumerate(self.specs):
            if self._fired[k] < spec.times and spec.matches(worker, chunk, indices):
                self._fired[k] += 1
                return spec.command()
        if self.seed is not None and self.rate > 0.0:
            rng = np.random.default_rng([self.seed, worker, chunk])
            if rng.random() < self.rate:
                kind = self.kinds[int(rng.integers(len(self.kinds)))]
                return FaultCommand(kind=kind, seconds=self.stall_seconds)
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        seeded = f", seed={self.seed}, rate={self.rate}" if self.seed is not None else ""
        return f"FaultPlan({list(self.specs)}{seeded})"
