"""Element-wise kernel helpers.

These helpers make the "one thread per element" structure of the paper's
closed-form updates explicit: an element-wise kernel is a function of aligned
arrays returning aligned arrays, with no reduction or cross-element
dependency, so it could be launched verbatim as a CUDA kernel.  The default
execution is vectorised NumPy; a ``python_loop`` mode exists purely so tests
can verify that the vectorised kernels really are element-wise.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.exceptions import DimensionError


def elementwise_kernel(fn: Callable[..., np.ndarray]) -> Callable[..., np.ndarray]:
    """Mark ``fn`` as an element-wise kernel (documentation decorator).

    The decorator performs no wrapping; it records intent and gives tests a
    registry-free way (``fn.__elementwise__``) to identify kernels.
    """
    fn.__elementwise__ = True  # type: ignore[attr-defined]
    return fn


def launch_over_elements(fn: Callable[..., tuple | np.ndarray], *arrays: np.ndarray,
                         python_loop: bool = False) -> tuple | np.ndarray:
    """Execute an element-wise kernel over aligned 1-D arrays.

    With ``python_loop=False`` (the default) the kernel is called once on the
    full arrays — the vectorised execution used everywhere in production.
    With ``python_loop=True`` it is called once per element and the results
    are reassembled; tests use this to prove element independence.
    """
    if not arrays:
        raise DimensionError("launch_over_elements needs at least one array argument")
    length = arrays[0].shape[0]
    for arr in arrays:
        if arr.shape[0] != length:
            raise DimensionError("all kernel arguments must share their leading dimension")
    if not python_loop:
        return fn(*arrays)

    per_element = [fn(*(arr[i:i + 1] for arr in arrays)) for i in range(length)]
    if not per_element:
        return fn(*arrays)
    if isinstance(per_element[0], tuple):
        n_out = len(per_element[0])
        return tuple(np.concatenate([out[k] for out in per_element]) for k in range(n_out))
    return np.concatenate(per_element)


def scatter_add(target: np.ndarray, indices: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Atomic-add analogue: accumulate ``values`` into ``target`` at ``indices``."""
    np.add.at(target, indices, values)
    return target


def segment_sum(values: np.ndarray, segment_ids: np.ndarray, n_segments: int) -> np.ndarray:
    """Sum ``values`` grouped by ``segment_ids`` (the reduction kernel analogue)."""
    out = np.zeros(n_segments, dtype=values.dtype)
    np.add.at(out, segment_ids, values)
    return out


def segment_max(values: np.ndarray, segment_ids: np.ndarray, n_segments: int,
                initial: float = 0.0) -> np.ndarray:
    """Maximum of ``values`` per segment; empty segments get ``initial``.

    The per-scenario ``‖·‖_∞`` reduction of the batched ADMM: unlike a
    floating-point sum, a max is order-independent, so segment results are
    bitwise identical to per-scenario reductions on unstacked arrays.
    """
    out = np.full(n_segments, -np.inf, dtype=float)
    np.maximum.at(out, segment_ids, values)
    return np.where(np.isneginf(out), initial, out)
