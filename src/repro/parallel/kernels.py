"""Element-wise kernel helpers — deprecated aliases onto the backend layer.

These free functions were the original kernel API; the hot sweeps now go
through the pluggable :mod:`repro.parallel.backends` registry instead (one
:class:`~repro.parallel.backends.base.KernelBackend` per execution
strategy, with the NumPy backend as the bitwise oracle).  The functions are
kept as thin aliases onto the reference backends so existing imports keep
working; new code should resolve a backend via
:func:`repro.parallel.backends.get_backend` and call its methods.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.parallel.backends.loop_backend import LoopBackend
from repro.parallel.backends.numpy_backend import NumpyBackend

#: Module-level reference instances backing the deprecated aliases.
_NUMPY = NumpyBackend()
_LOOP = LoopBackend()


def elementwise_kernel(fn: Callable[..., np.ndarray]) -> Callable[..., np.ndarray]:
    """Mark ``fn`` as an element-wise kernel (documentation decorator).

    The decorator performs no wrapping; it records intent and gives tests a
    registry-free way (``fn.__elementwise__``) to identify kernels.
    """
    fn.__elementwise__ = True  # type: ignore[attr-defined]
    return fn


def launch_over_elements(fn: Callable[..., tuple | np.ndarray], *arrays: np.ndarray,
                         python_loop: bool = False) -> tuple | np.ndarray:
    """Execute an element-wise kernel over aligned 1-D arrays.

    Deprecated alias: ``python_loop=False`` runs the vectorised NumPy
    backend, ``python_loop=True`` the per-element
    :class:`~repro.parallel.backends.loop_backend.LoopBackend` (which for a
    zero-length launch returns a correctly-shaped empty result instead of
    silently invoking the vectorised path).
    """
    backend = _LOOP if python_loop else _NUMPY
    return backend.launch_over_elements(fn, *arrays)


def scatter_add(target: np.ndarray, indices: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Atomic-add analogue: accumulate ``values`` into ``target`` at ``indices``."""
    return _NUMPY.scatter_add(target, indices, values)


def segment_sum(values: np.ndarray, segment_ids: np.ndarray, n_segments: int) -> np.ndarray:
    """Sum ``values`` grouped by ``segment_ids`` (the reduction kernel analogue)."""
    return _NUMPY.segment_sum(values, segment_ids, n_segments)


def segment_max(values: np.ndarray, segment_ids: np.ndarray, n_segments: int,
                initial: float = 0.0) -> np.ndarray:
    """Maximum of ``values`` per segment; empty segments get ``initial``.

    The per-scenario ``‖·‖_∞`` reduction of the batched ADMM: unlike a
    floating-point sum, a max is order-independent, so segment results are
    bitwise identical to per-scenario reductions on unstacked arrays.
    """
    return _NUMPY.segment_max(values, segment_ids, n_segments, initial=initial)
