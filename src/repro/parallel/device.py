"""Simulated device: named-kernel execution with per-kernel timing.

The ADMM solver wraps each of its update routines in
:meth:`SimulatedDevice.launch` so that (i) the code reads like the CUDA
implementation it models — a sequence of kernel launches over component
arrays — and (ii) the time spent in each kernel category is recorded and can
be reported by the benchmark harness, mirroring the paper's discussion of
where the GPU time goes (closed-form updates are negligible, batched branch
solves dominate).
"""

from __future__ import annotations

import time
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass
class KernelRecord:
    """Accumulated statistics of one named kernel."""

    launches: int = 0
    total_seconds: float = 0.0

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.launches if self.launches else 0.0


@dataclass
class SimulatedDevice:
    """Executes named kernels and accumulates their timings.

    ``synchronous`` has no behavioural effect (NumPy execution is always
    synchronous); the flag exists so code written against this interface maps
    one-to-one onto an asynchronous GPU implementation.
    """

    name: str = "simulated-gpu"
    synchronous: bool = True
    kernels: dict[str, KernelRecord] = field(default_factory=lambda: defaultdict(KernelRecord))

    def launch(self, kernel_name: str, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Any:
        """Run ``fn(*args, **kwargs)`` as the kernel ``kernel_name``."""
        start = time.perf_counter()
        try:
            return fn(*args, **kwargs)
        finally:
            elapsed = time.perf_counter() - start
            record = self.kernels[kernel_name]
            record.launches += 1
            record.total_seconds += elapsed

    def reset(self) -> None:
        """Clear all accumulated kernel statistics."""
        self.kernels.clear()

    def total_kernel_seconds(self) -> float:
        """Total time spent inside kernels since the last reset."""
        return sum(rec.total_seconds for rec in self.kernels.values())

    def report(self) -> str:
        """Human-readable per-kernel timing table."""
        lines = [f"device {self.name}: {self.total_kernel_seconds():.3f} s in kernels"]
        for name in sorted(self.kernels):
            rec = self.kernels[name]
            lines.append(f"  {name:<28} launches={rec.launches:<7d} "
                         f"total={rec.total_seconds:8.3f} s  mean={rec.mean_seconds * 1e3:8.3f} ms")
        return "\n".join(lines)
