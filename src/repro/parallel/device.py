"""Simulated device: named-kernel execution with per-kernel timing.

The ADMM solver wraps each of its update routines in
:meth:`SimulatedDevice.launch` so that (i) the code reads like the CUDA
implementation it models — a sequence of kernel launches over component
arrays — and (ii) the time spent in each kernel category is recorded and can
be reported by the benchmark harness, mirroring the paper's discussion of
where the GPU time goes (closed-form updates are negligible, batched branch
solves dominate).

Launches may declare how many elements (components, coupling constraints)
the kernel sweeps; the device then reports per-kernel *element throughput*,
the occupancy proxy that makes batched-vs-sequential scenario runs
comparable: a scenario-stacked launch processes S× the elements of a
single-network launch in far less than S× the time.
"""

from __future__ import annotations

import time
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable


@dataclass
class KernelRecord:
    """Accumulated statistics of one named kernel."""

    launches: int = 0
    total_seconds: float = 0.0
    total_elements: int = 0
    total_active_elements: int = 0

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.launches if self.launches else 0.0

    @property
    def elements_per_second(self) -> float:
        """Element throughput; zero when no elements (or time) were recorded."""
        if self.total_elements == 0 or self.total_seconds <= 0.0:
            return 0.0
        return self.total_elements / self.total_seconds

    @property
    def occupancy(self) -> float:
        """Active fraction of the swept elements (1.0 when never declared).

        Launches declare how many of the elements they sweep still need
        work (``active_elements``); the ratio is the occupancy the paper's
        GPU would achieve on the same launch sequence.  Stream compaction
        drives this back towards 1.0 by not sweeping retired elements.
        """
        if self.total_elements == 0:
            return 1.0
        return self.total_active_elements / self.total_elements

    def as_dict(self) -> dict[str, float | int]:
        return {
            "launches": self.launches,
            "total_seconds": self.total_seconds,
            "mean_seconds": self.mean_seconds,
            "total_elements": self.total_elements,
            "total_active_elements": self.total_active_elements,
            "occupancy": self.occupancy,
            "elements_per_second": self.elements_per_second,
        }


@dataclass
class SimulatedDevice:
    """Executes named kernels and accumulates their timings.

    ``synchronous`` has no behavioural effect (NumPy execution is always
    synchronous); the flag exists so code written against this interface maps
    one-to-one onto an asynchronous GPU implementation.

    ``backend`` is the name of the kernel backend the launches on this
    device run with (stamped into :meth:`as_dict` so per-kernel metrics and
    ``BENCH_*.json`` records are attributable per backend); the solvers set
    it when they resolve their backend, and ``None`` resolves to whatever
    the environment (``REPRO_BACKEND``) selects at snapshot time.
    """

    name: str = "simulated-gpu"
    synchronous: bool = True
    kernels: dict[str, KernelRecord] = field(default_factory=lambda: defaultdict(KernelRecord))
    backend: str | None = None

    @property
    def backend_name(self) -> str:
        """The stamped backend name, env-resolved when never set."""
        if self.backend is not None:
            return self.backend
        from repro.parallel.backends.registry import default_backend_name
        return default_backend_name()

    def launch(self, kernel_name: str, fn: Callable[..., Any], *args: Any,
               elements: int | None = None, active_elements: int | None = None,
               **kwargs: Any) -> Any:
        """Run ``fn(*args, **kwargs)`` as the kernel ``kernel_name``.

        ``elements`` declares how many elements the launch sweeps (its batch
        size); when given, the kernel's element throughput is tracked.
        ``active_elements`` additionally declares how many of them still
        need work (defaults to all of them), feeding the occupancy metric —
        a full-array sweep over mostly-retired elements reports low
        occupancy, a stream-compacted sweep reports ~1.0.
        """
        start = time.perf_counter()
        try:
            return fn(*args, **kwargs)
        finally:
            elapsed = time.perf_counter() - start
            record = self.kernels[kernel_name]
            record.launches += 1
            record.total_seconds += elapsed
            if elements is not None:
                record.total_elements += int(elements)
                active = elements if active_elements is None else active_elements
                record.total_active_elements += min(int(active), int(elements))

    def reset(self) -> None:
        """Clear all accumulated kernel statistics."""
        self.kernels.clear()

    def total_kernel_seconds(self) -> float:
        """Total time spent inside kernels since the last reset."""
        return sum(rec.total_seconds for rec in self.kernels.values())

    def as_dict(self) -> dict[str, Any]:
        """Machine-readable snapshot for the benchmark harness."""
        return {
            "device": self.name,
            "backend": self.backend_name,
            "total_seconds": self.total_kernel_seconds(),
            "kernels": {name: rec.as_dict() for name, rec in sorted(self.kernels.items())},
        }

    def report(self) -> str:
        """Human-readable per-kernel timing / throughput table."""
        lines = [f"device {self.name} (backend {self.backend_name}): "
                 f"{self.total_kernel_seconds():.3f} s in kernels"]
        for name in sorted(self.kernels):
            rec = self.kernels[name]
            line = (f"  {name:<28} launches={rec.launches:<7d} "
                    f"total={rec.total_seconds:8.3f} s  mean={rec.mean_seconds * 1e3:8.3f} ms")
            if rec.total_elements:
                line += (f"  throughput={rec.elements_per_second:12.0f} elem/s"
                         f"  occ={rec.occupancy:5.1%}")
            lines.append(line)
        return "\n".join(lines)


def merge_device_dicts(snapshots: Iterable[dict[str, Any]],
                       name: str = "device-pool") -> dict[str, Any]:
    """Aggregate several :meth:`SimulatedDevice.as_dict` snapshots into one.

    The pool's workers each run their shards on their own device; this sums
    the per-kernel counters (launches, seconds, elements, active elements)
    across all of them and recomputes the derived throughput / occupancy /
    mean columns, yielding the fleet-wide view a multi-GPU run would report.
    """
    merged: dict[str, KernelRecord] = defaultdict(KernelRecord)
    total_seconds = 0.0
    backends: set[str] = set()
    for snapshot in snapshots:
        total_seconds += float(snapshot.get("total_seconds", 0.0))
        backend = snapshot.get("backend")
        if backend:
            backends.add(str(backend))
        for kernel_name, stats in snapshot.get("kernels", {}).items():
            record = merged[kernel_name]
            record.launches += int(stats.get("launches", 0))
            record.total_seconds += float(stats.get("total_seconds", 0.0))
            record.total_elements += int(stats.get("total_elements", 0))
            record.total_active_elements += int(stats.get("total_active_elements", 0))
    return {
        "device": name,
        # a fleet normally runs one backend everywhere; a mixed merge keeps
        # every contributing name so the mismatch is visible downstream
        "backend": "+".join(sorted(backends)) if backends else None,
        "total_seconds": total_seconds,
        "kernels": {kernel_name: record.as_dict()
                    for kernel_name, record in sorted(merged.items())},
    }
