"""Per-element reference backend — the element-independence proof.

``LoopBackend`` executes every primitive one element (row) at a time and
reassembles the results.  It exists purely for verification: if a kernel's
per-element execution reproduces the vectorised sweep bitwise, the kernel
really is element-wise (no cross-element data flow), so it could be launched
verbatim as a CUDA kernel.  This recasts the old ``python_loop=True`` mode
of :func:`repro.parallel.kernels.launch_over_elements` as a first-class
backend covering the reductions and the batched linear algebra too.

It is registered as an *exact* backend: per-element slices of NumPy ufuncs,
in-order accumulation (the order ``np.add.at`` / ``np.maximum.at`` use),
and per-row ``einsum`` all reproduce the vectorised results bit for bit.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.exceptions import DimensionError
from repro.parallel.backends.base import check_aligned


def empty_launch_result(fn: Callable[..., tuple | np.ndarray],
                        arrays: tuple[np.ndarray, ...]) -> tuple | np.ndarray:
    """Correctly-shaped empty result of a zero-length element-wise launch.

    The kernel is probed on zero-length slices (never on a populated batch,
    preserving the element-independence contract) and each output is
    required to come back with a zero leading dimension — a kernel that
    reduces to a scalar or a fixed shape on an empty launch is a
    non-element-wise kernel and is rejected instead of silently returned.
    """
    probe = fn(*(arr[:0] for arr in arrays))

    def as_empty(out) -> np.ndarray:
        out = np.asarray(out)
        if out.ndim == 0 or out.shape[0] != 0:
            raise DimensionError(
                "element-wise kernel returned a non-empty result "
                f"(shape {out.shape}) for a zero-length launch")
        return out

    if isinstance(probe, tuple):
        return tuple(as_empty(out) for out in probe)
    return as_empty(probe)


class LoopBackend:
    """One-element-at-a-time execution of the kernel primitive set."""

    name = "loop"
    exact = True

    # --- element-wise launches ----------------------------------------- #
    def launch_over_elements(self, fn: Callable[..., tuple | np.ndarray],
                             *arrays: np.ndarray) -> tuple | np.ndarray:
        length = check_aligned(arrays)
        if length == 0:
            return empty_launch_result(fn, arrays)
        per_element = [fn(*(arr[i:i + 1] for arr in arrays)) for i in range(length)]
        if isinstance(per_element[0], tuple):
            n_out = len(per_element[0])
            return tuple(np.concatenate([out[k] for out in per_element])
                         for k in range(n_out))
        return np.concatenate(per_element)

    # --- scatter / segment reductions ---------------------------------- #
    def scatter_add(self, target: np.ndarray, indices: np.ndarray,
                    values: np.ndarray) -> np.ndarray:
        values = np.broadcast_to(values, np.shape(indices))
        for k in range(len(indices)):
            target[indices[k]] += values[k]
        return target

    def segment_sum(self, values: np.ndarray, segment_ids: np.ndarray,
                    n_segments: int) -> np.ndarray:
        out = np.zeros(n_segments, dtype=values.dtype)
        for k in range(values.shape[0]):
            out[segment_ids[k]] += values[k]
        return out

    def segment_max(self, values: np.ndarray, segment_ids: np.ndarray,
                    n_segments: int, initial: float = 0.0) -> np.ndarray:
        out = np.full(n_segments, -np.inf, dtype=float)
        for k in range(values.shape[0]):
            if values[k] > out[segment_ids[k]]:
                out[segment_ids[k]] = values[k]
        return np.where(np.isneginf(out), initial, out)

    # --- dense batched linear algebra ----------------------------------- #
    def batched_matvec(self, matrices: np.ndarray, vectors: np.ndarray) -> np.ndarray:
        matrices = np.broadcast_to(matrices,
                                   vectors.shape[:-1] + matrices.shape[-2:])
        out = np.empty_like(vectors)
        flat_m = matrices.reshape((-1,) + matrices.shape[-2:])
        flat_v = vectors.reshape((-1, vectors.shape[-1]))
        flat_o = out.reshape((-1, vectors.shape[-1]))
        for b in range(flat_v.shape[0]):
            flat_o[b] = np.einsum("ij,j->i", flat_m[b], flat_v[b])
        return out

    def batched_dot(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        out = np.empty(a.shape[:-1], dtype=np.result_type(a, b))
        flat_a = a.reshape((-1, a.shape[-1]))
        flat_b = b.reshape((-1, b.shape[-1]))
        flat_o = out.reshape(-1)
        for k in range(flat_a.shape[0]):
            flat_o[k] = np.einsum("i,i->", flat_a[k], flat_b[k])
        return out

    def batched_outer(self, a: np.ndarray, b: np.ndarray,
                      out: np.ndarray | None = None) -> np.ndarray:
        batch = a.shape[0]
        if out is None:
            out = np.empty((batch, a.shape[1], b.shape[1]),
                           dtype=np.result_type(a, b))
        for k in range(batch):
            np.einsum("i,j->ij", a[k], b[k], out=out[k])
        return out

    # --- compaction gather / scatter ------------------------------------ #
    def gather(self, array: np.ndarray, indices: np.ndarray,
               out: np.ndarray | None = None) -> np.ndarray:
        if out is None:
            out = np.empty((len(indices),) + array.shape[1:], dtype=array.dtype)
        for k in range(len(indices)):
            out[k] = array[indices[k]]
        return out

    def scatter(self, target: np.ndarray, indices: np.ndarray,
                values: np.ndarray) -> np.ndarray:
        if np.shape(values)[0] != len(indices):
            raise DimensionError("scatter values must match the index count")
        for k in range(len(indices)):
            target[indices[k]] = values[k]
        return target
