"""Pluggable kernel backends: one device-kernel API, NumPy as the oracle.

See :mod:`repro.parallel.backends.base` for the primitive set and
:mod:`repro.parallel.backends.registry` for selection semantics
(``REPRO_BACKEND``, solver options, third-party registration).
"""

from repro.parallel.backends.base import JIT_TOLERANCE, KernelBackend
from repro.parallel.backends.loop_backend import LoopBackend
from repro.parallel.backends.numba_backend import NumbaBackend
from repro.parallel.backends.numpy_backend import NumpyBackend
from repro.parallel.backends.registry import (
    BACKEND_ENV_VAR,
    available_backends,
    default_backend_name,
    get_backend,
    register_backend,
    unregister_backend,
)

__all__ = [
    "BACKEND_ENV_VAR",
    "JIT_TOLERANCE",
    "KernelBackend",
    "LoopBackend",
    "NumbaBackend",
    "NumpyBackend",
    "available_backends",
    "default_backend_name",
    "get_backend",
    "register_backend",
    "unregister_backend",
]
