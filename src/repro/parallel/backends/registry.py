"""Kernel-backend registry and selection.

Backends are registered by name and instantiated lazily (at most once per
process).  Selection precedence, mirroring the ``REPRO_COMPACTION`` escape
hatch:

1. an explicit name (or backend instance) passed by the caller — e.g.
   :attr:`repro.admm.parameters.AdmmParameters.kernel_backend`;
2. the ``REPRO_BACKEND`` environment variable;
3. the reference ``"numpy"`` backend.

Third-party backends plug in with::

    from repro.parallel import register_backend

    register_backend("mylib", MyLibBackend)          # factory, built lazily
    solve_acopf_admm(net, params=AdmmParameters(kernel_backend="mylib"))

Registration is per process: a backend registered in the parent is not
automatically available inside :class:`~repro.parallel.pool.DevicePool`
workers — register it at import time of a module the workers also import.
"""

from __future__ import annotations

import os
from typing import Callable

from repro.exceptions import ConfigurationError
from repro.parallel.backends.base import KernelBackend
from repro.parallel.backends.loop_backend import LoopBackend
from repro.parallel.backends.numba_backend import NumbaBackend
from repro.parallel.backends.numpy_backend import NumpyBackend

#: Environment variable naming the default backend (``REPRO_COMPACTION``'s
#: sibling): any registered name, e.g. ``numpy`` / ``loop`` / ``numba``.
BACKEND_ENV_VAR = "REPRO_BACKEND"

DEFAULT_BACKEND = "numpy"

_FACTORIES: dict[str, Callable[[], KernelBackend]] = {}
_INSTANCES: dict[str, KernelBackend] = {}


def register_backend(name: str, factory: Callable[[], KernelBackend],
                     *, overwrite: bool = False) -> None:
    """Register a backend factory (class or zero-argument callable).

    ``name`` becomes selectable via solver options and ``REPRO_BACKEND``.
    Re-registering an existing name requires ``overwrite=True``; the cached
    instance (if any) is dropped so the new factory takes effect.
    """
    name = str(name).strip().lower()
    if not name:
        raise ConfigurationError("backend name must be non-empty")
    if name in _FACTORIES and not overwrite:
        raise ConfigurationError(
            f"kernel backend {name!r} is already registered "
            "(pass overwrite=True to replace it)")
    _FACTORIES[name] = factory
    _INSTANCES.pop(name, None)


def unregister_backend(name: str) -> None:
    """Remove a registered backend (no-op for unknown names)."""
    _FACTORIES.pop(name, None)
    _INSTANCES.pop(name, None)


def available_backends() -> tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_FACTORIES))


def get_backend(name: str | KernelBackend | None = None) -> KernelBackend:
    """Resolve a backend by precedence: explicit name, env var, ``numpy``.

    Accepts a :class:`KernelBackend` instance (returned as-is), a registered
    name, or ``None`` to consult ``REPRO_BACKEND``.  Unknown names — from
    either source — raise :class:`~repro.exceptions.ConfigurationError`
    naming the registered alternatives.
    """
    if name is not None and not isinstance(name, str):
        return name
    source = "requested"
    if name is None:
        env = os.environ.get(BACKEND_ENV_VAR)
        if env is not None and env.strip():
            name, source = env, f"{BACKEND_ENV_VAR}"
        else:
            name = DEFAULT_BACKEND
    key = name.strip().lower()
    if key not in _FACTORIES:
        raise ConfigurationError(
            f"unknown kernel backend {name!r} ({source}); "
            f"registered backends: {', '.join(available_backends())}")
    if key not in _INSTANCES:
        _INSTANCES[key] = _FACTORIES[key]()
    return _INSTANCES[key]


def default_backend_name() -> str:
    """The name the current environment resolves to (for metric stamping)."""
    return get_backend().name


register_backend("numpy", NumpyBackend)
register_backend("loop", LoopBackend)
register_backend("numba", NumbaBackend)
