"""Reference vectorised NumPy backend — the bitwise verification oracle.

This is the execution path every solver used before the backend registry
existed, factored behind the :class:`~repro.parallel.backends.base.KernelBackend`
API.  Every other backend is differential-tested against it: exact backends
bitwise, JIT backends to :data:`~repro.parallel.backends.base.JIT_TOLERANCE`.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.parallel.backends.base import check_aligned


class NumpyBackend:
    """Vectorised NumPy execution of the kernel primitive set."""

    name = "numpy"
    exact = True

    # --- element-wise launches ----------------------------------------- #
    def launch_over_elements(self, fn: Callable[..., tuple | np.ndarray],
                             *arrays: np.ndarray) -> tuple | np.ndarray:
        check_aligned(arrays)
        return fn(*arrays)

    # --- scatter / segment reductions ---------------------------------- #
    def scatter_add(self, target: np.ndarray, indices: np.ndarray,
                    values: np.ndarray) -> np.ndarray:
        np.add.at(target, indices, values)
        return target

    def segment_sum(self, values: np.ndarray, segment_ids: np.ndarray,
                    n_segments: int) -> np.ndarray:
        out = np.zeros(n_segments, dtype=values.dtype)
        np.add.at(out, segment_ids, values)
        return out

    def segment_max(self, values: np.ndarray, segment_ids: np.ndarray,
                    n_segments: int, initial: float = 0.0) -> np.ndarray:
        out = np.full(n_segments, -np.inf, dtype=float)
        np.maximum.at(out, segment_ids, values)
        return np.where(np.isneginf(out), initial, out)

    # --- dense batched linear algebra ----------------------------------- #
    def batched_matvec(self, matrices: np.ndarray, vectors: np.ndarray) -> np.ndarray:
        return np.einsum("...ij,...j->...i", matrices, vectors)

    def batched_dot(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return np.einsum("...i,...i->...", a, b)

    def batched_outer(self, a: np.ndarray, b: np.ndarray,
                      out: np.ndarray | None = None) -> np.ndarray:
        if out is not None:
            return np.einsum("bi,bj->bij", a, b, out=out)
        return np.einsum("bi,bj->bij", a, b)

    # --- compaction gather / scatter ------------------------------------ #
    def gather(self, array: np.ndarray, indices: np.ndarray,
               out: np.ndarray | None = None) -> np.ndarray:
        if out is not None:
            return np.take(array, indices, axis=0, out=out)
        return array[indices]

    def scatter(self, target: np.ndarray, indices: np.ndarray,
                values: np.ndarray) -> np.ndarray:
        target[indices] = values
        return target
