"""The :class:`KernelBackend` protocol — one device-kernel API for every sweep.

Every hot sweep in the reproduction (ADMM closed-form updates, TRON
Cauchy/CG steps, compacted gathers) funnels through a small set of
primitives: element-wise kernel launches, scatter/segment reductions, the
dense batched linear algebra of the trust-region model, and the
gather/scatter pair of stream compaction.  A *kernel backend* is one
implementation of that set.  The reference :class:`NumpyBackend
<repro.parallel.backends.numpy_backend.NumpyBackend>` is the verification
oracle: any other backend must reproduce it bitwise when it declares
``exact = True``, or within :data:`JIT_TOLERANCE` otherwise (the contract
the conformance suite in ``tests/test_backends.py`` enforces for every
registered backend).

All primitives operate on the leading (batch / element) axis and must be
row-separable: row ``i`` of every output depends only on row ``i`` of the
inputs (plus shared per-segment targets for the reductions), which is what
makes stream compaction and per-element launches bitwise-equivalent to the
full sweep.
"""

from __future__ import annotations

from typing import Callable, Protocol, runtime_checkable

import numpy as np

from repro.exceptions import DimensionError

#: Relative tolerance granted to non-exact (JIT-compiled) backends by the
#: conformance suite.  JIT loop nests accumulate in plain ascending order
#: while NumPy's einsum uses blocked partial sums, so the last couple of
#: bits of a dot product may differ; anything beyond this bound is a bug.
JIT_TOLERANCE = 1e-12


def check_aligned(arrays: tuple[np.ndarray, ...]) -> int:
    """Validate that kernel arguments share their leading dimension.

    Returns that shared length.  Shared by every backend so the
    :func:`~repro.parallel.kernels.launch_over_elements` contract (at least
    one array, aligned leading axes) does not depend on the execution path.
    """
    if not arrays:
        raise DimensionError("launch_over_elements needs at least one array argument")
    length = arrays[0].shape[0]
    for arr in arrays:
        if arr.shape[0] != length:
            raise DimensionError("all kernel arguments must share their leading dimension")
    return length


@runtime_checkable
class KernelBackend(Protocol):
    """One implementation of the device-kernel primitive set.

    Attributes
    ----------
    name:
        Registry key and the label stamped into device metrics and
        ``BENCH_*.json`` records.
    exact:
        ``True`` when the backend promises bitwise identity with the NumPy
        oracle; ``False`` grants it :data:`JIT_TOLERANCE` in the
        conformance suite.
    """

    name: str
    exact: bool

    # --- element-wise launches ----------------------------------------- #
    def launch_over_elements(self, fn: Callable[..., tuple | np.ndarray],
                             *arrays: np.ndarray) -> tuple | np.ndarray:
        """Execute an element-wise kernel over aligned leading axes."""

    # --- scatter / segment reductions ---------------------------------- #
    def scatter_add(self, target: np.ndarray, indices: np.ndarray,
                    values: np.ndarray) -> np.ndarray:
        """Atomic-add analogue: accumulate ``values`` into ``target`` in place."""

    def segment_sum(self, values: np.ndarray, segment_ids: np.ndarray,
                    n_segments: int) -> np.ndarray:
        """Sum ``values`` grouped by ``segment_ids``."""

    def segment_max(self, values: np.ndarray, segment_ids: np.ndarray,
                    n_segments: int, initial: float = 0.0) -> np.ndarray:
        """Per-segment maximum; empty segments get ``initial``."""

    # --- dense batched linear algebra (TRON Cauchy / CG) ---------------- #
    def batched_matvec(self, matrices: np.ndarray, vectors: np.ndarray) -> np.ndarray:
        """``(B, n, n) @ (B, n) -> (B, n)`` Hessian-vector products."""

    def batched_dot(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Row-wise inner products ``(B, n) · (B, n) -> (B,)``."""

    def batched_outer(self, a: np.ndarray, b: np.ndarray,
                      out: np.ndarray | None = None) -> np.ndarray:
        """Row-wise outer products ``(B, n) ⊗ (B, m) -> (B, n, m)``."""

    # --- compaction gather / scatter ------------------------------------ #
    def gather(self, array: np.ndarray, indices: np.ndarray,
               out: np.ndarray | None = None) -> np.ndarray:
        """Pack rows ``indices`` of a resident array into a dense sub-batch."""

    def scatter(self, target: np.ndarray, indices: np.ndarray,
                values: np.ndarray) -> np.ndarray:
        """Write packed rows back into the resident array (in place)."""
