"""Optional numba-JIT backend with graceful NumPy degradation.

When :mod:`numba` is importable the scatter/segment reductions and the
dense batched linear algebra run as JIT-compiled loop nests (the same
technique the TRON b-step of the ``nr_clustering`` reference uses); when it
is not — this container ships no numba, only CI installs it — the backend
silently degrades to the reference NumPy implementations, so selecting
``REPRO_BACKEND=numba`` never errors on a numba-less host.

The JIT loop nests accumulate in plain ascending order while NumPy's
``einsum`` uses blocked partial sums, so dot-product results can differ in
the last bits; the backend therefore declares ``exact = False`` while JIT
is active and the conformance suite grants it
:data:`~repro.parallel.backends.base.JIT_TOLERANCE`.  With numba absent it
*is* the NumPy oracle and declares itself exact.

Element-wise launches (arbitrary Python kernels) and the gather/scatter
memory ops are delegated to NumPy either way: a generic callback cannot be
JIT-compiled from the outside, and fancy indexing is already a plain memory
copy.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.parallel.backends.numpy_backend import NumpyBackend


def _jit_sources() -> dict[str, Callable]:
    """Plain-Python kernel bodies handed to ``numba.njit`` (lazy compile)."""

    def scatter_add(target, indices, values):
        for k in range(indices.shape[0]):
            target[indices[k]] += values[k]
        return target

    def segment_sum(values, segment_ids, n_segments):
        out = np.zeros(n_segments, dtype=values.dtype)
        for k in range(values.shape[0]):
            out[segment_ids[k]] += values[k]
        return out

    def segment_max(values, segment_ids, n_segments, initial):
        out = np.full(n_segments, -np.inf)
        for k in range(values.shape[0]):
            if values[k] > out[segment_ids[k]]:
                out[segment_ids[k]] = values[k]
        for s in range(n_segments):
            if np.isinf(out[s]) and out[s] < 0:
                out[s] = initial
        return out

    def batched_matvec(matrices, vectors, out):
        batch, n = vectors.shape
        for b in range(batch):
            for i in range(n):
                acc = 0.0
                for j in range(n):
                    acc += matrices[b, i, j] * vectors[b, j]
                out[b, i] = acc
        return out

    def batched_dot(a, b, out):
        batch, n = a.shape
        for k in range(batch):
            acc = 0.0
            for i in range(n):
                acc += a[k, i] * b[k, i]
            out[k] = acc
        return out

    def batched_outer(a, b, out):
        batch, n = a.shape
        m = b.shape[1]
        for k in range(batch):
            for i in range(n):
                for j in range(m):
                    out[k, i, j] = a[k, i] * b[k, j]
        return out

    return {fn.__name__: fn for fn in (scatter_add, segment_sum, segment_max,
                                       batched_matvec, batched_dot, batched_outer)}


class NumbaBackend(NumpyBackend):
    """JIT-compiled kernel primitives, degrading to NumPy without numba."""

    name = "numba"

    def __init__(self) -> None:
        try:
            import numba
        except ImportError:
            numba = None
        self.jit_active = numba is not None
        self.exact = not self.jit_active
        if self.jit_active:
            self._jit = {key: numba.njit(cache=False)(fn)
                         for key, fn in _jit_sources().items()}

    # --- scatter / segment reductions ---------------------------------- #
    def scatter_add(self, target: np.ndarray, indices: np.ndarray,
                    values: np.ndarray) -> np.ndarray:
        if not self.jit_active:
            return super().scatter_add(target, indices, values)
        values = np.ascontiguousarray(
            np.broadcast_to(values, np.shape(indices)), dtype=target.dtype)
        return self._jit["scatter_add"](target,
                                        np.ascontiguousarray(indices, dtype=np.int64),
                                        values)

    def segment_sum(self, values: np.ndarray, segment_ids: np.ndarray,
                    n_segments: int) -> np.ndarray:
        if not self.jit_active:
            return super().segment_sum(values, segment_ids, n_segments)
        return self._jit["segment_sum"](
            np.ascontiguousarray(values),
            np.ascontiguousarray(segment_ids, dtype=np.int64), n_segments)

    def segment_max(self, values: np.ndarray, segment_ids: np.ndarray,
                    n_segments: int, initial: float = 0.0) -> np.ndarray:
        if not self.jit_active:
            return super().segment_max(values, segment_ids, n_segments, initial)
        return self._jit["segment_max"](
            np.ascontiguousarray(values, dtype=float),
            np.ascontiguousarray(segment_ids, dtype=np.int64),
            n_segments, float(initial))

    # --- dense batched linear algebra ----------------------------------- #
    def batched_matvec(self, matrices: np.ndarray, vectors: np.ndarray) -> np.ndarray:
        if not self.jit_active or matrices.ndim != 3 or vectors.ndim != 2:
            return super().batched_matvec(matrices, vectors)
        out = np.empty_like(vectors)
        return self._jit["batched_matvec"](
            np.ascontiguousarray(matrices, dtype=float),
            np.ascontiguousarray(vectors, dtype=float), out)

    def batched_dot(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        if not self.jit_active or a.ndim != 2 or b.ndim != 2:
            return super().batched_dot(a, b)
        out = np.empty(a.shape[0])
        return self._jit["batched_dot"](
            np.ascontiguousarray(a, dtype=float),
            np.ascontiguousarray(b, dtype=float), out)

    def batched_outer(self, a: np.ndarray, b: np.ndarray,
                      out: np.ndarray | None = None) -> np.ndarray:
        if not self.jit_active:
            return super().batched_outer(a, b, out=out)
        if out is None:
            out = np.empty((a.shape[0], a.shape[1], b.shape[1]))
        return self._jit["batched_outer"](
            np.ascontiguousarray(a, dtype=float),
            np.ascontiguousarray(b, dtype=float), out)
