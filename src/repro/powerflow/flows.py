"""Branch-flow recomputation and line-limit metrics.

The paper reports its solution with branch flows *recomputed from the bus
voltages* (Section IV-A) rather than taken from the branch components, and it
tightens the line limit to 99 % of capacity when checking violations.  Both
conventions are implemented here so the analysis module can reproduce the
reported ‖c(x)‖∞ metric faithfully.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.grid.network import Network
from repro.powerflow.branch_derivatives import all_flow_values, branch_quantities


@dataclass(frozen=True)
class BranchFlowResult:
    """Per-branch flows (per unit) evaluated at a voltage profile."""

    pij: np.ndarray
    qij: np.ndarray
    pji: np.ndarray
    qji: np.ndarray

    @property
    def apparent_from(self) -> np.ndarray:
        """Apparent power magnitude at the from end."""
        return np.hypot(self.pij, self.qij)

    @property
    def apparent_to(self) -> np.ndarray:
        """Apparent power magnitude at the to end."""
        return np.hypot(self.pji, self.qji)


def branch_flows(network: Network, vm: np.ndarray, va: np.ndarray) -> BranchFlowResult:
    """Evaluate all branch flows from bus voltage magnitudes and angles."""
    vm = np.asarray(vm, dtype=float)
    va = np.asarray(va, dtype=float)
    quantities = branch_quantities(network)
    vi = vm[network.branch_from]
    vj = vm[network.branch_to]
    ti = va[network.branch_from]
    tj = va[network.branch_to]
    pij, qij, pji, qji = all_flow_values(quantities, vi, vj, ti, tj)
    return BranchFlowResult(pij=pij, qij=qij, pji=pji, qji=qji)


def line_limit_violation(network: Network, flows: BranchFlowResult,
                         capacity_fraction: float = 1.0) -> np.ndarray:
    """Per-branch line-limit violation (per unit, 0 where satisfied).

    ``capacity_fraction`` scales the rating before checking; the paper uses
    0.99 when reporting its ADMM solutions.
    Unlimited branches (rating 0) never violate.
    """
    limit = network.branch_rate_a * capacity_fraction
    violation_from = flows.apparent_from - limit
    violation_to = flows.apparent_to - limit
    violation = np.maximum(np.maximum(violation_from, violation_to), 0.0)
    violation[~network.branch_has_limit] = 0.0
    return violation


def power_balance_residual(network: Network, vm: np.ndarray, va: np.ndarray,
                           pg: np.ndarray, qg: np.ndarray
                           ) -> tuple[np.ndarray, np.ndarray]:
    """Real / reactive power-balance residual at every bus (per unit).

    Positive residual means more power enters the bus than leaves it.  Flows
    are recomputed from the voltages (the paper's reporting convention).
    """
    flows = branch_flows(network, vm, va)
    nb = network.n_bus
    p_res = -network.bus_pd - network.bus_gs * vm * vm
    q_res = -network.bus_qd + network.bus_bs * vm * vm
    p_res = p_res.copy()
    q_res = q_res.copy()
    np.add.at(p_res, network.gen_bus[network.gen_status], pg[network.gen_status])
    np.add.at(q_res, network.gen_bus[network.gen_status], qg[network.gen_status])
    np.subtract.at(p_res, network.branch_from, flows.pij)
    np.subtract.at(q_res, network.branch_from, flows.qij)
    np.subtract.at(p_res, network.branch_to, flows.pji)
    np.subtract.at(q_res, network.branch_to, flows.qji)
    assert p_res.shape == (nb,)
    return p_res, q_res
