"""Power-flow substrate shared by every solver in the package.

* :mod:`repro.powerflow.ybus` — sparse bus/branch admittance matrices;
* :mod:`repro.powerflow.branch_derivatives` — vectorised per-branch flow
  values, gradients, and Hessians in polar voltage coordinates (the single
  implementation of branch physics used by the ADMM branch subproblems, the
  interior-point baseline, and the Newton power flow);
* :mod:`repro.powerflow.flows` — branch-flow recomputation from bus voltages
  and line-limit violation metrics;
* :mod:`repro.powerflow.newton` — Newton–Raphson AC power flow;
* :mod:`repro.powerflow.dc` — DC (linearised) power flow.
"""

from repro.powerflow.branch_derivatives import (
    BranchQuantities,
    branch_quantities,
    quantity_value,
    quantity_value_grad,
    quantity_value_grad_hess,
)
from repro.powerflow.flows import branch_flows, line_limit_violation
from repro.powerflow.newton import NewtonResult, solve_power_flow
from repro.powerflow.ybus import build_ybus
from repro.powerflow.dc import dc_power_flow

__all__ = [
    "BranchQuantities",
    "branch_quantities",
    "quantity_value",
    "quantity_value_grad",
    "quantity_value_grad_hess",
    "branch_flows",
    "line_limit_violation",
    "NewtonResult",
    "solve_power_flow",
    "build_ybus",
    "dc_power_flow",
]
