"""Sparse admittance-matrix assembly.

``Ybus`` relates complex bus voltages to complex bus current injections,
``I = Ybus V``; ``Yf`` and ``Yt`` give the branch currents measured at the
from- and to-ends.  The entries are built from the same per-branch
coefficients the :class:`~repro.grid.network.Network` exposes, so the matrix
and the per-branch formulations are consistent by construction.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.grid.network import Network


def build_ybus(network: Network) -> tuple[sparse.csr_matrix, sparse.csr_matrix, sparse.csr_matrix]:
    """Return ``(Ybus, Yf, Yt)`` as CSR matrices.

    ``Ybus`` is ``n_bus x n_bus``; ``Yf`` and ``Yt`` are ``n_branch x n_bus``
    such that the from-side complex flow of branch ``l`` is
    ``V_f[l] * conj((Yf @ V)[l])``.
    """
    nb, nl = network.n_bus, network.n_branch
    f = network.branch_from
    t = network.branch_to
    yff = network.branch_g_ii + 1j * network.branch_b_ii
    yft = network.branch_g_ij + 1j * network.branch_b_ij
    ytf = network.branch_g_ji + 1j * network.branch_b_ji
    ytt = network.branch_g_jj + 1j * network.branch_b_jj

    rows_f = np.arange(nl)
    yf = sparse.coo_matrix(
        (np.concatenate([yff, yft]),
         (np.concatenate([rows_f, rows_f]), np.concatenate([f, t]))),
        shape=(nl, nb)).tocsr()
    yt = sparse.coo_matrix(
        (np.concatenate([ytf, ytt]),
         (np.concatenate([rows_f, rows_f]), np.concatenate([f, t]))),
        shape=(nl, nb)).tocsr()

    ysh = network.bus_gs + 1j * network.bus_bs
    cf = sparse.coo_matrix((np.ones(nl), (rows_f, f)), shape=(nl, nb)).tocsr()
    ct = sparse.coo_matrix((np.ones(nl), (rows_f, t)), shape=(nl, nb)).tocsr()
    ybus = cf.T @ yf + ct.T @ yt + sparse.diags(ysh)
    return ybus.tocsr(), yf, yt


def bus_injections(network: Network, vm: np.ndarray, va: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Complex power injected into the network at each bus, split into P and Q.

    Positive values mean power flowing from the bus into the grid (i.e. the
    value that generation minus load must equal at a solved operating point).
    """
    ybus, _, _ = build_ybus(network)
    v = vm * np.exp(1j * va)
    s = v * np.conj(ybus @ v)
    return s.real, s.imag
