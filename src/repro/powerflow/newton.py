"""Newton–Raphson AC power flow.

The power flow solves for bus voltages given a fixed generation dispatch:
PQ buses have both injections specified, PV buses hold their voltage
magnitude and real injection, and the reference bus holds magnitude and
angle.  The solver is used to produce physically consistent starting points,
to validate optimal dispatches produced by the ACOPF solvers, and in tests
as an independent check of the branch-physics implementation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import spsolve

from repro.exceptions import ConvergenceError
from repro.grid.components import BusType
from repro.grid.network import Network
from repro.powerflow.ybus import build_ybus


@dataclass
class NewtonResult:
    """Result of a Newton–Raphson power-flow solve."""

    vm: np.ndarray
    va: np.ndarray
    converged: bool
    iterations: int
    max_mismatch: float


def _bus_power(ybus: sparse.spmatrix, vm: np.ndarray, va: np.ndarray) -> np.ndarray:
    v = vm * np.exp(1j * va)
    return v * np.conj(ybus @ v)


def _jacobian(ybus: sparse.spmatrix, vm: np.ndarray, va: np.ndarray,
              pvpq: np.ndarray, pq: np.ndarray) -> sparse.csr_matrix:
    """Standard polar power-flow Jacobian restricted to the unknowns."""
    v = vm * np.exp(1j * va)
    ibus = ybus @ v
    diag_v = sparse.diags(v)
    diag_i = sparse.diags(ibus)
    diag_vnorm = sparse.diags(v / np.abs(v))
    ds_dva = 1j * diag_v @ (np.conj(diag_i) - np.conj(ybus @ diag_v))
    ds_dvm = diag_v @ np.conj(ybus @ diag_vnorm) + np.conj(diag_i) @ diag_vnorm

    j11 = ds_dva[pvpq][:, pvpq].real
    j12 = ds_dvm[pvpq][:, pq].real
    j21 = ds_dva[pq][:, pvpq].imag
    j22 = ds_dvm[pq][:, pq].imag
    return sparse.bmat([[j11, j12], [j21, j22]], format="csr")


def solve_power_flow(network: Network, pg: np.ndarray | None = None,
                     qg: np.ndarray | None = None, vm0: np.ndarray | None = None,
                     va0: np.ndarray | None = None, tol: float = 1e-8,
                     max_iter: int = 30, raise_on_failure: bool = False) -> NewtonResult:
    """Run a Newton–Raphson power flow.

    Parameters
    ----------
    network:
        Grid to solve.
    pg, qg:
        Generator real / reactive dispatch in per unit (defaults to the case
        file's dispatch).  Reactive dispatch only matters for PQ-modelled
        generators, which the standard formulation does not use.
    vm0, va0:
        Initial voltage guess (defaults: case-file magnitudes for PV/REF
        buses, flat 1.0 pu elsewhere, zero angles).
    tol:
        Infinity-norm mismatch tolerance in per unit.
    max_iter:
        Maximum Newton iterations.
    raise_on_failure:
        Raise :class:`ConvergenceError` instead of returning a non-converged
        result.
    """
    nb = network.n_bus
    ybus, _, _ = build_ybus(network)
    bus_type = network.bus_type
    ref = np.flatnonzero(bus_type == int(BusType.REF))
    pv = np.flatnonzero(bus_type == int(BusType.PV))
    pq = np.flatnonzero((bus_type != int(BusType.REF)) & (bus_type != int(BusType.PV)))
    pvpq = np.concatenate([pv, pq])

    if pg is None:
        pg = network.gen_pg0
    pg = np.asarray(pg, dtype=float)
    if qg is None:
        qg = network.gen_qg0
    qg = np.asarray(qg, dtype=float)

    p_spec = -network.bus_pd.copy()
    q_spec = -network.bus_qd.copy()
    np.add.at(p_spec, network.gen_bus[network.gen_status], pg[network.gen_status])
    np.add.at(q_spec, network.gen_bus[network.gen_status], qg[network.gen_status])

    vm = network.bus_vm0.copy() if vm0 is None else np.asarray(vm0, dtype=float).copy()
    va = np.zeros(nb) if va0 is None else np.asarray(va0, dtype=float).copy()
    # PV / REF buses hold the generator voltage set point when one is given.
    for g in range(network.n_gen):
        if network.gen_status[g]:
            bus = network.gen_bus[g]
            if bus_type[bus] in (int(BusType.PV), int(BusType.REF)) and vm0 is None:
                setpoint = network.generators[g].vg
                if setpoint > 0:
                    vm[bus] = setpoint
    va[ref] = network.bus_va0[ref]

    converged = False
    iterations = 0
    mismatch_norm = np.inf
    for iterations in range(1, max_iter + 1):
        s = _bus_power(ybus, vm, va)
        dp = s.real - p_spec
        dq = s.imag - q_spec
        mismatch = np.concatenate([dp[pvpq], dq[pq]])
        mismatch_norm = float(np.max(np.abs(mismatch))) if mismatch.size else 0.0
        if mismatch_norm < tol:
            converged = True
            break
        jac = _jacobian(ybus, vm, va, pvpq, pq)
        try:
            step = spsolve(jac.tocsc(), mismatch)
        except RuntimeError as exc:  # singular Jacobian
            if raise_on_failure:
                raise ConvergenceError(f"power flow Jacobian solve failed: {exc}",
                                       iterations=iterations,
                                       residual=mismatch_norm) from exc
            break
        n_ang = pvpq.size
        va[pvpq] -= step[:n_ang]
        vm[pq] -= step[n_ang:]

    if not converged and raise_on_failure:
        raise ConvergenceError("power flow did not converge",
                               iterations=iterations, residual=mismatch_norm)
    return NewtonResult(vm=vm, va=va, converged=converged, iterations=iterations,
                        max_mismatch=mismatch_norm)
