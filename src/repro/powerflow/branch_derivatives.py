"""Vectorised per-branch flow values, gradients, and Hessians.

Every branch flow quantity used in the paper's formulation (1i)–(1l) has the
common polar form

``flow = K_i v_i^2 + K_j v_j^2 + v_i v_j (a_c cos(θ_i - θ_j) + a_s sin(θ_i - θ_j))``

for constants ``(K_i, K_j, a_c, a_s)`` determined by the branch admittance:

=========  ========  ========  =======  =======
quantity     K_i       K_j      a_c      a_s
=========  ========  ========  =======  =======
``p_ij``    g_ii       0        g_ij     b_ij
``q_ij``   -b_ii       0       -b_ij     g_ij
``p_ji``     0        g_jj      g_ji    -b_ji
``q_ji``     0       -b_jj     -b_ji    -g_ji
=========  ========  ========  =======  =======

This module evaluates the value, the gradient, and the Hessian of each
quantity with respect to the local state ``(v_i, v_j, θ_i, θ_j)`` for a whole
array of branches at once.  It is the single implementation of branch physics
shared by the ADMM branch subproblems (where the batch axis plays the role of
the GPU thread-block grid), the interior-point baseline (where the per-branch
blocks are scattered into sparse constraint Jacobians/Hessians), the Newton
power flow, and the flow-recomputation step of the reported solution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.grid.network import Network

#: Order of the local state used by gradients/Hessians produced here.
LOCAL_STATE = ("vi", "vj", "ti", "tj")


@dataclass(frozen=True)
class FlowCoefficients:
    """Coefficients of one flow quantity for an array of branches."""

    k_i: np.ndarray
    k_j: np.ndarray
    a_c: np.ndarray
    a_s: np.ndarray

    def __len__(self) -> int:  # pragma: no cover - trivial
        return self.k_i.shape[0]

    def take(self, idx: np.ndarray) -> "FlowCoefficients":
        """Coefficients restricted to the branches ``idx``."""
        return FlowCoefficients(self.k_i[idx], self.k_j[idx], self.a_c[idx], self.a_s[idx])

    @staticmethod
    def concatenate(parts: "Sequence[FlowCoefficients]") -> "FlowCoefficients":
        """Stack coefficients of several branch sets along the branch axis."""
        return FlowCoefficients(
            np.concatenate([p.k_i for p in parts]),
            np.concatenate([p.k_j for p in parts]),
            np.concatenate([p.a_c for p in parts]),
            np.concatenate([p.a_s for p in parts]))


@dataclass(frozen=True)
class BranchQuantities:
    """The four flow quantities of an array of branches."""

    pij: FlowCoefficients
    qij: FlowCoefficients
    pji: FlowCoefficients
    qji: FlowCoefficients

    def __len__(self) -> int:  # pragma: no cover - trivial
        return len(self.pij)

    def take(self, idx: np.ndarray) -> "BranchQuantities":
        """Quantities restricted to the branches ``idx``."""
        return BranchQuantities(self.pij.take(idx), self.qij.take(idx),
                                self.pji.take(idx), self.qji.take(idx))

    @staticmethod
    def concatenate(parts: "Sequence[BranchQuantities]") -> "BranchQuantities":
        """Stack quantities of several branch sets (scenario batching)."""
        return BranchQuantities(
            FlowCoefficients.concatenate([p.pij for p in parts]),
            FlowCoefficients.concatenate([p.qij for p in parts]),
            FlowCoefficients.concatenate([p.pji for p in parts]),
            FlowCoefficients.concatenate([p.qji for p in parts]))

    def as_tuple(self) -> tuple[FlowCoefficients, ...]:
        return (self.pij, self.qij, self.pji, self.qji)


def branch_quantities(network: Network) -> BranchQuantities:
    """Build the flow-quantity coefficients for every in-service branch."""
    zeros = np.zeros(network.n_branch)
    pij = FlowCoefficients(network.branch_g_ii.copy(), zeros.copy(),
                           network.branch_g_ij.copy(), network.branch_b_ij.copy())
    qij = FlowCoefficients(-network.branch_b_ii, zeros.copy(),
                           -network.branch_b_ij, network.branch_g_ij.copy())
    pji = FlowCoefficients(zeros.copy(), network.branch_g_jj.copy(),
                           network.branch_g_ji.copy(), -network.branch_b_ji)
    qji = FlowCoefficients(zeros.copy(), -network.branch_b_jj,
                           -network.branch_b_ji, -network.branch_g_ji)
    return BranchQuantities(pij=pij, qij=qij, pji=pji, qji=qji)


def _trig(coeff: FlowCoefficients, ti: np.ndarray, tj: np.ndarray
          ) -> tuple[np.ndarray, np.ndarray]:
    """Return ``T = a_c cos + a_s sin`` and its θ-derivative ``T'``."""
    dij = ti - tj
    cos = np.cos(dij)
    sin = np.sin(dij)
    trig = coeff.a_c * cos + coeff.a_s * sin
    dtrig = -coeff.a_c * sin + coeff.a_s * cos
    return trig, dtrig


def quantity_value(coeff: FlowCoefficients, vi: np.ndarray, vj: np.ndarray,
                   ti: np.ndarray, tj: np.ndarray) -> np.ndarray:
    """Flow value for each branch (vectorised)."""
    trig, _ = _trig(coeff, ti, tj)
    return coeff.k_i * vi * vi + coeff.k_j * vj * vj + vi * vj * trig


def quantity_value_grad(coeff: FlowCoefficients, vi: np.ndarray, vj: np.ndarray,
                        ti: np.ndarray, tj: np.ndarray
                        ) -> tuple[np.ndarray, np.ndarray]:
    """Flow value and gradient w.r.t. ``(vi, vj, ti, tj)``.

    Returns
    -------
    value:
        Array of shape ``(n,)``.
    grad:
        Array of shape ``(n, 4)`` ordered as :data:`LOCAL_STATE`.
    """
    trig, dtrig = _trig(coeff, ti, tj)
    value = coeff.k_i * vi * vi + coeff.k_j * vj * vj + vi * vj * trig
    grad = np.empty(vi.shape + (4,))
    grad[..., 0] = 2.0 * coeff.k_i * vi + vj * trig
    grad[..., 1] = 2.0 * coeff.k_j * vj + vi * trig
    grad[..., 2] = vi * vj * dtrig
    grad[..., 3] = -vi * vj * dtrig
    return value, grad


def quantity_value_grad_hess(coeff: FlowCoefficients, vi: np.ndarray, vj: np.ndarray,
                             ti: np.ndarray, tj: np.ndarray
                             ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Flow value, gradient, and Hessian w.r.t. ``(vi, vj, ti, tj)``.

    The Hessian uses that the second θ-derivative of the trigonometric part
    equals its negative (``T'' = -T``).

    Returns
    -------
    value:
        Shape ``(n,)``.
    grad:
        Shape ``(n, 4)``.
    hess:
        Shape ``(n, 4, 4)``, symmetric in the last two axes.
    """
    trig, dtrig = _trig(coeff, ti, tj)
    value = coeff.k_i * vi * vi + coeff.k_j * vj * vj + vi * vj * trig
    grad = np.empty(vi.shape + (4,))
    grad[..., 0] = 2.0 * coeff.k_i * vi + vj * trig
    grad[..., 1] = 2.0 * coeff.k_j * vj + vi * trig
    grad[..., 2] = vi * vj * dtrig
    grad[..., 3] = -vi * vj * dtrig

    hess = np.zeros(vi.shape + (4, 4))
    vivj_trig = vi * vj * trig
    hess[..., 0, 0] = 2.0 * coeff.k_i
    hess[..., 1, 1] = 2.0 * coeff.k_j
    hess[..., 0, 1] = hess[..., 1, 0] = trig
    hess[..., 0, 2] = hess[..., 2, 0] = vj * dtrig
    hess[..., 0, 3] = hess[..., 3, 0] = -vj * dtrig
    hess[..., 1, 2] = hess[..., 2, 1] = vi * dtrig
    hess[..., 1, 3] = hess[..., 3, 1] = -vi * dtrig
    hess[..., 2, 2] = -vivj_trig
    hess[..., 3, 3] = -vivj_trig
    hess[..., 2, 3] = hess[..., 3, 2] = vivj_trig
    return value, grad, hess


def all_flow_values(quantities: BranchQuantities, vi: np.ndarray, vj: np.ndarray,
                    ti: np.ndarray, tj: np.ndarray
                    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Convenience wrapper returning ``(pij, qij, pji, qji)`` arrays."""
    return tuple(quantity_value(c, vi, vj, ti, tj) for c in quantities.as_tuple())
