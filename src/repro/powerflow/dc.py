"""DC (linearised) power flow.

Used for quick feasibility screening, for sizing line ratings in the
synthetic-case generator, and as a sanity baseline in tests.  The DC model
neglects losses, reactive power, and voltage magnitudes: branch flow is
``(θ_f - θ_t) / x`` and bus angles solve a linear system driven by net real
injections.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import spsolve

from repro.grid.network import Network


@dataclass(frozen=True)
class DcFlowResult:
    """Angles (rad) and per-branch real flows (pu) of a DC power flow."""

    va: np.ndarray
    flows: np.ndarray
    injections: np.ndarray


def dc_power_flow(network: Network, pg: np.ndarray | None = None) -> DcFlowResult:
    """Solve the DC power flow.

    Parameters
    ----------
    network:
        The grid.
    pg:
        Per-generator real dispatch in per unit.  Defaults to distributing
        the total load across in-service generators in proportion to their
        capacity (a reasonable nominal operating point).
    """
    nb = network.n_bus
    f = network.branch_from
    t = network.branch_to
    # Series reactance recovered from the admittance transfer term:
    # for a line without transformer, b_ij ≈ x / (r^2 + x^2); the DC model
    # only needs a positive susceptance weight per branch.
    weight = np.abs(network.branch_b_ij)
    weight = np.where(weight > 1e-12, weight, 1e-12)

    if pg is None:
        cap = network.gen_pmax.copy()
        cap[~network.gen_status] = 0.0
        total_cap = cap.sum()
        total_load = network.bus_pd.sum()
        pg = cap / total_cap * total_load if total_cap > 0 else np.zeros(network.n_gen)
    pg = np.asarray(pg, dtype=float)

    injections = -network.bus_pd.copy()
    np.add.at(injections, network.gen_bus[network.gen_status], pg[network.gen_status])
    injections = injections - injections.mean()

    rows = np.concatenate([f, t, f, t])
    cols = np.concatenate([f, t, t, f])
    vals = np.concatenate([weight, weight, -weight, -weight])
    b_matrix = sparse.coo_matrix((vals, (rows, cols)), shape=(nb, nb)).tocsc()

    ref = network.ref_bus
    keep = np.array([i for i in range(nb) if i != ref])
    va = np.zeros(nb)
    if keep.size:
        va[keep] = spsolve(b_matrix[keep][:, keep], injections[keep])
    flows = (va[f] - va[t]) * weight
    return DcFlowResult(va=va, flows=flows, injections=injections)
