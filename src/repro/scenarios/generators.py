"""Scenario generators: load scalings, N-1 contingencies, penalty sweeps.

Each generator returns a :class:`~repro.scenarios.scenario.ScenarioSet`
ready for :func:`repro.admm.batch_solver.solve_acopf_admm_batch`.  The
generated networks are independent copies — the base network is never
mutated — and scenario names encode the perturbation so batched reports
stay readable.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import ConfigurationError, DataError
from repro.grid.network import Network
from repro.grid.validation import connected_components_from_edges
from repro.scenarios.scenario import Scenario, ScenarioSet


def load_scaling_scenarios(network: Network, factors: Sequence[float],
                           name: str | None = None) -> ScenarioSet:
    """One scenario per demand multiplier (uniform over all buses)."""
    factors = [float(f) for f in factors]
    if not factors:
        raise ConfigurationError("load_scaling_scenarios needs at least one factor")
    scenarios = []
    for factor in factors:
        label = f"{network.name}@x{factor:g}"
        scenarios.append(Scenario(
            name=label, network=network.with_scaled_loads(factor, name=label)))
    return ScenarioSet(scenarios=tuple(scenarios),
                       name=name or f"{network.name}-load-scalings")


def monte_carlo_load_scenarios(network: Network, n_scenarios: int,
                               sigma: float = 0.05, seed: int = 0,
                               name: str | None = None) -> ScenarioSet:
    """Random per-bus demand perturbations (lognormal, mean one)."""
    if n_scenarios < 1:
        raise ConfigurationError("n_scenarios must be at least 1")
    rng = np.random.default_rng(seed)
    scenarios = []
    for k in range(n_scenarios):
        factors = np.exp(rng.normal(loc=-0.5 * sigma * sigma, scale=sigma,
                                    size=network.n_bus))
        label = f"{network.name}@mc{k}"
        scenarios.append(Scenario(
            name=label, network=network.with_scaled_loads(factors, name=label)))
    return ScenarioSet(scenarios=tuple(scenarios),
                       name=name or f"{network.name}-monte-carlo")


def contingency_scenarios(network: Network,
                          branch_indices: Sequence[int] | None = None,
                          include_base: bool = False,
                          name: str | None = None) -> ScenarioSet:
    """N-1 branch-outage scenarios (one per surviving in-service branch).

    Outages that would disconnect the network (bridges in the branch graph)
    are skipped silently when ``branch_indices`` is ``None`` and rejected
    with :class:`DataError` when requested explicitly — a disconnected
    island has no reference angle and the stacked solve would be singular.
    """
    explicit = branch_indices is not None
    if branch_indices is None:
        branch_indices = range(network.n_branch)
    scenarios = []
    if include_base:
        scenarios.append(Scenario(name=f"{network.name}@base", network=network))
    for index in branch_indices:
        index = int(index)
        if not 0 <= index < network.n_branch:
            raise ConfigurationError(
                f"branch index {index} out of range for {network.n_branch} branches")
        if not _connected_without(network, index):
            if explicit:
                raise DataError(
                    f"outage of branch {index} disconnects {network.name}")
            continue
        scenarios.append(Scenario(
            name=f"{network.name}@n-1:{index}",
            network=network.with_branch_outage(index)))
    if not scenarios:
        raise DataError(
            f"every N-1 outage disconnects {network.name}; no scenarios generated")
    return ScenarioSet(scenarios=tuple(scenarios),
                       name=name or f"{network.name}-n-1")


def penalty_sweep_scenarios(network: Network,
                            penalties: Sequence[tuple[float, float]],
                            name: str | None = None) -> ScenarioSet:
    """One scenario per ``(rho_pq, rho_va)`` pair, all on the same network."""
    penalties = list(penalties)
    if not penalties:
        raise ConfigurationError("penalty_sweep_scenarios needs at least one pair")
    scenarios = []
    for rho_pq, rho_va in penalties:
        scenarios.append(Scenario(
            name=f"{network.name}@rho({rho_pq:g},{rho_va:g})",
            network=network, rho_pq=float(rho_pq), rho_va=float(rho_va)))
    return ScenarioSet(scenarios=tuple(scenarios),
                       name=name or f"{network.name}-penalty-sweep")


# --------------------------------------------------------------------- #
# Period-indexed generation (rolling-horizon tracking)                    #
# --------------------------------------------------------------------- #
#: Base-fleet kinds :func:`tracking_fleet` can build.
TRACKING_FLEET_KINDS = ("load", "n-1", "monte-carlo")


def tracking_fleet(network: Network, kind: str = "load", n_scenarios: int = 8,
                   spread: float = 0.06, sigma: float = 0.05, seed: int = 0,
                   name: str | None = None) -> ScenarioSet:
    """A base fleet for the rolling-horizon tracking pipeline.

    ``kind`` selects the scenario family the horizon is tracked over:
    ``"load"`` — operating points spread ``±spread`` around nominal demand;
    ``"n-1"`` — the first ``n_scenarios`` non-islanding branch outages (the
    base case included); ``"monte-carlo"`` — random per-bus demand
    perturbations with relative spread ``sigma``.  Any hand-built
    :class:`ScenarioSet` works with the pipeline too — this is just the
    convenient spelling of the three standard bases.
    """
    if n_scenarios < 1:
        raise ConfigurationError("a tracking fleet needs at least one scenario")
    if kind == "load":
        factors = np.linspace(1.0 - spread, 1.0 + spread, n_scenarios)
        if n_scenarios == 1:
            factors = np.array([1.0])
        fleet = load_scaling_scenarios(network, factors)
    elif kind == "n-1":
        fleet = contingency_scenarios(network, include_base=True)
        fleet = ScenarioSet(scenarios=fleet.scenarios[:n_scenarios],
                            name=fleet.name)
        if len(fleet) < n_scenarios:
            raise DataError(
                f"{network.name} has only {len(fleet)} non-islanding N-1 "
                f"scenarios (base included); {n_scenarios} requested")
    elif kind == "monte-carlo":
        fleet = monte_carlo_load_scenarios(network, n_scenarios, sigma=sigma,
                                           seed=seed)
    else:
        raise ConfigurationError(
            f"unknown tracking fleet kind {kind!r}; choose from "
            f"{TRACKING_FLEET_KINDS}")
    if name is not None:
        fleet = ScenarioSet(scenarios=fleet.scenarios, name=name)
    return fleet


def period_scenario_sets(base, profile) -> list["ScenarioSet"]:
    """Expand a base fleet × load profile into one :class:`ScenarioSet` per period.

    Period ``t``'s set holds every base scenario with its loads scaled by
    the profile's period-``t`` multiplier (``profile`` may also be one
    :class:`~repro.tracking.load_profile.LoadProfile` per scenario).  This
    is the straightforward, network-rebuilding expansion — handy for
    feeding arbitrary period batches to
    :func:`~repro.admm.batch_solver.solve_acopf_admm_batch`; the tracking
    pipeline (:func:`~repro.tracking.pipeline.track_horizon_batch`)
    performs the same expansion vectorised on stacked arrays and adds the
    ramp coupling, which depends on dispatch and is therefore not a
    generator's job.
    """
    from repro.scenarios.scenario import as_scenario_set
    from repro.tracking.load_profile import normalize_profiles

    base = as_scenario_set(base)
    profiles = normalize_profiles(profile, len(base))
    sets = []
    for period in range(profiles[0].n_periods):
        scenarios = tuple(
            Scenario(name=scenario.name,
                     network=scenario.network.with_scaled_loads(
                         profiles[s].multiplier(period)),
                     rho_pq=scenario.rho_pq, rho_va=scenario.rho_va)
            for s, scenario in enumerate(base.scenarios))
        sets.append(ScenarioSet(scenarios=scenarios,
                                name=f"{base.name}@t{period}"))
    return sets


# --------------------------------------------------------------------- #
def _connected_without(network: Network, outage: int) -> bool:
    """Whether the bus graph stays connected after removing one branch."""
    keep = np.arange(network.n_branch) != outage
    components = connected_components_from_edges(
        network.n_bus, network.branch_from[keep], network.branch_to[keep])
    return len(components) == 1
