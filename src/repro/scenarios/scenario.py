"""Scenario and scenario-set containers.

A :class:`Scenario` is one independent ACOPF instance — a network plus
optional per-scenario consensus-penalty overrides.  A :class:`ScenarioSet`
is an ordered collection of scenarios destined for one batched solve: the
ADMM subproblems are component-separable and scenarios never couple, so a
set of S scenarios is solved as the disjoint union of S component sets in
one kernel stream (the batch axis plays the role of the paper's GPU).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.exceptions import ConfigurationError
from repro.grid.network import Network
from repro.scenarios.layout import DEFAULT_COST_WEIGHTS, partition_costs


def scenario_cost(network: Network,
                  weights: dict[str, float] | None = None) -> float:
    """Estimated element count of one scenario (the placement cost model).

    Uses the same per-axis weights as
    :meth:`~repro.scenarios.layout.ScenarioLayout.scenario_costs`, computed
    from the network's active-generator / branch / bus counts, so shards can
    be cost-balanced before any stacked layout exists.
    """
    weights = DEFAULT_COST_WEIGHTS if weights is None else weights
    counts = {"gen": network.n_gen_active, "branch": network.n_branch,
              "bus": network.n_bus}
    return float(sum(float(weights.get(axis, 0.0)) * counts[axis]
                     for axis in counts))


@dataclass(frozen=True)
class Scenario:
    """One independent ACOPF instance inside a batch.

    Attributes
    ----------
    name:
        Label used for the reported per-scenario solution.
    network:
        The grid this scenario solves (already perturbed: scaled loads,
        outaged branch, ...).
    rho_pq, rho_va:
        Optional per-scenario consensus-penalty overrides.  ``None`` defers
        to the batch solver's shared parameters (or the per-case Table I
        heuristic when no shared parameters are given).
    """

    name: str
    network: Network
    rho_pq: float | None = None
    rho_va: float | None = None

    def __post_init__(self) -> None:
        if self.rho_pq is not None and self.rho_pq <= 0:
            raise ConfigurationError(f"scenario {self.name!r}: rho_pq must be positive")
        if self.rho_va is not None and self.rho_va <= 0:
            raise ConfigurationError(f"scenario {self.name!r}: rho_va must be positive")


@dataclass(frozen=True)
class ScenarioSet:
    """An ordered batch of scenarios for one stacked ADMM solve."""

    scenarios: tuple[Scenario, ...]
    name: str = "scenarios"

    def __post_init__(self) -> None:
        if not self.scenarios:
            raise ConfigurationError("a scenario set needs at least one scenario")
        object.__setattr__(self, "scenarios", tuple(self.scenarios))

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.scenarios)

    def __iter__(self) -> Iterator[Scenario]:
        return iter(self.scenarios)

    def __getitem__(self, index: int) -> Scenario:
        return self.scenarios[index]

    @property
    def names(self) -> list[str]:
        return [scenario.name for scenario in self.scenarios]

    @property
    def networks(self) -> list[Network]:
        return [scenario.network for scenario in self.scenarios]

    def extended(self, other: "ScenarioSet | Iterable[Scenario]") -> "ScenarioSet":
        """A new set with the scenarios of ``other`` appended."""
        extra = tuple(other.scenarios if isinstance(other, ScenarioSet) else other)
        return ScenarioSet(scenarios=self.scenarios + extra, name=self.name)

    def subset(self, indices: Sequence[int], name: str | None = None) -> "ScenarioSet":
        """The sub-batch of the scenarios at ``indices`` (in that order)."""
        indices = [int(i) for i in indices]
        if not indices:
            raise ConfigurationError("a scenario subset needs at least one index")
        return ScenarioSet(
            scenarios=tuple(self.scenarios[i] for i in indices),
            name=name if name is not None else f"{self.name}[{len(indices)}]")

    def costs(self, placement: str = "cost",
              weights: dict[str, float] | None = None) -> list[float]:
        """Per-scenario placement costs (``"cost"`` model or unit ``"count"``)."""
        if placement == "count":
            return [1.0] * len(self)
        if placement == "cost":
            return [scenario_cost(s.network, weights) for s in self.scenarios]
        raise ConfigurationError(
            f"unknown placement policy {placement!r}; choose 'cost' or 'count'")

    def split(self, n_parts: int, placement: str = "cost",
              weights: dict[str, float] | None = None,
              ) -> list[tuple[tuple[int, ...], "ScenarioSet"]]:
        """Shard the set into up to ``n_parts`` cost-balanced sub-batches.

        Returns ``(indices, subset)`` pairs — ``indices`` are the global
        scenario positions of the shard, ascending, so per-shard results can
        be re-merged stably into the original batch order.  Empty parts
        (when ``n_parts`` exceeds the scenario count) are dropped.

        ``placement="cost"`` balances by estimated element count (see
        :func:`scenario_cost`); ``"count"`` balances by scenario count.
        """
        parts = partition_costs(self.costs(placement, weights), n_parts)
        return [(tuple(part), self.subset(part, name=f"{self.name}/shard{k}"))
                for k, part in enumerate(parts) if part]

    def describe(self) -> str:
        """One line per scenario (sizes and penalty overrides)."""
        lines = [f"{self.name}: {len(self)} scenarios"]
        for scenario in self.scenarios:
            net = scenario.network
            override = ""
            if scenario.rho_pq is not None or scenario.rho_va is not None:
                override = f"  rho=({scenario.rho_pq}, {scenario.rho_va})"
            lines.append(f"  {scenario.name}: {net.n_bus} buses, {net.n_branch} branches,"
                         f" {net.n_gen_active} gens{override}")
        return "\n".join(lines)

    # ------------------------------------------------------------------ #
    @classmethod
    def from_networks(cls, networks: Sequence[Network],
                      names: Sequence[str] | None = None,
                      name: str = "scenarios") -> "ScenarioSet":
        """Wrap plain networks (one scenario each) into a set."""
        if names is None:
            names = [net.name for net in networks]
        if len(names) != len(networks):
            raise ConfigurationError(
                f"{len(networks)} networks but {len(names)} scenario names")
        return cls(scenarios=tuple(Scenario(name=n, network=net)
                                   for n, net in zip(names, networks)), name=name)


def as_scenario_set(scenarios) -> ScenarioSet:
    """Coerce the batch-solver input into a :class:`ScenarioSet`.

    Accepts a :class:`ScenarioSet`, a sequence of :class:`Scenario`, a
    sequence of :class:`Network`, or a single :class:`Network`.
    """
    if isinstance(scenarios, ScenarioSet):
        return scenarios
    if isinstance(scenarios, Network):
        return ScenarioSet.from_networks([scenarios])
    items = list(scenarios)
    if not items:
        raise ConfigurationError("a scenario set needs at least one scenario")
    if all(isinstance(item, Scenario) for item in items):
        return ScenarioSet(scenarios=tuple(items))
    if all(isinstance(item, Network) for item in items):
        return ScenarioSet.from_networks(items)
    raise ConfigurationError(
        "scenarios must be a ScenarioSet, Scenario sequence, or Network sequence")
