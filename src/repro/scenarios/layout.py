"""Segment bookkeeping for scenario-stacked component arrays.

A batch of S scenarios is the disjoint union of S component sets: buses,
generators, and branches of every scenario are concatenated along their
component axes (scenario-major, so each scenario occupies one contiguous
block).  :class:`ScenarioLayout` records where each scenario's block lives —
offsets, per-element segment ids, per-scenario consensus penalties — and is
what the per-scenario reductions (residual norms, ``β``/``λ`` updates,
convergence masks) are computed against.

The layout is deliberately ignorant of the ADMM coupling-group names: it
knows the three component axes (``"gen"``, ``"branch"``, ``"bus"``) and the
solver maps its groups onto them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.grid.network import Network

#: Component axes a layout keeps segment information for.
AXES = ("gen", "branch", "bus")

#: Per-axis weights of the cost model behind cost-aware scenario placement.
#: A scenario's estimated element count mirrors the coupling arithmetic of
#: the batch solver (2 coupling constraints per generator, 8 per branch) plus
#: one bus-update element per bus; branch weight dominates because the
#: batched TRON branch solve dominates kernel time.
DEFAULT_COST_WEIGHTS = {"gen": 2.0, "branch": 8.0, "bus": 1.0}


def partition_costs(costs: Sequence[float], n_parts: int) -> list[list[int]]:
    """Split item ids ``0..len(costs)-1`` into ``n_parts`` balanced parts.

    Greedy LPT (longest processing time first): items are visited in order of
    decreasing cost (stable, so equal-cost items keep their input order) and
    each goes to the currently lightest part.  Every part's ids are returned
    sorted ascending, so re-merging per-part results in id order is stable.
    Parts may be empty when ``n_parts`` exceeds the item count.
    """
    values = np.asarray(list(costs), dtype=float)
    n_parts = max(1, int(n_parts))
    parts: list[list[int]] = [[] for _ in range(n_parts)]
    loads = np.zeros(n_parts)
    for item in np.argsort(-values, kind="stable"):
        lightest = int(np.argmin(loads))
        parts[lightest].append(int(item))
        loads[lightest] += values[item]
    return [sorted(part) for part in parts]


@dataclass(frozen=True)
class ScenarioLayout:
    """Where each scenario lives inside scenario-stacked component arrays.

    ``*_offsets`` are length ``S + 1`` cumulative arrays (scenario ``s``
    occupies ``[offsets[s], offsets[s + 1])``); ``*_segments`` map each
    stacked element to its owning scenario.  ``rho_pq`` / ``rho_va`` hold the
    per-scenario consensus penalties so per-scenario reductions can use exact
    scalar values instead of per-element arrays.
    """

    names: tuple[str, ...]
    gen_offsets: np.ndarray
    branch_offsets: np.ndarray
    bus_offsets: np.ndarray
    rho_pq: np.ndarray
    rho_va: np.ndarray
    networks: tuple = ()
    gen_segments: np.ndarray = field(default=None, repr=False)
    branch_segments: np.ndarray = field(default=None, repr=False)
    bus_segments: np.ndarray = field(default=None, repr=False)

    def __post_init__(self) -> None:
        for axis in AXES:
            if getattr(self, f"{axis}_segments") is None:
                object.__setattr__(self, f"{axis}_segments",
                                   segments_from_offsets(getattr(self, f"{axis}_offsets")))

    # ------------------------------------------------------------------ #
    @property
    def n_scenarios(self) -> int:
        return len(self.names)

    def offsets(self, axis: str) -> np.ndarray:
        """Cumulative offsets of one component axis (length ``S + 1``)."""
        _check_axis(axis)
        return getattr(self, f"{axis}_offsets")

    def segments(self, axis: str) -> np.ndarray:
        """Owning-scenario id of every stacked element of one axis."""
        _check_axis(axis)
        return getattr(self, f"{axis}_segments")

    def block(self, axis: str, scenario: int) -> slice:
        """Contiguous slice of one scenario's block on one axis."""
        offsets = self.offsets(axis)
        return slice(int(offsets[scenario]), int(offsets[scenario + 1]))

    def counts(self, axis: str) -> np.ndarray:
        """Per-scenario element counts of one axis."""
        return np.diff(self.offsets(axis))

    def network(self, scenario: int):
        """The scenario's :class:`Network` (when the layout carries them)."""
        if not self.networks:
            raise ValueError("this layout does not carry per-scenario networks")
        return self.networks[scenario]

    # ------------------------------------------------------------------ #
    # Stream compaction                                                    #
    # ------------------------------------------------------------------ #
    def element_indices(self, axis: str, keep: Sequence[int]) -> np.ndarray:
        """Stacked element indices of the kept scenarios' blocks, in order.

        This is the gather map of a scenario compaction: indexing a stacked
        component array with it packs the surviving scenarios' contiguous
        blocks next to each other (scenario-major order is preserved).
        """
        offsets = self.offsets(axis)
        blocks = [np.arange(int(offsets[s]), int(offsets[s + 1])) for s in keep]
        if not blocks:
            return np.zeros(0, dtype=int)
        return np.concatenate(blocks)

    def select(self, keep: Sequence[int]) -> "ScenarioLayout":
        """Layout of the scenario subset ``keep``, re-based to offset zero.

        Used when converged scenarios are compacted away: the surviving
        segments keep their internal structure (so every per-scenario block
        of the packed arrays is bitwise identical to its resident block) but
        the offsets collapse onto the packed axes.
        """
        keep = list(keep)

        def sub_offsets(offsets: np.ndarray) -> np.ndarray:
            counts = np.diff(np.asarray(offsets, dtype=int))[keep]
            return np.concatenate([[0], np.cumsum(counts)])

        return ScenarioLayout(
            names=tuple(self.names[s] for s in keep),
            gen_offsets=sub_offsets(self.gen_offsets),
            branch_offsets=sub_offsets(self.branch_offsets),
            bus_offsets=sub_offsets(self.bus_offsets),
            rho_pq=self.rho_pq[keep],
            rho_va=self.rho_va[keep],
            networks=(tuple(self.networks[s] for s in keep)
                      if self.networks else ()),
        )

    # ------------------------------------------------------------------ #
    # Multi-device sharding                                                #
    # ------------------------------------------------------------------ #
    def scenario_costs(self, weights: dict[str, float] | None = None) -> np.ndarray:
        """Estimated element count of every scenario (placement cost model).

        The default weights mirror the batch solver's coupling arithmetic
        (:data:`DEFAULT_COST_WEIGHTS`); pass ``weights`` keyed by axis name
        to override, or an empty-ish dict entry to drop an axis.
        """
        weights = DEFAULT_COST_WEIGHTS if weights is None else weights
        costs = np.zeros(self.n_scenarios)
        for axis in AXES:
            weight = float(weights.get(axis, 0.0))
            if weight:
                costs += weight * self.counts(axis)
        return costs

    def partition(self, n_parts: int,
                  weights: dict[str, float] | None = None) -> list[list[int]]:
        """Cost-balanced scenario partition for multi-device sharding.

        Returns ``n_parts`` lists of scenario ids (some possibly empty when
        there are fewer scenarios than parts), balanced by estimated element
        count — not scenario count — so a shard of one huge network weighs as
        much as a shard of many small ones.  Each part's ids are ascending,
        which keeps per-part results stably re-mergeable into batch order.
        """
        return partition_costs(self.scenario_costs(weights), n_parts)

    # ------------------------------------------------------------------ #
    @classmethod
    def single(cls, name: str, n_gen: int, n_branch: int, n_bus: int,
               rho_pq: float, rho_va: float, network=None) -> "ScenarioLayout":
        """Trivial one-scenario layout (the classic single-network solve)."""
        return cls(
            names=(name,),
            gen_offsets=np.array([0, n_gen]),
            branch_offsets=np.array([0, n_branch]),
            bus_offsets=np.array([0, n_bus]),
            rho_pq=np.array([float(rho_pq)]),
            rho_va=np.array([float(rho_va)]),
            networks=(network,) if network is not None else (),
        )

    @classmethod
    def stack(cls, networks: Sequence["Network"], names: Sequence[str],
              rho_pq: Sequence[float], rho_va: Sequence[float],
              n_gen: Sequence[int]) -> "ScenarioLayout":
        """Layout of the disjoint union of ``networks`` (scenario-major).

        ``n_gen`` is the number of *active* generators per scenario (the
        solver drops out-of-service generators from its component axis, so
        the network's own generator count is not the stacked one).
        """
        def cumulative(counts: Sequence[int]) -> np.ndarray:
            return np.concatenate([[0], np.cumsum(np.asarray(counts, dtype=int))])

        return cls(
            names=tuple(names),
            gen_offsets=cumulative(n_gen),
            branch_offsets=cumulative([net.n_branch for net in networks]),
            bus_offsets=cumulative([net.n_bus for net in networks]),
            rho_pq=np.asarray(rho_pq, dtype=float),
            rho_va=np.asarray(rho_va, dtype=float),
            networks=tuple(networks),
        )


def segments_from_offsets(offsets: np.ndarray) -> np.ndarray:
    """Expand cumulative offsets into a per-element segment-id array."""
    counts = np.diff(np.asarray(offsets, dtype=int))
    return np.repeat(np.arange(counts.shape[0]), counts)


def _check_axis(axis: str) -> None:
    if axis not in AXES:
        raise ValueError(f"unknown component axis {axis!r}; choose from {AXES}")
