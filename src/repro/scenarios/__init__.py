"""Scenario subsystem: batches of independent ACOPF instances.

The paper saturates a GPU by giving every branch of one network its own
thread block.  Small cases leave most of the device idle; this subsystem
fills the batch axis with *independent scenarios* instead — load scalings,
N-1 contingencies, penalty sweeps, or entirely different networks — so one
ADMM kernel stream solves all of them simultaneously (see
:func:`repro.admm.batch_solver.solve_acopf_admm_batch`).
"""

from repro.scenarios.generators import (
    contingency_scenarios,
    load_scaling_scenarios,
    monte_carlo_load_scenarios,
    penalty_sweep_scenarios,
    period_scenario_sets,
    tracking_fleet,
)
from repro.scenarios.layout import (
    DEFAULT_COST_WEIGHTS,
    ScenarioLayout,
    partition_costs,
    segments_from_offsets,
)
from repro.scenarios.scenario import Scenario, ScenarioSet, as_scenario_set, scenario_cost

__all__ = [
    "DEFAULT_COST_WEIGHTS",
    "Scenario",
    "ScenarioSet",
    "ScenarioLayout",
    "as_scenario_set",
    "partition_costs",
    "scenario_cost",
    "segments_from_offsets",
    "contingency_scenarios",
    "load_scaling_scenarios",
    "monte_carlo_load_scenarios",
    "penalty_sweep_scenarios",
    "period_scenario_sets",
    "tracking_fleet",
]
