"""Cross-check ACOPF solver built on :func:`scipy.optimize.minimize`.

Only intended for small cases in tests: it validates the NLP callbacks
(objective, constraints, Jacobians) independently of the interior-point
implementation by handing them to SciPy's ``trust-constr`` method.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import optimize, sparse

from repro.baseline.acopf_nlp import AcopfNlp
from repro.grid.network import Network


@dataclass
class ScipySolution:
    """Result of the SciPy cross-check solve."""

    x: np.ndarray
    objective: float
    converged: bool
    iterations: int
    vm: np.ndarray
    va: np.ndarray
    pg: np.ndarray
    qg: np.ndarray


def solve_acopf_scipy(network: Network, max_iter: int = 300,
                      enforce_line_limits: bool = True,
                      x0: np.ndarray | None = None) -> ScipySolution:
    """Solve the ACOPF with ``scipy.optimize.minimize(method="trust-constr")``."""
    nlp = AcopfNlp(network, enforce_line_limits=enforce_line_limits)
    lb, ub = nlp.bounds()
    x_start = nlp.initial_point() if x0 is None else np.asarray(x0, dtype=float)

    constraints = [optimize.NonlinearConstraint(
        nlp.equality_constraints, 0.0, 0.0,
        jac=lambda x: nlp.equality_jacobian(x).toarray())]
    if enforce_line_limits and nlp.limited.size:
        constraints.append(optimize.NonlinearConstraint(
            nlp.inequality_constraints, -np.inf, 0.0,
            jac=lambda x: nlp.inequality_jacobian(x).toarray()))

    result = optimize.minimize(
        nlp.objective, x_start, jac=nlp.gradient, method="trust-constr",
        bounds=optimize.Bounds(lb, ub), constraints=constraints,
        options={"maxiter": max_iter, "gtol": 1e-8, "xtol": 1e-10})

    parts = nlp.unpack(result.x)
    return ScipySolution(x=result.x, objective=float(result.fun),
                         converged=bool(result.success) or result.status in (1, 2),
                         iterations=int(result.niter),
                         vm=parts["vm"], va=parts["va"], pg=parts["pg"], qg=parts["qg"])
