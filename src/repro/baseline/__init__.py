"""Centralized ACOPF baseline (the paper's Ipopt reference, rebuilt).

The paper compares its GPU ADMM against Ipopt solving the full ACOPF NLP
through PowerModels.jl.  This subpackage provides the equivalent baseline:

* :mod:`repro.baseline.nlp` — a small NLP interface (objective, constraints,
  sparse first and second derivatives);
* :mod:`repro.baseline.acopf_nlp` — the polar-coordinate ACOPF NLP with exact
  sparse Jacobians and Hessians, assembled from the shared per-branch flow
  derivatives;
* :mod:`repro.baseline.interior_point` — a primal-dual interior-point solver
  (the same algorithm family as Ipopt / MATPOWER's MIPS) with sparse KKT
  solves;
* :mod:`repro.baseline.scipy_solver` — a `scipy.optimize` cross-check wrapper
  used in tests.
"""

from repro.baseline.acopf_nlp import AcopfNlp
from repro.baseline.interior_point import InteriorPointOptions, IpmResult, solve_nlp
from repro.baseline.solver import BaselineSolution, solve_acopf_ipm

__all__ = [
    "AcopfNlp",
    "InteriorPointOptions",
    "IpmResult",
    "solve_nlp",
    "BaselineSolution",
    "solve_acopf_ipm",
]
