"""Primal-dual interior-point NLP solver (the centralized baseline).

The algorithm is the classic primal-dual log-barrier method used by Ipopt and
by MATPOWER's MIPS solver: general inequalities and variable bounds are
relaxed with slacks and a log barrier, the barrier KKT system is solved with
Newton steps computed from a reduced sparse saddle-point system, step lengths
keep slacks and their multipliers strictly positive, and the barrier
parameter is driven to zero from the complementarity gap.

Like Ipopt on the paper's experiments, the dominant cost per iteration is the
sparse factorisation of the KKT system — which is exactly why the paper moves
to a decomposition method on GPUs instead.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import splu

from repro.baseline.nlp import NonlinearProgram
from repro.exceptions import ConvergenceError
from repro.logging_utils import get_logger

LOGGER = get_logger("baseline")


@dataclass
class InteriorPointOptions:
    """Options of :func:`solve_nlp`.

    ``feastol`` / ``gradtol`` / ``comptol`` / ``costtol`` mirror MIPS'
    feasibility, gradient, complementarity, and cost-change criteria.
    """

    max_iter: int = 150
    feastol: float = 1e-6
    gradtol: float = 1e-6
    comptol: float = 1e-6
    costtol: float = 1e-8
    sigma: float = 0.1
    step_fraction: float = 0.99995
    slack_min: float = 1e-12
    regularisation: float = 1e-11
    max_regularisation: float = 1e-2
    verbose: bool = False


@dataclass
class IpmResult:
    """Result of an interior-point solve."""

    x: np.ndarray
    objective: float
    converged: bool
    iterations: int
    feasibility: float
    gradient_norm: float
    complementarity: float
    lam_eq: np.ndarray
    mu_ineq: np.ndarray
    solve_seconds: float
    history: list[dict[str, float]] = field(default_factory=list)


def _bounds_as_inequalities(nlp: NonlinearProgram) -> tuple[sparse.csr_matrix, np.ndarray]:
    """Represent finite variable bounds as rows of ``A x ≤ b``."""
    lb, ub = nlp.bounds()
    n = nlp.n
    rows = []
    rhs = []
    eye = sparse.identity(n, format="csr")
    upper = np.flatnonzero(np.isfinite(ub))
    lower = np.flatnonzero(np.isfinite(lb))
    if upper.size:
        rows.append(eye[upper])
        rhs.append(ub[upper])
    if lower.size:
        rows.append(-eye[lower])
        rhs.append(-lb[lower])
    if rows:
        return sparse.vstack(rows).tocsr(), np.concatenate(rhs)
    return sparse.csr_matrix((0, n)), np.zeros(0)


def solve_nlp(nlp: NonlinearProgram, options: InteriorPointOptions | None = None,
              x0: np.ndarray | None = None,
              raise_on_failure: bool = False) -> IpmResult:
    """Solve an NLP with the primal-dual interior-point method."""
    opts = options or InteriorPointOptions()
    start = time.perf_counter()

    n = nlp.n
    x = np.asarray(x0 if x0 is not None else nlp.initial_point(), dtype=float).copy()
    lb, ub = nlp.bounds()
    # Keep the starting point strictly inside its bounds.
    span = np.where(np.isfinite(ub) & np.isfinite(lb), ub - lb, 1.0)
    margin = 1e-4 * np.maximum(span, 1e-2)
    x = np.clip(x, np.where(np.isfinite(lb), lb + margin, -np.inf),
                np.where(np.isfinite(ub), ub - margin, np.inf))

    bound_jac, bound_rhs = _bounds_as_inequalities(nlp)
    n_bound = bound_rhs.size

    def eval_ineq(xv: np.ndarray) -> tuple[np.ndarray, sparse.csr_matrix]:
        h_user = nlp.inequality_constraints(xv)
        jac_user = nlp.inequality_jacobian(xv)
        h_bound = (bound_jac @ xv - bound_rhs) if n_bound else np.zeros(0)
        h = np.concatenate([h_user, h_bound])
        jac = sparse.vstack([jac_user, bound_jac]).tocsr() if n_bound else jac_user.tocsr()
        return h, jac

    g = nlp.equality_constraints(x)
    jac_g = nlp.equality_jacobian(x)
    h, jac_h = eval_ineq(x)
    n_eq, n_ineq = g.size, h.size

    # Slack and multiplier initialisation (MIPS-style).
    z = np.maximum(-h, 1.0)
    mu = np.full(n_ineq, 1.0)
    lam = np.zeros(n_eq)
    gamma = opts.sigma * float(z @ mu) / max(n_ineq, 1) if n_ineq else 0.0

    f = nlp.objective(x)
    grad_f = nlp.gradient(x)
    f_prev = f
    history: list[dict[str, float]] = []
    converged = False
    iterations = 0

    def norms(grad_l: np.ndarray) -> tuple[float, float, float]:
        feas = 0.0
        if n_eq:
            feas = max(feas, float(np.max(np.abs(g))))
        if n_ineq:
            feas = max(feas, float(np.max(np.maximum(h, 0.0))))
        gradn = float(np.max(np.abs(grad_l))) / (1.0 + float(np.max(np.abs(x))))
        comp = float(z @ mu) / (1.0 + abs(float(x @ grad_f))) if n_ineq else 0.0
        return feas, gradn, comp

    grad_l = grad_f + (jac_g.T @ lam if n_eq else 0.0) + (jac_h.T @ mu if n_ineq else 0.0)
    feas, gradn, comp = norms(grad_l)

    for iterations in range(1, opts.max_iter + 1):
        # --- assemble the reduced Newton system ---------------------------
        hess = nlp.lagrangian_hessian(x, lam, mu[:n_ineq - n_bound] if n_bound else mu)
        z_safe = np.maximum(z, opts.slack_min)
        zinv_mu = mu / z_safe
        if n_ineq:
            m_matrix = hess + jac_h.T @ sparse.diags(zinv_mu) @ jac_h
            n_vector = grad_l + jac_h.T @ ((gamma + mu * (h + z)) / z_safe - mu)
        else:
            m_matrix = hess.copy()
            n_vector = grad_l.copy()

        reg = opts.regularisation
        while True:
            if n_eq:
                kkt = sparse.bmat([
                    [m_matrix + reg * sparse.identity(n), jac_g.T],
                    [jac_g, -reg * sparse.identity(n_eq)]], format="csc")
                rhs = np.concatenate([-n_vector, -g])
            else:
                kkt = (m_matrix + reg * sparse.identity(n)).tocsc()
                rhs = -n_vector
            try:
                lu = splu(kkt)
                step = lu.solve(rhs)
            except RuntimeError:
                step = np.full(rhs.shape, np.nan)
            if np.all(np.isfinite(step)):
                break
            reg = reg * 100 if reg > 0 else 1e-8
            if reg > opts.max_regularisation:
                if raise_on_failure:
                    raise ConvergenceError("KKT system could not be factorised",
                                           iterations=iterations, residual=feas)
                elapsed = time.perf_counter() - start
                return IpmResult(x=x, objective=f, converged=False, iterations=iterations,
                                 feasibility=feas, gradient_norm=gradn, complementarity=comp,
                                 lam_eq=lam, mu_ineq=mu[:n_ineq - n_bound] if n_bound else mu,
                                 solve_seconds=elapsed, history=history)

        dx = step[:n]
        dlam = step[n:] if n_eq else np.zeros(0)

        if n_ineq:
            dz = -h - z - jac_h @ dx
            dmu = -mu + (gamma - mu * dz) / z_safe
        else:
            dz = np.zeros(0)
            dmu = np.zeros(0)

        # --- step lengths (fraction to the boundary) ------------------------
        alpha_p = 1.0
        alpha_d = 1.0
        if n_ineq:
            neg_dz = dz < 0
            if neg_dz.any():
                alpha_p = min(1.0, opts.step_fraction * float(np.min(-z[neg_dz] / dz[neg_dz])))
            neg_dmu = dmu < 0
            if neg_dmu.any():
                alpha_d = min(1.0, opts.step_fraction * float(np.min(-mu[neg_dmu] / dmu[neg_dmu])))

        x = x + alpha_p * dx
        z = z + alpha_p * dz
        lam = lam + alpha_d * dlam
        mu = mu + alpha_d * dmu

        # --- re-evaluate ----------------------------------------------------
        f_prev = f
        f = nlp.objective(x)
        grad_f = nlp.gradient(x)
        g = nlp.equality_constraints(x)
        jac_g = nlp.equality_jacobian(x)
        h, jac_h = eval_ineq(x)
        grad_l = grad_f + (jac_g.T @ lam if n_eq else 0.0) + (jac_h.T @ mu if n_ineq else 0.0)
        feas, gradn, comp = norms(grad_l)
        cost_change = abs(f - f_prev) / (1.0 + abs(f_prev))

        gamma = opts.sigma * float(z @ mu) / max(n_ineq, 1) if n_ineq else 0.0
        history.append({"iteration": iterations, "objective": f, "feasibility": feas,
                        "gradient": gradn, "complementarity": comp, "gamma": gamma,
                        "alpha_primal": alpha_p, "alpha_dual": alpha_d})
        if opts.verbose:
            LOGGER.info("ipm %3d: f=%.6e feas=%.2e grad=%.2e comp=%.2e alpha=(%.2f, %.2f)",
                        iterations, f, feas, gradn, comp, alpha_p, alpha_d)

        if feas <= opts.feastol and gradn <= opts.gradtol and comp <= opts.comptol:
            converged = True
            break
        if (feas <= opts.feastol and comp <= opts.comptol
                and cost_change <= opts.costtol and iterations > 5):
            converged = True
            break

    if not converged and raise_on_failure:
        raise ConvergenceError("interior-point method did not converge",
                               iterations=iterations, residual=feas)
    elapsed = time.perf_counter() - start
    mu_user = mu[:n_ineq - n_bound] if n_bound else mu
    return IpmResult(x=x, objective=f, converged=converged, iterations=iterations,
                     feasibility=feas, gradient_norm=gradn, complementarity=comp,
                     lam_eq=lam, mu_ineq=mu_user, solve_seconds=elapsed, history=history)
