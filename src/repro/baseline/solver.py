"""High-level centralized ACOPF solve (the paper's "Ipopt" column).

``solve_acopf_ipm`` builds the polar ACOPF NLP, runs the interior-point
solver, and returns the solution in the same shape as the ADMM solver so the
benchmark harness can compare them directly.  Warm starting mirrors the
paper's Ipopt experiment: the previous period's primal point is passed as the
initial iterate (and, as the paper observes, an interior-point method gains
little from it).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.metrics import SolutionMetrics, constraint_violation
from repro.baseline.acopf_nlp import AcopfNlp
from repro.baseline.interior_point import InteriorPointOptions, IpmResult, solve_nlp
from repro.grid.network import Network


@dataclass
class BaselineSolution:
    """Centralized ACOPF solution."""

    network_name: str
    vm: np.ndarray
    va: np.ndarray
    pg: np.ndarray
    qg: np.ndarray
    objective: float
    metrics: SolutionMetrics
    converged: bool
    iterations: int
    solve_seconds: float
    ipm: IpmResult

    @property
    def max_constraint_violation(self) -> float:
        return self.metrics.max_violation

    def as_warm_start(self) -> np.ndarray:
        """NLP-space point usable as ``x0`` of a subsequent solve."""
        return self.ipm.x.copy()


def solve_acopf_ipm(network: Network, options: InteriorPointOptions | None = None,
                    x0: np.ndarray | None = None,
                    enforce_line_limits: bool = True) -> BaselineSolution:
    """Solve the full ACOPF with the interior-point baseline."""
    nlp = AcopfNlp(network, enforce_line_limits=enforce_line_limits)
    result = solve_nlp(nlp, options=options, x0=x0)
    parts = nlp.unpack(result.x)
    # The 99 % line-capacity tightening only applies to the ADMM solutions
    # (paper Section IV-A); the centralized baseline is checked at 100 %.
    metrics = constraint_violation(network, parts["vm"], parts["va"],
                                   parts["pg"], parts["qg"], capacity_fraction=1.0)
    return BaselineSolution(
        network_name=network.name,
        vm=parts["vm"], va=parts["va"], pg=parts["pg"], qg=parts["qg"],
        objective=metrics.objective, metrics=metrics,
        converged=result.converged, iterations=result.iterations,
        solve_seconds=result.solve_seconds, ipm=result)
