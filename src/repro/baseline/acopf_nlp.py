"""Polar-coordinate ACOPF NLP with exact sparse derivatives.

This is the problem the paper hands to Ipopt through PowerModels.jl: the full
formulation (1) with voltage variables in polar form, generator injections as
variables, bus power-balance equalities, and squared apparent-power line
limits.  All constraint Jacobians and Lagrangian Hessians are assembled from
the shared per-branch flow derivatives of
:mod:`repro.powerflow.branch_derivatives`, scattered into sparse matrices.

Variable layout (all per unit):

========  =======================  =========================
block     indices                  meaning
========  =======================  =========================
``va``    ``0 … nb−1``             bus voltage angles (rad)
``vm``    ``nb … 2nb−1``           bus voltage magnitudes
``pg``    ``2nb … 2nb+ng−1``       active-generator real output
``qg``    ``2nb+ng … 2nb+2ng−1``   active-generator reactive output
========  =======================  =========================
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.baseline.nlp import NonlinearProgram
from repro.grid.network import Network
from repro.powerflow.branch_derivatives import branch_quantities, quantity_value_grad_hess

#: order of the per-branch local state used by the flow derivatives
_LOCAL = ("vi", "vj", "ti", "tj")


@dataclass
class _Layout:
    """Index bookkeeping of the NLP variable vector."""

    n_bus: int
    n_gen: int

    @property
    def n(self) -> int:
        return 2 * self.n_bus + 2 * self.n_gen

    def va(self, bus: np.ndarray) -> np.ndarray:
        return np.asarray(bus)

    def vm(self, bus: np.ndarray) -> np.ndarray:
        return self.n_bus + np.asarray(bus)

    def pg(self, gen: np.ndarray) -> np.ndarray:
        return 2 * self.n_bus + np.asarray(gen)

    def qg(self, gen: np.ndarray) -> np.ndarray:
        return 2 * self.n_bus + self.n_gen + np.asarray(gen)


class AcopfNlp(NonlinearProgram):
    """The centralized ACOPF NLP for one network."""

    def __init__(self, network: Network, objective_scale: float = 1.0,
                 enforce_line_limits: bool = True) -> None:
        self.network = network
        self.objective_scale = objective_scale
        self.enforce_line_limits = enforce_line_limits

        self.active_gens = np.flatnonzero(network.gen_status)
        self.layout = _Layout(n_bus=network.n_bus, n_gen=self.active_gens.size)
        self.n = self.layout.n

        self.gen_bus = network.gen_bus[self.active_gens]
        self.c2 = network.gen_cost_c2[self.active_gens] * objective_scale
        self.c1 = network.gen_cost_c1[self.active_gens] * objective_scale
        self.c0 = network.gen_cost_c0[self.active_gens] * objective_scale

        self.quantities = branch_quantities(network)
        self.branch_from = network.branch_from
        self.branch_to = network.branch_to
        self.limited = np.flatnonzero(network.branch_has_limit) if enforce_line_limits \
            else np.zeros(0, dtype=int)
        self.rate_sq = network.branch_rate_a[self.limited] ** 2

        # Per-branch local variable indices in the global vector, order
        # (vi, vj, ti, tj) to match the flow derivatives.
        lay = self.layout
        self.branch_cols = np.column_stack([
            lay.vm(self.branch_from), lay.vm(self.branch_to),
            lay.va(self.branch_from), lay.va(self.branch_to)])

    # ------------------------------------------------------------------ #
    # Points and bounds                                                    #
    # ------------------------------------------------------------------ #
    def initial_point(self) -> np.ndarray:
        """The paper's cold start: midpoint dispatch / magnitude, zero angles."""
        net = self.network
        x = np.zeros(self.n)
        lay = self.layout
        x[lay.vm(np.arange(net.n_bus))] = 0.5 * (net.bus_vmin + net.bus_vmax)
        x[lay.pg(np.arange(self.active_gens.size))] = 0.5 * (
            net.gen_pmin[self.active_gens] + net.gen_pmax[self.active_gens])
        x[lay.qg(np.arange(self.active_gens.size))] = 0.5 * (
            net.gen_qmin[self.active_gens] + net.gen_qmax[self.active_gens])
        return x

    def bounds(self) -> tuple[np.ndarray, np.ndarray]:
        net = self.network
        lay = self.layout
        lb = np.full(self.n, -np.inf)
        ub = np.full(self.n, np.inf)
        buses = np.arange(net.n_bus)
        gens = np.arange(self.active_gens.size)
        lb[lay.va(buses)] = -2.0 * np.pi
        ub[lay.va(buses)] = 2.0 * np.pi
        lb[lay.vm(buses)] = net.bus_vmin
        ub[lay.vm(buses)] = net.bus_vmax
        lb[lay.pg(gens)] = net.gen_pmin[self.active_gens]
        ub[lay.pg(gens)] = net.gen_pmax[self.active_gens]
        lb[lay.qg(gens)] = net.gen_qmin[self.active_gens]
        ub[lay.qg(gens)] = net.gen_qmax[self.active_gens]
        # Reference angle pinned to zero.
        ref = net.ref_bus
        lb[lay.va(ref)] = 0.0
        ub[lay.va(ref)] = 0.0
        return lb, ub

    # ------------------------------------------------------------------ #
    # Objective                                                            #
    # ------------------------------------------------------------------ #
    def objective(self, x: np.ndarray) -> float:
        pg = x[self.layout.pg(np.arange(self.active_gens.size))]
        return float(np.sum(self.c2 * pg * pg + self.c1 * pg + self.c0))

    def gradient(self, x: np.ndarray) -> np.ndarray:
        grad = np.zeros(self.n)
        gens = np.arange(self.active_gens.size)
        pg = x[self.layout.pg(gens)]
        grad[self.layout.pg(gens)] = 2.0 * self.c2 * pg + self.c1
        return grad

    # ------------------------------------------------------------------ #
    # Shared branch evaluations                                            #
    # ------------------------------------------------------------------ #
    def _branch_eval(self, x: np.ndarray):
        lay = self.layout
        vm = x[lay.vm(np.arange(self.network.n_bus))]
        va = x[lay.va(np.arange(self.network.n_bus))]
        vi = vm[self.branch_from]
        vj = vm[self.branch_to]
        ti = va[self.branch_from]
        tj = va[self.branch_to]
        out = {}
        for name, coeff in zip(("pij", "qij", "pji", "qji"), self.quantities.as_tuple()):
            out[name] = quantity_value_grad_hess(coeff, vi, vj, ti, tj)
        return out, vm, va

    # ------------------------------------------------------------------ #
    # Equality constraints: power balance                                  #
    # ------------------------------------------------------------------ #
    def equality_constraints(self, x: np.ndarray) -> np.ndarray:
        net = self.network
        flows, vm, _ = self._branch_eval(x)
        gens = np.arange(self.active_gens.size)
        pg = x[self.layout.pg(gens)]
        qg = x[self.layout.qg(gens)]

        p_bal = -net.bus_pd - net.bus_gs * vm * vm
        q_bal = -net.bus_qd + net.bus_bs * vm * vm
        np.add.at(p_bal, self.gen_bus, pg)
        np.add.at(q_bal, self.gen_bus, qg)
        np.subtract.at(p_bal, self.branch_from, flows["pij"][0])
        np.subtract.at(q_bal, self.branch_from, flows["qij"][0])
        np.subtract.at(p_bal, self.branch_to, flows["pji"][0])
        np.subtract.at(q_bal, self.branch_to, flows["qji"][0])
        return np.concatenate([p_bal, q_bal])

    def equality_jacobian(self, x: np.ndarray) -> sparse.csr_matrix:
        net = self.network
        nb = net.n_bus
        lay = self.layout
        flows, vm, _ = self._branch_eval(x)

        rows: list[np.ndarray] = []
        cols: list[np.ndarray] = []
        vals: list[np.ndarray] = []

        # Generator columns.
        gens = np.arange(self.active_gens.size)
        rows.append(self.gen_bus)
        cols.append(lay.pg(gens))
        vals.append(np.ones(gens.size))
        rows.append(nb + self.gen_bus)
        cols.append(lay.qg(gens))
        vals.append(np.ones(gens.size))

        # Shunt terms on vm.
        buses = np.arange(nb)
        rows.append(buses)
        cols.append(lay.vm(buses))
        vals.append(-2.0 * net.bus_gs * vm)
        rows.append(nb + buses)
        cols.append(lay.vm(buses))
        vals.append(2.0 * net.bus_bs * vm)

        # Branch flow terms: row owner is the from-bus for (pij, qij) and the
        # to-bus for (pji, qji); contribution is −∂flow/∂(local state).
        for name, row_bus, row_offset in (("pij", self.branch_from, 0),
                                          ("qij", self.branch_from, nb),
                                          ("pji", self.branch_to, 0),
                                          ("qji", self.branch_to, nb)):
            grad = flows[name][1]  # (nl, 4)
            rows.append(np.repeat(row_offset + row_bus, 4))
            cols.append(self.branch_cols.ravel())
            vals.append(-grad.ravel())

        jac = sparse.coo_matrix(
            (np.concatenate(vals), (np.concatenate(rows), np.concatenate(cols))),
            shape=(2 * nb, self.n))
        return jac.tocsr()

    # ------------------------------------------------------------------ #
    # Inequality constraints: squared apparent-power line limits           #
    # ------------------------------------------------------------------ #
    def inequality_constraints(self, x: np.ndarray) -> np.ndarray:
        if self.limited.size == 0:
            return np.zeros(0)
        flows, _, _ = self._branch_eval(x)
        sel = self.limited
        from_side = flows["pij"][0][sel] ** 2 + flows["qij"][0][sel] ** 2 - self.rate_sq
        to_side = flows["pji"][0][sel] ** 2 + flows["qji"][0][sel] ** 2 - self.rate_sq
        return np.concatenate([from_side, to_side])

    def inequality_jacobian(self, x: np.ndarray) -> sparse.csr_matrix:
        n_lim = self.limited.size
        if n_lim == 0:
            return sparse.csr_matrix((0, self.n))
        flows, _, _ = self._branch_eval(x)
        sel = self.limited
        cols = self.branch_cols[sel]

        rows_list, cols_list, vals_list = [], [], []
        for offset, (pname, qname) in enumerate((("pij", "qij"), ("pji", "qji"))):
            p_val, p_grad = flows[pname][0][sel], flows[pname][1][sel]
            q_val, q_grad = flows[qname][0][sel], flows[qname][1][sel]
            grad = 2.0 * p_val[:, None] * p_grad + 2.0 * q_val[:, None] * q_grad
            rows_list.append(np.repeat(offset * n_lim + np.arange(n_lim), 4))
            cols_list.append(cols.ravel())
            vals_list.append(grad.ravel())
        jac = sparse.coo_matrix(
            (np.concatenate(vals_list),
             (np.concatenate(rows_list), np.concatenate(cols_list))),
            shape=(2 * n_lim, self.n))
        return jac.tocsr()

    # ------------------------------------------------------------------ #
    # Hessian of the Lagrangian                                            #
    # ------------------------------------------------------------------ #
    def lagrangian_hessian(self, x: np.ndarray, lam_eq: np.ndarray,
                           mu_ineq: np.ndarray, obj_factor: float = 1.0
                           ) -> sparse.csr_matrix:
        net = self.network
        nb = net.n_bus
        lay = self.layout
        flows, vm, _ = self._branch_eval(x)

        rows_list, cols_list, vals_list = [], [], []

        # Objective block (diagonal in pg).
        gens = np.arange(self.active_gens.size)
        rows_list.append(lay.pg(gens))
        cols_list.append(lay.pg(gens))
        vals_list.append(obj_factor * 2.0 * self.c2)

        lam_p = lam_eq[:nb]
        lam_q = lam_eq[nb:2 * nb]

        # Shunt curvature of the power balances.
        buses = np.arange(nb)
        rows_list.append(lay.vm(buses))
        cols_list.append(lay.vm(buses))
        vals_list.append(lam_p * (-2.0 * net.bus_gs) + lam_q * (2.0 * net.bus_bs))

        # Branch curvature: the balance rows carry −flow, so the multiplier
        # enters with a minus sign.
        weight = {
            "pij": -lam_p[self.branch_from],
            "qij": -lam_q[self.branch_from],
            "pji": -lam_p[self.branch_to],
            "qji": -lam_q[self.branch_to],
        }
        if self.limited.size and mu_ineq.size:
            n_lim = self.limited.size
            mu_from = np.zeros(net.n_branch)
            mu_to = np.zeros(net.n_branch)
            mu_from[self.limited] = mu_ineq[:n_lim]
            mu_to[self.limited] = mu_ineq[n_lim:2 * n_lim]
        else:
            mu_from = mu_to = np.zeros(net.n_branch)

        block = np.zeros((net.n_branch, 4, 4))
        for name in ("pij", "qij", "pji", "qji"):
            _, _, hess = flows[name]
            block += weight[name][:, None, None] * hess
        # Line-limit curvature: h = p² + q² − rate² per side.
        for mu_side, pname, qname in ((mu_from, "pij", "qij"), (mu_to, "pji", "qji")):
            p_val, p_grad, p_hess = flows[pname]
            q_val, q_grad, q_hess = flows[qname]
            block += mu_side[:, None, None] * 2.0 * (
                np.einsum("bi,bj->bij", p_grad, p_grad) + p_val[:, None, None] * p_hess
                + np.einsum("bi,bj->bij", q_grad, q_grad) + q_val[:, None, None] * q_hess)

        cols4 = self.branch_cols
        rows_list.append(np.repeat(cols4, 4, axis=1).ravel())
        cols_list.append(np.tile(cols4, (1, 4)).ravel())
        vals_list.append(block.reshape(net.n_branch, 16).ravel())

        hess = sparse.coo_matrix(
            (np.concatenate(vals_list),
             (np.concatenate(rows_list), np.concatenate(cols_list))),
            shape=(self.n, self.n))
        return hess.tocsr()

    # ------------------------------------------------------------------ #
    # Solution unpacking                                                   #
    # ------------------------------------------------------------------ #
    def unpack(self, x: np.ndarray) -> dict[str, np.ndarray]:
        """Split an NLP point into named per-unit arrays (full generator axis)."""
        net = self.network
        lay = self.layout
        buses = np.arange(net.n_bus)
        gens = np.arange(self.active_gens.size)
        pg = np.zeros(net.n_gen)
        qg = np.zeros(net.n_gen)
        pg[self.active_gens] = x[lay.pg(gens)]
        qg[self.active_gens] = x[lay.qg(gens)]
        return {
            "va": x[lay.va(buses)],
            "vm": x[lay.vm(buses)],
            "pg": pg,
            "qg": qg,
        }
