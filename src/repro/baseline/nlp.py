"""Minimal nonlinear-programming interface used by the interior-point solver.

A problem is posed as

``min f(x)  s.t.  g(x) = 0,  h(x) ≤ 0,  xl ≤ x ≤ xu``

with sparse first derivatives of the constraints and a sparse Hessian of the
Lagrangian.  Variable bounds are kept separate from the general inequalities
so the solver can fold them in as simple identity rows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse


class NonlinearProgram:
    """Base class defining the interface (all methods must be overridden)."""

    #: number of decision variables
    n: int

    def initial_point(self) -> np.ndarray:
        raise NotImplementedError

    def bounds(self) -> tuple[np.ndarray, np.ndarray]:
        """Variable bounds (use ±inf for free variables)."""
        raise NotImplementedError

    def objective(self, x: np.ndarray) -> float:
        raise NotImplementedError

    def gradient(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def equality_constraints(self, x: np.ndarray) -> np.ndarray:
        return np.zeros(0)

    def equality_jacobian(self, x: np.ndarray) -> sparse.spmatrix:
        return sparse.csr_matrix((0, self.n))

    def inequality_constraints(self, x: np.ndarray) -> np.ndarray:
        """General inequalities ``h(x) ≤ 0`` (excluding variable bounds)."""
        return np.zeros(0)

    def inequality_jacobian(self, x: np.ndarray) -> sparse.spmatrix:
        return sparse.csr_matrix((0, self.n))

    def lagrangian_hessian(self, x: np.ndarray, lam_eq: np.ndarray,
                           mu_ineq: np.ndarray, obj_factor: float = 1.0
                           ) -> sparse.spmatrix:
        """Hessian of ``obj_factor·f + λᵀg + μᵀh`` (sparse, symmetric)."""
        raise NotImplementedError


@dataclass
class QuadraticProgram(NonlinearProgram):
    """Dense convex QP used to unit-test the interior-point solver.

    ``min ½ xᵀ Q x + cᵀ x  s.t.  A x = b,  G x ≤ d,  xl ≤ x ≤ xu``.
    """

    q: np.ndarray
    c: np.ndarray
    a_eq: np.ndarray
    b_eq: np.ndarray
    g_ineq: np.ndarray
    d_ineq: np.ndarray
    xl: np.ndarray
    xu: np.ndarray

    def __post_init__(self) -> None:
        self.n = self.c.shape[0]

    def initial_point(self) -> np.ndarray:
        lo = np.where(np.isfinite(self.xl), self.xl, -1.0)
        hi = np.where(np.isfinite(self.xu), self.xu, 1.0)
        return 0.5 * (lo + hi)

    def bounds(self) -> tuple[np.ndarray, np.ndarray]:
        return self.xl, self.xu

    def objective(self, x: np.ndarray) -> float:
        return float(0.5 * x @ self.q @ x + self.c @ x)

    def gradient(self, x: np.ndarray) -> np.ndarray:
        return self.q @ x + self.c

    def equality_constraints(self, x: np.ndarray) -> np.ndarray:
        return self.a_eq @ x - self.b_eq

    def equality_jacobian(self, x: np.ndarray) -> sparse.spmatrix:
        return sparse.csr_matrix(self.a_eq)

    def inequality_constraints(self, x: np.ndarray) -> np.ndarray:
        return self.g_ineq @ x - self.d_ineq

    def inequality_jacobian(self, x: np.ndarray) -> sparse.spmatrix:
        return sparse.csr_matrix(self.g_ineq)

    def lagrangian_hessian(self, x, lam_eq, mu_ineq, obj_factor: float = 1.0):
        return sparse.csr_matrix(obj_factor * self.q)
