"""Structural validation of networks beyond the constructor's basic checks.

These checks are deliberately separate from :class:`~repro.grid.network.Network`
construction: synthetic-case generation and file parsing want to build first
and diagnose afterwards, and some checks (connectivity, dispatchability) are
heuristics a user may legitimately want to skip.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.grid.network import Network


@dataclass
class ValidationReport:
    """Outcome of :func:`validate_network`."""

    errors: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        lines = [f"errors: {len(self.errors)}", *self.errors,
                 f"warnings: {len(self.warnings)}", *self.warnings]
        return "\n".join(lines)


def connected_components(network: Network) -> list[set[int]]:
    """Return the connected components of the network graph (bus indices)."""
    return connected_components_from_edges(network.n_bus, network.branch_from,
                                           network.branch_to)


def connected_components_from_edges(n: int, branch_from, branch_to) -> list[set[int]]:
    """Connected components of a bus graph given as parallel edge arrays.

    Shared by :func:`connected_components` and the contingency scenario
    generator (which probes connectivity with one branch removed without
    rebuilding a :class:`Network`).
    """
    adjacency: list[list[int]] = [[] for _ in range(n)]
    for f, t in zip(branch_from, branch_to):
        adjacency[f].append(int(t))
        adjacency[t].append(int(f))
    seen = np.zeros(n, dtype=bool)
    components: list[set[int]] = []
    for start in range(n):
        if seen[start]:
            continue
        stack = [start]
        seen[start] = True
        comp = {start}
        while stack:
            node = stack.pop()
            for nxt in adjacency[node]:
                if not seen[nxt]:
                    seen[nxt] = True
                    comp.add(nxt)
                    stack.append(nxt)
        components.append(comp)
    return components


def validate_network(network: Network) -> ValidationReport:
    """Run structural sanity checks and return a report.

    Checks performed:

    * the grid graph is connected (one electrical island);
    * total generation capacity covers total load with some margin;
    * voltage bounds are ordered and positive;
    * generator bounds are ordered;
    * the reference bus hosts at least one generator.
    """
    report = ValidationReport()

    components = connected_components(network)
    if len(components) > 1:
        sizes = sorted((len(c) for c in components), reverse=True)
        report.errors.append(
            f"network has {len(components)} electrical islands (sizes {sizes})")

    total_pd, _ = network.total_load()
    capacity = float(network.gen_pmax[network.gen_status].sum())
    if capacity < total_pd:
        report.errors.append(
            f"total generation capacity {capacity:.3f} pu below total load {total_pd:.3f} pu")
    elif capacity < 1.05 * total_pd:
        report.warnings.append(
            f"generation capacity margin below 5% (capacity {capacity:.3f} pu, "
            f"load {total_pd:.3f} pu)")

    if np.any(network.bus_vmin <= 0):
        report.errors.append("some buses have non-positive lower voltage bounds")
    if np.any(network.bus_vmin > network.bus_vmax):
        report.errors.append("some buses have vmin > vmax")

    if np.any(network.gen_pmin > network.gen_pmax):
        report.errors.append("some generators have pmin > pmax")
    if np.any(network.gen_qmin > network.gen_qmax):
        report.errors.append("some generators have qmin > qmax")

    if not network.gens_at_bus[network.ref_bus]:
        report.warnings.append("reference bus has no generator attached")

    limited = network.branch_rate_a[network.branch_has_limit]
    if limited.size and np.any(limited < 1e-4):
        report.warnings.append("some branch ratings are suspiciously small (< 1e-4 pu)")

    return report
