"""Embedded cases and the case registry.

``load_case(name)`` is the single entry point used throughout the package,
examples, tests, and benchmarks.  It resolves, in order:

1. embedded canonical cases (``case3``, ``case5``, ``case9``);
2. registered synthetic analogues of the paper's test systems
   (``pegase1354_like`` …) and their scaled-down benchmark variants
   (``pegase118_like`` …), generated deterministically from a fixed seed;
3. a path to a MATPOWER ``.m`` file on disk, so the original pegase /
   ACTIVSg cases can be used directly when available.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable

from repro.exceptions import CaseNotFoundError
from repro.grid.components import Branch, Bus, BusType, CostModel, Generator, GeneratorCost
from repro.grid.matpower import parse_case_text, read_case
from repro.grid.network import Network

# --------------------------------------------------------------------- #
# Embedded canonical cases                                               #
# --------------------------------------------------------------------- #

#: The WSCC 9-bus case in MATPOWER format (case9.m), embedded verbatim so the
#: MATPOWER parser is exercised even without external files.
CASE9_TEXT = """
function mpc = case9
%% MATPOWER Case Format : Version 2
mpc.version = '2';
mpc.baseMVA = 100;

%% bus data
%	bus_i	type	Pd	Qd	Gs	Bs	area	Vm	Va	baseKV	zone	Vmax	Vmin
mpc.bus = [
	1	3	0	0	0	0	1	1	0	345	1	1.1	0.9;
	2	2	0	0	0	0	1	1	0	345	1	1.1	0.9;
	3	2	0	0	0	0	1	1	0	345	1	1.1	0.9;
	4	1	0	0	0	0	1	1	0	345	1	1.1	0.9;
	5	1	90	30	0	0	1	1	0	345	1	1.1	0.9;
	6	1	0	0	0	0	1	1	0	345	1	1.1	0.9;
	7	1	100	35	0	0	1	1	0	345	1	1.1	0.9;
	8	1	0	0	0	0	1	1	0	345	1	1.1	0.9;
	9	1	125	50	0	0	1	1	0	345	1	1.1	0.9;
];

%% generator data
%	bus	Pg	Qg	Qmax	Qmin	Vg	mBase	status	Pmax	Pmin
mpc.gen = [
	1	72.3	27.03	300	-300	1.04	100	1	250	10	0	0	0	0	0	0	0	0	0	0	0;
	2	163	6.54	300	-300	1.025	100	1	300	10	0	0	0	0	0	0	0	0	0	0	0;
	3	85	-10.95	300	-300	1.025	100	1	270	10	0	0	0	0	0	0	0	0	0	0	0;
];

%% branch data
%	fbus	tbus	r	x	b	rateA	rateB	rateC	ratio	angle	status	angmin	angmax
mpc.branch = [
	1	4	0	0.0576	0	250	250	250	0	0	1	-360	360;
	4	5	0.017	0.092	0.158	250	250	250	0	0	1	-360	360;
	5	6	0.039	0.17	0.358	150	150	150	0	0	1	-360	360;
	3	6	0	0.0586	0	300	300	300	0	0	1	-360	360;
	6	7	0.0119	0.1008	0.209	150	150	150	0	0	1	-360	360;
	7	8	0.0085	0.072	0.149	250	250	250	0	0	1	-360	360;
	8	2	0	0.0625	0	250	250	250	0	0	1	-360	360;
	8	9	0.032	0.161	0.306	250	250	250	0	0	1	-360	360;
	9	4	0.01	0.085	0.176	250	250	250	0	0	1	-360	360;
];

%% generator cost data
%	2	startup	shutdown	n	c(n-1)	...	c0
mpc.gencost = [
	2	1500	0	3	0.11	5	150;
	2	2000	0	3	0.085	1.2	600;
	2	3000	0	3	0.1225	1	335;
];
"""


def _make_case3() -> Network:
    """A tiny 3-bus case used heavily by unit tests.

    One slack generator, one cheaper remote generator, a single load, and a
    triangle of lines — small enough that solutions can be reasoned about by
    hand yet exercising every component type.
    """
    buses = [
        Bus(index=1, bus_type=BusType.REF, pd=0.0, qd=0.0, vmax=1.1, vmin=0.9),
        Bus(index=2, bus_type=BusType.PV, pd=0.0, qd=0.0, vmax=1.1, vmin=0.9),
        Bus(index=3, bus_type=BusType.PQ, pd=120.0, qd=40.0, vmax=1.1, vmin=0.9),
    ]
    branches = [
        Branch(from_bus=1, to_bus=2, r=0.01, x=0.06, b=0.03, rate_a=200.0),
        Branch(from_bus=1, to_bus=3, r=0.02, x=0.09, b=0.02, rate_a=200.0),
        Branch(from_bus=2, to_bus=3, r=0.015, x=0.08, b=0.025, rate_a=200.0),
    ]
    generators = [
        Generator(bus=1, pg=60.0, qg=0.0, qmax=150.0, qmin=-150.0, pmax=200.0, pmin=10.0),
        Generator(bus=2, pg=70.0, qg=0.0, qmax=150.0, qmin=-150.0, pmax=150.0, pmin=10.0),
    ]
    costs = [
        GeneratorCost(model=CostModel.POLYNOMIAL, coefficients=(0.02, 20.0, 100.0)),
        GeneratorCost(model=CostModel.POLYNOMIAL, coefficients=(0.0125, 15.0, 80.0)),
    ]
    return Network(name="case3", base_mva=100.0, buses=buses, branches=branches,
                   generators=generators, costs=costs)


def _make_case5() -> Network:
    """A 5-bus case loosely modelled on the PJM 5-bus system."""
    buses = [
        Bus(index=1, bus_type=BusType.PV, pd=0.0, qd=0.0),
        Bus(index=2, bus_type=BusType.PQ, pd=300.0, qd=98.6),
        Bus(index=3, bus_type=BusType.PV, pd=300.0, qd=98.6),
        Bus(index=4, bus_type=BusType.REF, pd=400.0, qd=131.5),
        Bus(index=5, bus_type=BusType.PV, pd=0.0, qd=0.0),
    ]
    branches = [
        Branch(from_bus=1, to_bus=2, r=0.00281, x=0.0281, b=0.00712, rate_a=400.0),
        Branch(from_bus=1, to_bus=4, r=0.00304, x=0.0304, b=0.00658, rate_a=400.0),
        Branch(from_bus=1, to_bus=5, r=0.00064, x=0.0064, b=0.03126, rate_a=400.0),
        Branch(from_bus=2, to_bus=3, r=0.00108, x=0.0108, b=0.01852, rate_a=400.0),
        Branch(from_bus=3, to_bus=4, r=0.00297, x=0.0297, b=0.00674, rate_a=400.0),
        Branch(from_bus=4, to_bus=5, r=0.00297, x=0.0297, b=0.00674, rate_a=240.0),
    ]
    generators = [
        Generator(bus=1, pg=40.0, qmax=30.0, qmin=-30.0, pmax=110.0, pmin=0.0),
        Generator(bus=1, pg=170.0, qmax=127.5, qmin=-127.5, pmax=250.0, pmin=0.0),
        Generator(bus=3, pg=323.5, qmax=390.0, qmin=-390.0, pmax=520.0, pmin=0.0),
        Generator(bus=4, pg=0.0, qmax=150.0, qmin=-150.0, pmax=300.0, pmin=0.0),
        Generator(bus=5, pg=466.5, qmax=450.0, qmin=-450.0, pmax=600.0, pmin=0.0),
    ]
    costs = [
        GeneratorCost(coefficients=(0.0, 14.0, 0.0)),
        GeneratorCost(coefficients=(0.0, 15.0, 0.0)),
        GeneratorCost(coefficients=(0.0, 30.0, 0.0)),
        GeneratorCost(coefficients=(0.0, 40.0, 0.0)),
        GeneratorCost(coefficients=(0.0, 10.0, 0.0)),
    ]
    return Network(name="case5", base_mva=100.0, buses=buses, branches=branches,
                   generators=generators, costs=costs)


def _make_case9() -> Network:
    return parse_case_text(CASE9_TEXT, name="case9")


# --------------------------------------------------------------------- #
# Synthetic analogues of the paper's test systems                       #
# --------------------------------------------------------------------- #

#: (buses, generators, branches) of the paper's Table I systems.
PAPER_SYSTEM_SIZES = {
    "1354pegase": (1354, 260, 1991),
    "2869pegase": (2869, 510, 4582),
    "9241pegase": (9241, 1445, 16049),
    "13659pegase": (13659, 4092, 20467),
    "ACTIVSg25k": (25000, 4834, 32230),
    "ACTIVSg70k": (70000, 10390, 88207),
}


def _synthetic_factory(n_bus: int, n_gen: int, n_branch: int, style: str,
                       seed: int, name: str) -> Callable[[], Network]:
    def factory() -> Network:
        from repro.grid.synthetic import make_synthetic_grid

        return make_synthetic_grid(n_bus=n_bus, n_gen=n_gen, n_branch=n_branch,
                                   style=style, seed=seed, name=name)

    return factory


_REGISTRY: dict[str, Callable[[], Network]] = {
    "case3": _make_case3,
    "case5": _make_case5,
    "case9": _make_case9,
    # Scaled-down benchmark analogues (used by default in benchmarks because
    # a pure-Python substrate cannot turn over tens of thousands of buses in
    # benchmark time).
    "pegase30_like": _synthetic_factory(30, 6, 41, "pegase", 30, "pegase30_like"),
    "pegase118_like": _synthetic_factory(118, 19, 186, "pegase", 118, "pegase118_like"),
    "pegase300_like": _synthetic_factory(300, 57, 411, "pegase", 300, "pegase300_like"),
    "activsg200_like": _synthetic_factory(200, 38, 245, "activsg", 200, "activsg200_like"),
    "activsg500_like": _synthetic_factory(500, 90, 600, "activsg", 500, "activsg500_like"),
}

# Full-size synthetic analogues of every Table I system (same bus / generator /
# branch counts as the paper).  Generating them is fast; solving them with the
# pure-Python substrate is intended for scaling studies, not CI.
for _paper_name, (_nb, _ng, _nl) in PAPER_SYSTEM_SIZES.items():
    _style = "activsg" if _paper_name.startswith("ACTIVSg") else "pegase"
    _REGISTRY[f"{_paper_name}_like"] = _synthetic_factory(
        _nb, _ng, _nl, _style, _nb, f"{_paper_name}_like")


def available_cases() -> list[str]:
    """Names accepted by :func:`load_case` (excluding file paths)."""
    return sorted(_REGISTRY)


def register_case(name: str, factory: Callable[[], Network]) -> None:
    """Register a custom case factory under ``name``."""
    _REGISTRY[name] = factory


def load_case(name: str | Path) -> Network:
    """Load a case by registry name or MATPOWER file path."""
    key = str(name)
    if key in _REGISTRY:
        return _REGISTRY[key]()
    path = Path(key)
    if path.suffix == ".m" or path.exists():
        return read_case(path)
    raise CaseNotFoundError(
        f"unknown case {name!r}; available: {', '.join(available_cases())} "
        "or a path to a MATPOWER .m file")
