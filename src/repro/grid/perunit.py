"""Per-unit conversion helpers.

The :class:`~repro.grid.network.Network` container already stores all solver
facing quantities in per unit; these helpers exist for users converting
results back to engineering units and for tests asserting round-trip
consistency.
"""

from __future__ import annotations

import numpy as np

ArrayLike = "np.ndarray | float"


def mw_to_pu(power_mw, base_mva: float):
    """Convert MW (or MVAr) to per unit on ``base_mva``."""
    if base_mva <= 0:
        raise ValueError(f"base MVA must be positive, got {base_mva}")
    return np.asarray(power_mw, dtype=float) / base_mva


def pu_to_mw(power_pu, base_mva: float):
    """Convert per-unit power to MW (or MVAr) on ``base_mva``."""
    if base_mva <= 0:
        raise ValueError(f"base MVA must be positive, got {base_mva}")
    return np.asarray(power_pu, dtype=float) * base_mva


def impedance_to_pu(ohms, base_kv: float, base_mva: float):
    """Convert an impedance in ohms to per unit."""
    z_base = base_kv * base_kv / base_mva
    return np.asarray(ohms, dtype=float) / z_base


def impedance_from_pu(z_pu, base_kv: float, base_mva: float):
    """Convert a per-unit impedance back to ohms."""
    z_base = base_kv * base_kv / base_mva
    return np.asarray(z_pu, dtype=float) * z_base


def degrees_to_radians(angle_deg):
    """Degrees to radians (thin wrapper kept for symmetry)."""
    return np.deg2rad(angle_deg)


def radians_to_degrees(angle_rad):
    """Radians to degrees (thin wrapper kept for symmetry)."""
    return np.rad2deg(angle_rad)


def cost_coefficients_to_pu(c2_mw: float, c1_mw: float, c0: float,
                            base_mva: float) -> tuple[float, float, float]:
    """Convert quadratic cost coefficients from MW-based to per-unit-based."""
    return c2_mw * base_mva * base_mva, c1_mw * base_mva, c0


def cost_coefficients_from_pu(c2_pu: float, c1_pu: float, c0: float,
                              base_mva: float) -> tuple[float, float, float]:
    """Convert quadratic cost coefficients from per-unit-based to MW-based."""
    return c2_pu / (base_mva * base_mva), c1_pu / base_mva, c0
