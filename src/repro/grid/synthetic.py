"""Synthetic grid generation.

The paper evaluates on MATPOWER pegase and ACTIVSg cases with up to 70,000
buses.  Those files are not shipped here, so this module builds synthetic
grids with the same structural statistics (bus/generator/branch counts,
meshed topology with local connectivity, quadratic generator costs, line MVA
ratings) to exercise exactly the same solver code paths.  Generation is
deterministic in ``seed`` so benchmarks are reproducible.

The construction guarantees a connected network, adequate generation
capacity (≈50 % reserve margin), and line ratings sized from a DC power-flow
estimate of nominal flows so that the ACOPF is feasible but the limits are
not vacuous.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataError
from repro.grid.components import Branch, Bus, BusType, CostModel, Generator, GeneratorCost
from repro.grid.network import Network

#: Style presets.  ``branch_per_bus`` and ``gen_per_bus`` reproduce the
#: ratios of the paper's Table I systems; impedance ranges are typical of
#: transmission-level equipment in per unit on a 100 MVA base.
_STYLES = {
    "pegase": dict(branch_per_bus=1.47, gen_per_bus=0.19, load_fraction=0.72,
                   mw_per_load_bus=12.0, x_low=0.01, x_high=0.12, r_over_x=0.25,
                   charging_over_x=0.6, transformer_fraction=0.08,
                   vmin=0.9, vmax=1.1, rating_margin=1.8),
    "activsg": dict(branch_per_bus=1.28, gen_per_bus=0.18, load_fraction=0.65,
                    mw_per_load_bus=9.0, x_low=0.008, x_high=0.09, r_over_x=0.2,
                    charging_over_x=0.4, transformer_fraction=0.12,
                    vmin=0.9, vmax=1.1, rating_margin=1.6),
}


def _build_topology(n_bus: int, n_branch: int, rng: np.random.Generator,
                    locality: int) -> list[tuple[int, int]]:
    """Return a connected edge list with ``n_branch`` edges on ``n_bus`` nodes.

    A spanning tree with local attachment (each new bus connects to a nearby
    existing bus) is built first, then chord edges between nearby buses are
    added until the target count is reached.  The locality window mimics the
    geographic structure of transmission grids.
    """
    if n_branch < n_bus - 1:
        raise DataError(
            f"need at least {n_bus - 1} branches to connect {n_bus} buses, got {n_branch}")
    edges: list[tuple[int, int]] = []
    edge_set: set[tuple[int, int]] = set()

    def add_edge(a: int, b: int) -> bool:
        if a == b:
            return False
        key = (min(a, b), max(a, b))
        if key in edge_set:
            return False
        edge_set.add(key)
        edges.append(key)
        return True

    for i in range(1, n_bus):
        lo = max(0, i - locality)
        j = int(rng.integers(lo, i))
        add_edge(i, j)

    attempts = 0
    max_attempts = 50 * n_branch
    while len(edges) < n_branch and attempts < max_attempts:
        attempts += 1
        i = int(rng.integers(0, n_bus))
        span = int(rng.integers(1, 3 * locality))
        j = i + span if rng.random() < 0.5 else i - span
        if 0 <= j < n_bus:
            add_edge(i, j)
    # Fall back to uniformly random chords if the local search saturated
    # (only happens for very dense small grids).
    while len(edges) < n_branch:
        i, j = rng.integers(0, n_bus, size=2)
        add_edge(int(i), int(j))
    return edges


def _dc_flow_estimate(n_bus: int, edges: list[tuple[int, int]], x: np.ndarray,
                      injection: np.ndarray) -> np.ndarray:
    """Per-branch DC power-flow estimate used only to size line ratings."""
    from scipy import sparse
    from scipy.sparse.linalg import spsolve

    n_branch = len(edges)
    f = np.array([e[0] for e in edges])
    t = np.array([e[1] for e in edges])
    susceptance = 1.0 / x
    rows = np.concatenate([f, t, f, t])
    cols = np.concatenate([f, t, t, f])
    vals = np.concatenate([susceptance, susceptance, -susceptance, -susceptance])
    b_matrix = sparse.coo_matrix((vals, (rows, cols)), shape=(n_bus, n_bus)).tocsc()
    keep = np.arange(1, n_bus)
    theta = np.zeros(n_bus)
    reduced = b_matrix[keep][:, keep]
    theta[keep] = spsolve(reduced.tocsc(), injection[keep])
    return (theta[f] - theta[t]) * susceptance if n_branch else np.zeros(0)


def make_synthetic_grid(n_bus: int, n_gen: int | None = None,
                        n_branch: int | None = None, style: str = "pegase",
                        seed: int = 0, name: str | None = None) -> Network:
    """Generate a synthetic transmission grid.

    Parameters
    ----------
    n_bus:
        Number of buses (at least 2).
    n_gen, n_branch:
        Generator and branch counts; defaults follow the chosen style's
        per-bus ratios (which match the paper's Table I systems).
    style:
        ``"pegase"`` (European-style, heavier loading, more meshing) or
        ``"activsg"`` (US-style synthetic grid statistics).
    seed:
        Seed for the deterministic random generator.
    name:
        Network name; defaults to ``"<style><n_bus>_synthetic"``.
    """
    if n_bus < 2:
        raise DataError("a synthetic grid needs at least 2 buses")
    if style not in _STYLES:
        raise DataError(f"unknown style {style!r}; choose from {sorted(_STYLES)}")
    preset = _STYLES[style]
    rng = np.random.default_rng(seed)

    if n_gen is None:
        n_gen = max(2, int(round(preset["gen_per_bus"] * n_bus)))
    if n_branch is None:
        n_branch = max(n_bus - 1, int(round(preset["branch_per_bus"] * n_bus)))
    n_gen = min(n_gen, n_bus)
    name = name or f"{style}{n_bus}_synthetic"
    base_mva = 100.0

    locality = max(4, min(40, n_bus // 8))
    edges = _build_topology(n_bus, n_branch, rng, locality)

    # --- branch electrical parameters ---------------------------------- #
    n_br = len(edges)
    x = rng.uniform(preset["x_low"], preset["x_high"], size=n_br)
    r = x * preset["r_over_x"] * rng.uniform(0.5, 1.5, size=n_br)
    charging = x * preset["charging_over_x"] * rng.uniform(0.3, 1.0, size=n_br)
    tap = np.zeros(n_br)
    is_xfmr = rng.random(n_br) < preset["transformer_fraction"]
    tap[is_xfmr] = rng.uniform(0.97, 1.03, size=int(is_xfmr.sum()))
    charging[is_xfmr] = 0.0

    # --- loads ----------------------------------------------------------- #
    load_buses = rng.random(n_bus) < preset["load_fraction"]
    load_buses[0] = False  # keep the slack bus load-free for readability
    n_load = max(1, int(load_buses.sum()))
    if not load_buses.any():
        load_buses[-1] = True
        n_load = 1
    pd = np.zeros(n_bus)
    raw = rng.lognormal(mean=0.0, sigma=0.45, size=n_load)
    pd[load_buses] = raw / raw.mean() * preset["mw_per_load_bus"]
    qd = pd * rng.uniform(0.25, 0.4, size=n_bus)
    total_load = pd.sum()

    # --- generators ------------------------------------------------------ #
    gen_bus_idx = [0]  # slack always hosts a generator
    candidates = rng.permutation(np.arange(1, n_bus))
    gen_bus_idx.extend(int(b) for b in candidates[: n_gen - 1])
    gen_bus_idx = gen_bus_idx[:n_gen]
    weights = rng.lognormal(mean=0.0, sigma=0.6, size=n_gen)
    capacity_target = 1.5 * total_load
    pmax = weights / weights.sum() * capacity_target
    pmax = np.maximum(pmax, 10.0)
    pmin = np.zeros(n_gen)
    qmax = 0.6 * pmax
    qmin = -0.6 * pmax
    c2 = rng.uniform(0.002, 0.02, size=n_gen)
    c1 = rng.uniform(10.0, 50.0, size=n_gen)
    c0 = rng.uniform(0.0, 300.0, size=n_gen)

    # --- line ratings from a DC estimate of nominal flows ---------------- #
    injection = -pd / base_mva
    dispatch = pmax / pmax.sum() * total_load
    for g, bus in enumerate(gen_bus_idx):
        injection[bus] += dispatch[g] / base_mva
    injection -= injection.mean()  # balance numerically
    flows = np.abs(_dc_flow_estimate(n_bus, edges, x, injection)) * base_mva
    rating = np.maximum(preset["rating_margin"] * flows, 50.0)
    rating = np.ceil(rating / 10.0) * 10.0

    # --- assemble component records -------------------------------------- #
    buses = []
    for i in range(n_bus):
        bus_type = BusType.REF if i == 0 else (
            BusType.PV if i in set(gen_bus_idx) else BusType.PQ)
        buses.append(Bus(index=i + 1, bus_type=bus_type, pd=float(pd[i]), qd=float(qd[i]),
                         vm=1.0, va=0.0, vmax=preset["vmax"], vmin=preset["vmin"],
                         base_kv=230.0))
    branches = []
    for ell, (f, t) in enumerate(edges):
        branches.append(Branch(from_bus=f + 1, to_bus=t + 1, r=float(r[ell]),
                               x=float(x[ell]), b=float(charging[ell]),
                               rate_a=float(rating[ell]), tap=float(tap[ell]),
                               shift=0.0, status=1))
    generators = []
    costs = []
    for g, bus in enumerate(gen_bus_idx):
        generators.append(Generator(bus=bus + 1, pg=float(dispatch[g]), qg=0.0,
                                    qmax=float(qmax[g]), qmin=float(qmin[g]),
                                    pmax=float(pmax[g]), pmin=float(pmin[g]),
                                    ramp_rate=float(0.02 * pmax[g])))
        costs.append(GeneratorCost(model=CostModel.POLYNOMIAL,
                                   coefficients=(float(c2[g]), float(c1[g]), float(c0[g]))))

    return Network(name=name, base_mva=base_mva, buses=buses, branches=branches,
                   generators=generators, costs=costs)
