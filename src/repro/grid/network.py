"""The :class:`Network` container.

A :class:`Network` owns the component records of one grid and exposes the
consistent, zero-based, per-unit structure-of-arrays view that every solver
in this repository consumes.  The array attributes are plain NumPy arrays so
that solvers can vectorise over components — the central idiom of the paper's
GPU implementation and of this reproduction.

Branch admittance coefficients follow the paper's formulation (1):

``(y_s + j b/2) / |a|^2      = g_ii + j b_ii``   (from-side self term)
``(-y_s) / conj(a)           = g_ij + j b_ij``   (from-to transfer term)
``(-y_s) / a                 = g_ji + j b_ji``   (to-from transfer term)
``(y_s + j b/2)              = g_jj + j b_jj``   (to-side self term)

with ``y_s = 1 / (r + j x)`` the series admittance, ``b`` the total line
charging susceptance, and ``a = tap * exp(j shift)`` the complex turns ratio.
These are exactly MATPOWER's ``Yff``, ``Yft``, ``Ytf``, ``Ytt``.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field, replace
from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import DataError
from repro.grid.components import Branch, Bus, BusType, Generator, GeneratorCost


@dataclass
class Network:
    """An AC power network in a solver-ready form.

    Build instances through :meth:`from_components`, :func:`repro.load_case`,
    or :func:`repro.grid.synthetic.make_synthetic_grid`; the raw constructor
    expects already-consistent component lists.
    """

    name: str
    base_mva: float
    buses: list[Bus]
    branches: list[Branch]
    generators: list[Generator]
    costs: list[GeneratorCost]

    # ------------------------------------------------------------------ #
    # Derived arrays (filled by ``_build_arrays``)                        #
    # ------------------------------------------------------------------ #
    bus_index_map: dict[int, int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self._validate_components()
        self._build_arrays()

    # ------------------------------------------------------------------ #
    # Construction helpers                                                #
    # ------------------------------------------------------------------ #
    @classmethod
    def from_components(
        cls,
        name: str,
        base_mva: float,
        buses: Iterable[Bus],
        branches: Iterable[Branch],
        generators: Iterable[Generator],
        costs: Iterable[GeneratorCost] | None = None,
    ) -> "Network":
        """Create a network, synthesising zero-cost curves if none are given."""
        buses = list(buses)
        branches = list(branches)
        generators = list(generators)
        if costs is None:
            costs = [GeneratorCost() for _ in generators]
        else:
            costs = list(costs)
        return cls(name=name, base_mva=float(base_mva), buses=buses,
                   branches=branches, generators=generators, costs=costs)

    def _validate_components(self) -> None:
        if not self.buses:
            raise DataError("a network must contain at least one bus")
        if self.base_mva <= 0:
            raise DataError(f"base MVA must be positive, got {self.base_mva}")
        if len(self.costs) != len(self.generators):
            raise DataError(
                f"{len(self.generators)} generators but {len(self.costs)} cost curves")
        seen: set[int] = set()
        for bus in self.buses:
            if bus.index in seen:
                raise DataError(f"duplicate bus number {bus.index}")
            seen.add(bus.index)
        for branch in self.branches:
            if branch.from_bus not in seen or branch.to_bus not in seen:
                raise DataError(
                    f"branch {branch.from_bus}-{branch.to_bus} references an unknown bus")
            if branch.from_bus == branch.to_bus:
                raise DataError(f"branch at bus {branch.from_bus} connects a bus to itself")
            if branch.in_service and branch.r == 0.0 and branch.x == 0.0:
                raise DataError(
                    f"branch {branch.from_bus}-{branch.to_bus} has zero series impedance")
        for gen in self.generators:
            if gen.bus not in seen:
                raise DataError(f"generator references unknown bus {gen.bus}")
        ref_buses = [b for b in self.buses if b.bus_type == BusType.REF]
        if not ref_buses:
            raise DataError("network has no reference (slack) bus")

    # ------------------------------------------------------------------ #
    # Array views                                                         #
    # ------------------------------------------------------------------ #
    def _build_arrays(self) -> None:
        base = self.base_mva
        self.bus_index_map = {bus.index: i for i, bus in enumerate(self.buses)}

        # --- buses -----------------------------------------------------
        nb = len(self.buses)
        self.bus_pd = np.array([b.pd for b in self.buses]) / base
        self.bus_qd = np.array([b.qd for b in self.buses]) / base
        self.bus_gs = np.array([b.gs for b in self.buses]) / base
        self.bus_bs = np.array([b.bs for b in self.buses]) / base
        self.bus_vmax = np.array([b.vmax for b in self.buses], dtype=float)
        self.bus_vmin = np.array([b.vmin for b in self.buses], dtype=float)
        self.bus_vm0 = np.array([b.vm for b in self.buses], dtype=float)
        self.bus_va0 = np.deg2rad([b.va for b in self.buses])
        self.bus_type = np.array([int(b.bus_type) for b in self.buses], dtype=int)
        ref_candidates = np.flatnonzero(self.bus_type == int(BusType.REF))
        self.ref_bus = int(ref_candidates[0])

        # --- generators (in-service only participate in dispatch) -------
        in_service = [g.status > 0 for g in self.generators]
        self.gen_status = np.array(in_service, dtype=bool)
        self.gen_bus = np.array(
            [self.bus_index_map[g.bus] for g in self.generators], dtype=int)
        self.gen_pmin = np.array([g.pmin for g in self.generators]) / base
        self.gen_pmax = np.array([g.pmax for g in self.generators]) / base
        self.gen_qmin = np.array([g.qmin for g in self.generators]) / base
        self.gen_qmax = np.array([g.qmax for g in self.generators]) / base
        self.gen_pg0 = np.array([g.pg for g in self.generators]) / base
        self.gen_qg0 = np.array([g.qg for g in self.generators]) / base
        self.gen_ramp = np.array([g.ramp_rate for g in self.generators]) / base
        # Cost in per-unit power: cost(p_pu) = c2 p^2 + c1 p + c0 with p in pu.
        quad = np.array([c.as_quadratic() for c in self.costs], dtype=float)
        if quad.size == 0:
            quad = np.zeros((0, 3))
        self.gen_cost_c2 = quad[:, 0] * base * base
        self.gen_cost_c1 = quad[:, 1] * base
        self.gen_cost_c0 = quad[:, 2].copy()
        # Out-of-service generators are pinned to zero output so that the
        # solvers can keep a dense generator axis.
        off = ~self.gen_status
        for arr in (self.gen_pmin, self.gen_pmax, self.gen_qmin, self.gen_qmax,
                    self.gen_pg0, self.gen_qg0):
            arr[off] = 0.0
        self.gen_cost_c2[off] = 0.0
        self.gen_cost_c1[off] = 0.0
        self.gen_cost_c0[off] = 0.0

        # --- branches ----------------------------------------------------
        live = [br for br in self.branches if br.in_service]
        self.live_branches = live
        nl = len(live)
        self.branch_from = np.array(
            [self.bus_index_map[br.from_bus] for br in live], dtype=int)
        self.branch_to = np.array(
            [self.bus_index_map[br.to_bus] for br in live], dtype=int)
        r = np.array([br.r for br in live], dtype=float)
        x = np.array([br.x for br in live], dtype=float)
        btot = np.array([br.b for br in live], dtype=float)
        tap = np.array([br.turns_ratio for br in live], dtype=float)
        shift = np.deg2rad([br.shift for br in live])
        ys = 1.0 / (r + 1j * x)
        a = tap * np.exp(1j * shift)
        ytt = ys + 0.5j * btot
        yff = ytt / (tap * tap)
        yft = -ys / np.conj(a)
        ytf = -ys / a
        self.branch_g_ii = yff.real.copy()
        self.branch_b_ii = yff.imag.copy()
        self.branch_g_ij = yft.real.copy()
        self.branch_b_ij = yft.imag.copy()
        self.branch_g_ji = ytf.real.copy()
        self.branch_b_ji = ytf.imag.copy()
        self.branch_g_jj = ytt.real.copy()
        self.branch_b_jj = ytt.imag.copy()
        # MATPOWER convention: a 0 rating means "unlimited".
        rate = np.array([br.rate_a for br in live], dtype=float) / base
        self.branch_rate_a = rate
        self.branch_has_limit = rate > 0.0
        self.branch_angmin = np.deg2rad([br.angmin for br in live])
        self.branch_angmax = np.deg2rad([br.angmax for br in live])

        # --- adjacency ---------------------------------------------------
        self.gens_at_bus: list[list[int]] = [[] for _ in range(nb)]
        for g, bus_idx in enumerate(self.gen_bus):
            if self.gen_status[g]:
                self.gens_at_bus[bus_idx].append(g)
        # Incident branch ends per bus: (branch index, 0 for from-side / 1 for to-side)
        self.lines_at_bus: list[list[tuple[int, int]]] = [[] for _ in range(nb)]
        for ell in range(nl):
            self.lines_at_bus[self.branch_from[ell]].append((ell, 0))
            self.lines_at_bus[self.branch_to[ell]].append((ell, 1))

    # ------------------------------------------------------------------ #
    # Simple accessors                                                    #
    # ------------------------------------------------------------------ #
    @property
    def n_bus(self) -> int:
        return len(self.buses)

    @property
    def n_branch(self) -> int:
        """Number of in-service branches (the solver-facing count)."""
        return len(self.branch_from)

    @property
    def n_gen(self) -> int:
        return len(self.generators)

    @property
    def n_gen_active(self) -> int:
        return int(self.gen_status.sum())

    def total_load(self) -> tuple[float, float]:
        """Total (P, Q) demand in per unit."""
        return float(self.bus_pd.sum()), float(self.bus_qd.sum())

    def generation_cost(self, pg: np.ndarray) -> float:
        """Total generation cost ($/h) for per-unit dispatch ``pg``."""
        pg = np.asarray(pg, dtype=float)
        return float(np.sum(self.gen_cost_c2 * pg * pg
                            + self.gen_cost_c1 * pg + self.gen_cost_c0))

    def with_scaled_loads(self, factor: float | np.ndarray,
                          name: str | None = None) -> "Network":
        """Return a copy of the network with all loads scaled by ``factor``.

        ``factor`` may be a scalar or a per-bus array; generation limits and
        everything else are untouched.  Used by the multi-period tracking
        driver to follow a demand profile.
        """
        factor = np.asarray(factor, dtype=float)
        if factor.ndim not in (0, 1):
            raise DataError("load scaling factor must be a scalar or a per-bus vector")
        if factor.ndim == 1 and factor.shape[0] != self.n_bus:
            raise DataError(
                f"per-bus scaling vector has length {factor.shape[0]}, expected {self.n_bus}")
        scale = np.broadcast_to(factor, (self.n_bus,))
        new_buses = []
        for i, bus in enumerate(self.buses):
            new_buses.append(Bus(index=bus.index, bus_type=bus.bus_type,
                                 pd=bus.pd * scale[i], qd=bus.qd * scale[i],
                                 gs=bus.gs, bs=bus.bs, vm=bus.vm, va=bus.va,
                                 base_kv=bus.base_kv, vmax=bus.vmax, vmin=bus.vmin,
                                 area=bus.area, zone=bus.zone))
        return Network(name=name or self.name, base_mva=self.base_mva,
                       buses=new_buses, branches=list(self.branches),
                       generators=list(self.generators), costs=list(self.costs))

    def with_array_overrides(self, *, bus_pd: np.ndarray | None = None,
                             bus_qd: np.ndarray | None = None,
                             gen_pmin: np.ndarray | None = None,
                             gen_pmax: np.ndarray | None = None,
                             name: str | None = None) -> "Network":
        """A shallow solver-facing view with some per-unit arrays replaced.

        Unlike :meth:`with_scaled_loads` (which rebuilds component records
        and re-derives every array), the view shares all component lists and
        derived arrays with the original except the overridden ones — an
        O(1) operation the multi-period tracking pipeline uses to step loads
        and generator dispatch windows between periods without per-network
        rebuilds.  Overrides are **per unit** and must match the existing
        array shapes.

        The component records (``buses``, ``generators``) keep their
        original values: the view is for consumers of the array attributes
        (the ADMM and baseline solvers, power flow, metric evaluation), not
        for re-editing components — methods that rebuild from records
        (``with_scaled_loads``, ``with_branch_outage``) would silently drop
        the overrides, so derive further views from the original network.
        """
        overrides = {"bus_pd": bus_pd, "bus_qd": bus_qd,
                     "gen_pmin": gen_pmin, "gen_pmax": gen_pmax}
        view = copy.copy(self)
        for attr, value in overrides.items():
            if value is None:
                continue
            value = np.asarray(value, dtype=float)
            current = getattr(self, attr)
            if value.shape != current.shape:
                raise DataError(
                    f"{attr} override has shape {value.shape}, "
                    f"expected {current.shape}")
            setattr(view, attr, value)
        if name is not None:
            view.name = name
        return view

    def with_branch_outage(self, branch_index: int, name: str | None = None) -> "Network":
        """Return a copy with one in-service branch switched out (N-1).

        ``branch_index`` refers to the solver-facing in-service branch axis
        (the one ``branch_from`` / ``branch_to`` are indexed by), not the raw
        component list, so contingency loops can iterate ``range(n_branch)``.
        """
        if not 0 <= branch_index < self.n_branch:
            raise DataError(
                f"branch index {branch_index} out of range for {self.n_branch} "
                "in-service branches")
        # Count in-service entries rather than matching by identity: a branch
        # list may legally hold the same Branch instance twice (double
        # circuit), and only the requested circuit goes out.
        new_branches = []
        live_seen = -1
        for branch in self.branches:
            if branch.in_service:
                live_seen += 1
                if live_seen == branch_index:
                    branch = replace(branch, status=0)
            new_branches.append(branch)
        return Network(name=name or f"{self.name}@n-1:{branch_index}",
                       base_mva=self.base_mva, buses=list(self.buses),
                       branches=new_branches, generators=list(self.generators),
                       costs=list(self.costs))

    def summary(self) -> str:
        """One-line human-readable summary (used by Table I reporting)."""
        return (f"{self.name}: {self.n_gen_active} generators, "
                f"{self.n_branch} branches, {self.n_bus} buses")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Network(name={self.name!r}, buses={self.n_bus}, "
                f"branches={self.n_branch}, generators={self.n_gen})")
