"""Power-grid data model, case I/O, and synthetic case generation.

The grid subpackage is the data substrate every solver in this repository is
built on.  It provides

* :mod:`repro.grid.components` — plain-data records for buses, branches,
  generators, and generator cost curves;
* :mod:`repro.grid.network` — the :class:`~repro.grid.network.Network`
  container with consistent integer indexing and the per-branch admittance
  coefficients used by the paper's formulation (1);
* :mod:`repro.grid.matpower` — a MATPOWER ``.m`` case parser and writer so
  that the original pegase / ACTIVSg files can be used when available;
* :mod:`repro.grid.cases` — embedded canonical cases and the case registry;
* :mod:`repro.grid.synthetic` — synthetic pegase-like and ACTIVSg-like grid
  generators used as stand-ins for the paper's large proprietary-format
  cases.
"""

from repro.grid.components import Branch, Bus, BusType, CostModel, Generator, GeneratorCost
from repro.grid.network import Network
from repro.grid.cases import available_cases, load_case
from repro.grid.synthetic import make_synthetic_grid

__all__ = [
    "Branch",
    "Bus",
    "BusType",
    "CostModel",
    "Generator",
    "GeneratorCost",
    "Network",
    "available_cases",
    "load_case",
    "make_synthetic_grid",
]
