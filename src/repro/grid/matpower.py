"""MATPOWER ``.m`` case file parsing and writing.

The paper's test cases (1354pegase ... ACTIVSg70k) are distributed as
MATPOWER case files.  This module implements enough of the MATPOWER format
to round-trip those files: the ``baseMVA`` scalar and the ``bus``, ``gen``,
``branch``, and ``gencost`` matrices of case format version 2.  MATLAB
expressions other than numeric literals inside the matrices are not
supported (none of the standard cases use them).
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.exceptions import DataError
from repro.grid.components import Branch, Bus, BusType, CostModel, Generator, GeneratorCost
from repro.grid.network import Network

# Column order of MATPOWER case format version 2.
BUS_COLUMNS = ("bus_i", "type", "Pd", "Qd", "Gs", "Bs", "area", "Vm", "Va",
               "baseKV", "zone", "Vmax", "Vmin")
GEN_COLUMNS = ("bus", "Pg", "Qg", "Qmax", "Qmin", "Vg", "mBase", "status",
               "Pmax", "Pmin", "Pc1", "Pc2", "Qc1min", "Qc1max", "Qc2min",
               "Qc2max", "ramp_agc", "ramp_10", "ramp_30", "ramp_q", "apf")
BRANCH_COLUMNS = ("fbus", "tbus", "r", "x", "b", "rateA", "rateB", "rateC",
                  "ratio", "angle", "status", "angmin", "angmax")

_MATRIX_RE = re.compile(
    r"mpc\.(?P<name>\w+)\s*=\s*\[(?P<body>.*?)\];", re.DOTALL)
_SCALAR_RE = re.compile(
    r"mpc\.(?P<name>\w+)\s*=\s*(?P<value>[-+0-9.eE]+)\s*;")


def _strip_comments(text: str) -> str:
    """Remove MATLAB ``%`` comments (outside of strings, which we ignore)."""
    lines = []
    for line in text.splitlines():
        idx = line.find("%")
        if idx >= 0:
            line = line[:idx]
        lines.append(line)
    return "\n".join(lines)


def _parse_matrix(body: str) -> np.ndarray:
    """Parse the body of a MATLAB matrix literal into a 2-D float array."""
    rows: list[list[float]] = []
    # Rows are separated by ';' or newlines; values by whitespace or commas.
    for raw_row in re.split(r"[;\n]", body):
        raw_row = raw_row.strip()
        if not raw_row:
            continue
        values = [float(tok) for tok in re.split(r"[\s,]+", raw_row) if tok]
        if values:
            rows.append(values)
    if not rows:
        return np.zeros((0, 0))
    width = max(len(r) for r in rows)
    out = np.zeros((len(rows), width))
    for i, row in enumerate(rows):
        out[i, :len(row)] = row
    return out


def parse_case_text(text: str, name: str = "case") -> Network:
    """Parse the text of a MATPOWER case file into a :class:`Network`."""
    text = _strip_comments(text)
    matrices: dict[str, np.ndarray] = {}
    for match in _MATRIX_RE.finditer(text):
        matrices[match.group("name")] = _parse_matrix(match.group("body"))
    scalars: dict[str, float] = {}
    for match in _SCALAR_RE.finditer(text):
        scalars[match.group("name")] = float(match.group("value"))

    if "bus" not in matrices or "gen" not in matrices or "branch" not in matrices:
        raise DataError("case file is missing one of the bus/gen/branch matrices")
    base_mva = scalars.get("baseMVA", 100.0)

    buses = [_bus_from_row(row) for row in matrices["bus"]]
    generators = [_gen_from_row(row) for row in matrices["gen"]]
    branches = [_branch_from_row(row) for row in matrices["branch"]]
    if "gencost" in matrices and matrices["gencost"].size:
        costs = [_cost_from_row(row) for row in matrices["gencost"]]
        # MATPOWER allows 2*ng rows (reactive costs appended); keep the first ng.
        costs = costs[:len(generators)]
        while len(costs) < len(generators):
            costs.append(GeneratorCost())
    else:
        costs = [GeneratorCost() for _ in generators]

    return Network(name=name, base_mva=base_mva, buses=buses,
                   branches=branches, generators=generators, costs=costs)


def read_case(path: str | Path) -> Network:
    """Read a MATPOWER ``.m`` case file from disk."""
    path = Path(path)
    if not path.exists():
        raise DataError(f"case file {path} does not exist")
    return parse_case_text(path.read_text(), name=path.stem)


def _bus_from_row(row: Sequence[float]) -> Bus:
    row = list(row) + [0.0] * (13 - len(row))
    return Bus(index=int(row[0]), bus_type=BusType(int(row[1])), pd=row[2], qd=row[3],
               gs=row[4], bs=row[5], area=int(row[6]), vm=row[7] or 1.0, va=row[8],
               base_kv=row[9] or 345.0, zone=int(row[10]) if row[10] else 1,
               vmax=row[11] or 1.1, vmin=row[12] or 0.9)


def _gen_from_row(row: Sequence[float]) -> Generator:
    row = list(row) + [0.0] * (21 - len(row))
    return Generator(bus=int(row[0]), pg=row[1], qg=row[2], qmax=row[3], qmin=row[4],
                     vg=row[5] or 1.0, mbase=row[6] or 100.0, status=int(row[7]),
                     pmax=row[8], pmin=row[9], ramp_rate=row[18])


def _branch_from_row(row: Sequence[float]) -> Branch:
    row = list(row) + [0.0] * (13 - len(row))
    status = int(row[10]) if len(row) > 10 else 1
    return Branch(from_bus=int(row[0]), to_bus=int(row[1]), r=row[2], x=row[3], b=row[4],
                  rate_a=row[5], rate_b=row[6], rate_c=row[7], tap=row[8], shift=row[9],
                  status=status, angmin=row[11] if row[11] else -360.0,
                  angmax=row[12] if row[12] else 360.0)


def _cost_from_row(row: Sequence[float]) -> GeneratorCost:
    row = list(row)
    model = CostModel(int(row[0]))
    startup, shutdown = row[1], row[2]
    n = int(row[3])
    coeffs = row[4:4 + (2 * n if model == CostModel.PIECEWISE_LINEAR else n)]
    return GeneratorCost(model=model, startup=startup, shutdown=shutdown,
                         coefficients=coeffs)


# ---------------------------------------------------------------------- #
# Writing                                                                #
# ---------------------------------------------------------------------- #
def _format_matrix(rows: list[list[float]]) -> str:
    lines = []
    for row in rows:
        cells = []
        for value in row:
            if float(value).is_integer() and abs(value) < 1e15:
                cells.append(f"{int(value)}")
            else:
                cells.append(f"{value:.9g}")
        lines.append("\t" + "\t".join(cells) + ";")
    return "\n".join(lines)


def case_to_text(network: Network, function_name: str | None = None) -> str:
    """Render a :class:`Network` as MATPOWER case file text."""
    function_name = function_name or re.sub(r"\W", "_", network.name) or "case"
    bus_rows = [[b.index, int(b.bus_type), b.pd, b.qd, b.gs, b.bs, b.area, b.vm, b.va,
                 b.base_kv, b.zone, b.vmax, b.vmin] for b in network.buses]
    gen_rows = [[g.bus, g.pg, g.qg, g.qmax, g.qmin, g.vg, g.mbase, g.status, g.pmax,
                 g.pmin, 0, 0, 0, 0, 0, 0, 0, 0, g.ramp_rate, 0, 0]
                for g in network.generators]
    branch_rows = [[br.from_bus, br.to_bus, br.r, br.x, br.b, br.rate_a, br.rate_b,
                    br.rate_c, br.tap, br.shift, br.status, br.angmin, br.angmax]
                   for br in network.branches]
    cost_rows = []
    for cost in network.costs:
        coeffs = list(cost.coefficients)
        n = len(coeffs) // 2 if cost.model == CostModel.PIECEWISE_LINEAR else len(coeffs)
        cost_rows.append([int(cost.model), cost.startup, cost.shutdown, n, *coeffs])

    parts = [
        f"function mpc = {function_name}",
        "%% MATPOWER case generated by the repro package",
        "mpc.version = '2';",
        f"mpc.baseMVA = {network.base_mva:g};",
        "",
        "%% bus data",
        "mpc.bus = [",
        _format_matrix(bus_rows),
        "];",
        "",
        "%% generator data",
        "mpc.gen = [",
        _format_matrix(gen_rows),
        "];",
        "",
        "%% branch data",
        "mpc.branch = [",
        _format_matrix(branch_rows),
        "];",
        "",
        "%% generator cost data",
        "mpc.gencost = [",
        _format_matrix(cost_rows),
        "];",
        "",
    ]
    return "\n".join(parts)


def write_case(network: Network, path: str | Path) -> Path:
    """Write a network to disk as a MATPOWER ``.m`` file and return the path."""
    path = Path(path)
    path.write_text(case_to_text(network, function_name=path.stem))
    return path
