"""Plain-data records describing grid components.

The records deliberately mirror the MATPOWER column conventions (power in MW
/ MVAr, voltages in per unit, impedances in per unit on the system MVA base)
because that is the interchange format used by the paper's test cases.  The
:class:`~repro.grid.network.Network` container converts everything to a
consistent per-unit structure-of-arrays representation for the solvers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import Sequence


class BusType(IntEnum):
    """MATPOWER bus types."""

    PQ = 1
    PV = 2
    REF = 3
    ISOLATED = 4


class CostModel(IntEnum):
    """MATPOWER generator cost model identifiers."""

    PIECEWISE_LINEAR = 1
    POLYNOMIAL = 2


@dataclass
class Bus:
    """A single bus (node) of the grid.

    Attributes
    ----------
    index:
        External bus number as found in the case file (1-based, arbitrary).
    bus_type:
        PQ / PV / REF / ISOLATED.
    pd, qd:
        Real (MW) and reactive (MVAr) demand.
    gs, bs:
        Shunt conductance / susceptance (MW / MVAr consumed at V = 1 pu).
    vm, va:
        Initial voltage magnitude (pu) and angle (degrees).
    base_kv:
        Voltage base of the bus in kV.
    vmax, vmin:
        Voltage magnitude limits in pu.
    area, zone:
        Area and loss-zone numbers (kept for round-tripping case files).
    """

    index: int
    bus_type: BusType = BusType.PQ
    pd: float = 0.0
    qd: float = 0.0
    gs: float = 0.0
    bs: float = 0.0
    vm: float = 1.0
    va: float = 0.0
    base_kv: float = 345.0
    vmax: float = 1.1
    vmin: float = 0.9
    area: int = 1
    zone: int = 1

    def __post_init__(self) -> None:
        self.bus_type = BusType(int(self.bus_type))


@dataclass
class Generator:
    """A generator (or dispatchable injection) attached to a bus.

    Attributes follow MATPOWER's ``gen`` matrix: power limits in MW / MVAr,
    ``vg`` is the voltage set point, ``mbase`` the machine MVA base, and
    ``status`` a 0/1 in-service flag.  ``ramp_rate`` (MW per period) is used
    by the multi-period tracking driver; MATPOWER's RAMP_30 column is mapped
    onto it when present.
    """

    bus: int
    pg: float = 0.0
    qg: float = 0.0
    qmax: float = 9999.0
    qmin: float = -9999.0
    vg: float = 1.0
    mbase: float = 100.0
    status: int = 1
    pmax: float = 9999.0
    pmin: float = 0.0
    ramp_rate: float = 0.0

    @property
    def in_service(self) -> bool:
        return self.status > 0


@dataclass
class GeneratorCost:
    """Cost curve of one generator.

    Only polynomial cost models are used by the solvers (the paper's cases
    all use quadratic costs); piecewise-linear curves are converted to a
    least-squares quadratic fit by :meth:`as_quadratic`.

    Attributes
    ----------
    model:
        Cost model type.
    startup, shutdown:
        Startup / shutdown costs (kept for file round-tripping).
    coefficients:
        Polynomial coefficients ``c_n, ..., c_1, c_0`` in MATPOWER order
        (highest degree first, cost in $/h for power in MW), or the
        flattened ``(x0, y0, x1, y1, ...)`` breakpoints for piecewise-linear
        curves.
    """

    model: CostModel = CostModel.POLYNOMIAL
    startup: float = 0.0
    shutdown: float = 0.0
    coefficients: Sequence[float] = field(default_factory=lambda: (0.0, 0.0, 0.0))

    def __post_init__(self) -> None:
        self.model = CostModel(int(self.model))
        self.coefficients = tuple(float(c) for c in self.coefficients)

    def as_quadratic(self) -> tuple[float, float, float]:
        """Return (c2, c1, c0) such that cost(p_MW) ~ c2 p^2 + c1 p + c0.

        Polynomial curves of degree <= 2 are returned exactly; higher-degree
        polynomials are truncated to their quadratic, linear, and constant
        terms (degrees above 2 are rare in practice and never appear in the
        paper's cases).  Piecewise-linear curves are fitted in the
        least-squares sense through their breakpoints.
        """
        if self.model == CostModel.POLYNOMIAL:
            coeffs = list(self.coefficients)
            # MATPOWER order: highest degree first.
            while len(coeffs) < 3:
                coeffs.insert(0, 0.0)
            c0 = coeffs[-1]
            c1 = coeffs[-2]
            c2 = coeffs[-3]
            return float(c2), float(c1), float(c0)
        # Piecewise linear: breakpoints (x0, y0, x1, y1, ...).
        xs = list(self.coefficients[0::2])
        ys = list(self.coefficients[1::2])
        if len(xs) < 2:
            return 0.0, 0.0, (ys[0] if ys else 0.0)
        import numpy as np

        a = np.vstack([np.square(xs), xs, np.ones(len(xs))]).T
        sol, *_ = np.linalg.lstsq(a, np.asarray(ys, dtype=float), rcond=None)
        return float(sol[0]), float(sol[1]), float(sol[2])


@dataclass
class Branch:
    """A transmission line or transformer between two buses.

    Attributes
    ----------
    from_bus, to_bus:
        External bus numbers of the two terminals.
    r, x:
        Series resistance / reactance in pu.
    b:
        Total line charging susceptance in pu.
    rate_a:
        Long-term MVA rating; 0 means unlimited (MATPOWER convention).
    tap:
        Transformer off-nominal turns ratio magnitude; 0 means a ratio of 1.
    shift:
        Phase-shift angle in degrees.
    status:
        0/1 in-service flag.
    angmin, angmax:
        Angle-difference limits in degrees (the paper disables the
        automatically tightened variants, so these are informational).
    """

    from_bus: int
    to_bus: int
    r: float = 0.0
    x: float = 0.01
    b: float = 0.0
    rate_a: float = 0.0
    rate_b: float = 0.0
    rate_c: float = 0.0
    tap: float = 0.0
    shift: float = 0.0
    status: int = 1
    angmin: float = -360.0
    angmax: float = 360.0

    @property
    def in_service(self) -> bool:
        return self.status > 0

    @property
    def turns_ratio(self) -> float:
        """Effective turns-ratio magnitude (MATPOWER treats 0 as 1)."""
        return self.tap if self.tap not in (0, 0.0) else 1.0
