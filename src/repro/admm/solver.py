"""Two-level ADMM driver (Algorithm 1 of the paper).

``AdmmSolver`` holds the immutable component layout of one case and runs the
two-level loop:

* the **inner loop** is one ADMM pass over the component blocks — generators
  and branches (parallel, lines 3 of Algorithm 1), buses (line 4), the
  artificial variable ``z`` (line 5), and the multiplier ``y`` (line 6) —
  repeated until the ADMM residuals meet the (outer-iteration-dependent)
  inner tolerance;
* the **outer loop** updates the multiplier ``λ`` and penalty ``β`` on the
  ``z = 0`` constraint and stops once ``‖z‖_∞`` is small (line 9).

Warm starting (the paper's tracking mode) re-enters the same loop from the
final state of a previous solve instead of the cold-start state.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.admm.artificial import (
    update_artificial_variables,
    update_multipliers,
    update_outer_level,
)
from repro.admm.branch_update import update_branches
from repro.admm.bus_update import update_buses
from repro.admm.data import ComponentData
from repro.admm.generator_update import update_generators
from repro.admm.parameters import AdmmParameters, parameters_for_case
from repro.admm.penalty import apply_residual_balancing, scenario_penalties
from repro.admm.residuals import compute_residuals
from repro.admm.state import AdmmState, cold_start_state
from repro.analysis.metrics import SolutionMetrics, constraint_violation
from repro.grid.network import Network
from repro.logging_utils import get_logger
from repro.parallel.backends import get_backend
from repro.parallel.compaction import Workspace
from repro.parallel.device import SimulatedDevice

LOGGER = get_logger("admm")


@dataclass
class AdmmIterationLog:
    """Per-outer-iteration summary kept in the solution for inspection."""

    outer_iteration: int
    inner_iterations: int
    primal_residual: float
    dual_residual: float
    z_norm: float
    beta: float


@dataclass
class AdmmSolution:
    """Result of one ADMM solve."""

    network_name: str
    vm: np.ndarray
    va: np.ndarray
    pg: np.ndarray
    qg: np.ndarray
    objective: float
    metrics: SolutionMetrics
    converged: bool
    outer_iterations: int
    inner_iterations: int
    solve_seconds: float
    state: AdmmState
    iteration_log: list[AdmmIterationLog] = field(default_factory=list)
    #: The penalties in force when the solve stopped — the fixed Table-I
    #: values normally, the adapted ones under ``adaptive_rho`` (what the
    #: tracking pipeline's ρ-cache records to seed the next period).
    rho_pq: float | None = None
    rho_va: float | None = None

    @property
    def max_constraint_violation(self) -> float:
        """The paper's ‖c(x)‖∞ for the reported solution."""
        return self.metrics.max_violation


class AdmmSolver:
    """Reusable component-based two-level ADMM solver for one network."""

    def __init__(self, network: Network, params: AdmmParameters | None = None,
                 device: SimulatedDevice | None = None) -> None:
        self.network = network
        self.params = params if params is not None else parameters_for_case(network)
        self.params.validate()
        self.data = ComponentData.from_network(network, self.params)
        self.backend = get_backend(self.params.kernel_backend)
        self.device = device or SimulatedDevice()
        self.device.backend = self.backend.name
        self.workspace = Workspace()
        self.last_state: AdmmState | None = None
        self._initial_rho = dict(self.data.rho)

    # ------------------------------------------------------------------ #
    def solve(self, warm_start: AdmmState | None = None,
              time_limit: float | None = None) -> AdmmSolution:
        """Run Algorithm 1 from cold start or from a warm-start state."""
        params = self.params
        data = self.data
        device = self.device
        start = time.perf_counter()

        if params.adaptive_rho:
            # Each solve adapts ρ from the configured starting point; without
            # this reset a reused solver would drift across repeated solves.
            data.rho = dict(self._initial_rho)

        if warm_start is None:
            state = cold_start_state(data)
        else:
            state = warm_start.copy()
            state.outer_iteration = 0
            state.total_inner_iterations = 0
            state.beta = params.beta_init

        previous_z_norm = max(state.z_norm(), 1.0)
        iteration_log: list[AdmmIterationLog] = []
        converged = False
        total_inner = 0

        for outer in range(1, params.max_outer + 1):
            state.outer_iteration = outer
            inner_tol = params.inner_tolerance(outer)
            residual = None

            for inner in range(1, params.max_inner + 1):
                device.launch("generator_update", update_generators, data, state,
                              elements=data.n_gen, backend=self.backend)
                device.launch("branch_update", update_branches, data, state, params.tron,
                              elements=data.n_branch, workspace=self.workspace,
                              backend=self.backend)
                device.launch("bus_update", update_buses, data, state,
                              elements=data.n_bus, backend=self.backend)
                device.launch("z_update", update_artificial_variables, data, state,
                              elements=data.n_coupling)
                primal = device.launch("multiplier_update", update_multipliers, data, state,
                                       elements=data.n_coupling)
                residual = compute_residuals(data, state, primal)
                total_inner += 1

                if (inner >= params.min_inner_iterations
                        and residual.converged(max(inner_tol, params.inner_tol_primal),
                                               max(inner_tol, params.inner_tol_dual))):
                    break
                if time_limit is not None and time.perf_counter() - start > time_limit:
                    break
                if (params.adaptive_rho and inner < params.max_inner
                        and inner % params.adaptive_rho_interval == 0):
                    apply_residual_balancing(
                        data, state, range(1), residual.primal_norms,
                        residual.dual_norms, params)

            previous_z_norm = update_outer_level(data, state, previous_z_norm,
                                                 backend=self.backend)
            iteration_log.append(AdmmIterationLog(
                outer_iteration=outer, inner_iterations=inner,
                primal_residual=residual.primal_norm if residual else float("nan"),
                dual_residual=residual.dual_norm if residual else float("nan"),
                z_norm=previous_z_norm, beta=state.beta))
            if params.verbose:
                LOGGER.info("outer %2d: inner=%4d primal=%.3e dual=%.3e |z|=%.3e beta=%.1e",
                            outer, inner, residual.primal_norm, residual.dual_norm,
                            previous_z_norm, state.beta)

            if previous_z_norm <= params.outer_tol:
                converged = True
                break
            if time_limit is not None and time.perf_counter() - start > time_limit:
                break

        state.total_inner_iterations = total_inner
        self.last_state = state
        elapsed = time.perf_counter() - start
        return self._build_solution(state, converged, total_inner, elapsed, iteration_log)

    # ------------------------------------------------------------------ #
    def _build_solution(self, state: AdmmState, converged: bool, total_inner: int,
                        elapsed: float, iteration_log: list[AdmmIterationLog]) -> AdmmSolution:
        """Extract the reported solution (paper Section IV-A conventions)."""
        network = self.network
        data = self.data

        vm = np.sqrt(np.maximum(state.w, 1e-12))
        va = state.theta - state.theta[network.ref_bus]

        pg_full = np.zeros(network.n_gen)
        qg_full = np.zeros(network.n_gen)
        pg_full[data.gen_index] = state.pg
        qg_full[data.gen_index] = state.qg

        metrics = constraint_violation(network, vm, va, pg_full, qg_full)
        rho_pq, rho_va = scenario_penalties(data, 0)
        return AdmmSolution(
            network_name=network.name, vm=vm, va=va, pg=pg_full, qg=qg_full,
            objective=metrics.objective, metrics=metrics, converged=converged,
            outer_iterations=state.outer_iteration, inner_iterations=total_inner,
            solve_seconds=elapsed, state=state, iteration_log=iteration_log,
            rho_pq=rho_pq, rho_va=rho_va)


def solve_acopf_admm(network: Network, params: AdmmParameters | None = None,
                     warm_start: AdmmState | None = None,
                     device: SimulatedDevice | None = None,
                     time_limit: float | None = None) -> AdmmSolution:
    """One-shot convenience wrapper around :class:`AdmmSolver`."""
    solver = AdmmSolver(network, params=params, device=device)
    return solver.solve(warm_start=warm_start, time_limit=time_limit)
