"""Branch subproblem update (eq. (4) of the paper), solved with batched TRON.

Each branch owns six local variables

``u = (v_i, v_j, θ_i(ij), θ_j(ij), s_ij, s_ji)``

and minimises the augmented-Lagrangian objective consisting of

* consensus terms tying the four implied power flows to the bus-side copies,
* consensus terms tying ``v²`` and ``θ`` to the bus-side ``w`` and ``θ``,
* augmented-Lagrangian terms for the line-limit constraints
  ``p² + q² + s = 0`` with slack bounds ``s ∈ [−rate², 0]`` (only for rated
  branches; the multipliers λ̃ and penalty ρ̃ persist across ADMM iterations
  and are updated by a classic LANCELOT-style rule).

The objective, gradient, and Hessian are assembled fully vectorised over the
branch axis from the shared flow derivatives in
:mod:`repro.powerflow.branch_derivatives`, and the whole batch is solved by
the TRON solver — one simulated "thread block" per branch, exactly the
paper's ExaTron usage.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.admm.data import ComponentData
from repro.admm.state import AdmmState
from repro.parallel.backends import KernelBackend, get_backend
from repro.parallel.compaction import Workspace
from repro.powerflow.branch_derivatives import (
    quantity_value,
    quantity_value_grad,
    quantity_value_grad_hess,
)
from repro.tron.batch import solve_batch
from repro.tron.options import TronOptions

#: Index of each local variable inside the branch state vector.
VI, VJ, TI, TJ, SIJ, SJI = range(6)

#: Angle bounds used by the paper's formulation (1h).
ANGLE_BOUND = 2.0 * np.pi


@dataclass
class BranchObjective:
    """Batched objective of the branch subproblems for one ADMM iteration.

    The target of each consensus term is ``(bus-side value) − z`` so that the
    penalised quantity is exactly ``component value − bus value + z``.
    Implements the :class:`repro.tron.batch.BatchProblem` protocol.
    """

    data: ComponentData
    # consensus targets and multipliers (per branch)
    tgt_pij: np.ndarray
    tgt_qij: np.ndarray
    tgt_pji: np.ndarray
    tgt_qji: np.ndarray
    tgt_wi: np.ndarray
    tgt_ti: np.ndarray
    tgt_wj: np.ndarray
    tgt_tj: np.ndarray
    y_pij: np.ndarray
    y_qij: np.ndarray
    y_pji: np.ndarray
    y_qji: np.ndarray
    y_wi: np.ndarray
    y_ti: np.ndarray
    y_wj: np.ndarray
    y_tj: np.ndarray
    # line-limit augmented-Lagrangian state (zeroed for unrated branches)
    lam_sij: np.ndarray
    lam_sji: np.ndarray
    rho_tilde: np.ndarray
    # bounds
    lb: np.ndarray
    ub: np.ndarray
    # scratch arena: evaluation buffers (notably the (B, 6, 6) Hessian
    # accumulators) are reused across iterations instead of reallocated.
    # Callers that retain a gradient/Hessian across evaluations must copy
    # it (the TRON driver does); row-subset views never share the arena.
    workspace: Workspace | None = None
    # kernel backend executing the dense batched products; None resolves
    # the environment default at evaluation time.
    backend: KernelBackend | None = None

    # ------------------------------------------------------------------ #
    def _evaluate(self, u: np.ndarray, order: int) -> tuple:
        """Shared evaluation returning (f[, grad[, hess]]) depending on order.

        TRON asks for the objective, gradient, and Hessian of the same point
        through separate callbacks; a tiny one-entry cache keyed on the point
        bytes avoids recomputing the flow values three times.
        """
        cache = getattr(self, "_cache", None)
        key = (u.tobytes(), order)
        if cache is not None and cache[0] == key[0] and cache[1] >= order:
            return cache[2][:order + 1] if order < 2 else cache[2]
        result = self._evaluate_fresh(u, order)
        if cache is None or cache[1] <= order or cache[0] != key[0]:
            self._cache = (key[0], order, result)
        return result

    def _evaluate_fresh(self, u: np.ndarray, order: int) -> tuple:
        data = self.data
        rho = data.rho
        vi, vj, ti, tj = u[:, VI], u[:, VJ], u[:, TI], u[:, TJ]
        sij, sji = u[:, SIJ], u[:, SJI]
        batch = u.shape[0]
        ws = self.workspace
        kb = get_backend(self.backend)

        def scratch(key: str, shape: tuple) -> np.ndarray:
            """A zeroed accumulator, reused from the arena when one exists."""
            return ws.zeros(key, shape) if ws is not None else np.zeros(shape)

        def outer66(a: np.ndarray, b: np.ndarray) -> np.ndarray:
            """Batched outer product ``a bᵀ`` into a reused (B, 6, 6) buffer."""
            if ws is not None:
                return kb.batched_outer(a, b, out=ws.take("outer66", (batch, 6, 6)))
            return kb.batched_outer(a, b)

        flows = {}
        for name, coeff in zip(("pij", "qij", "pji", "qji"), data.quantities.as_tuple()):
            if order >= 2:
                flows[name] = quantity_value_grad_hess(coeff, vi, vj, ti, tj)
            elif order == 1:
                val, grad4 = quantity_value_grad(coeff, vi, vj, ti, tj)
                flows[name] = (val, grad4, None)
            else:
                flows[name] = (quantity_value(coeff, vi, vj, ti, tj), None, None)

        f = np.zeros(batch)
        grad = scratch("grad", (batch, 6)) if order >= 1 else None
        hess = scratch("hess", (batch, 6, 6)) if order >= 2 else None

        def add_term(c_val, c_grad6, c_hess66, a, b):
            """Add φ(c) = a·c + (b/2)·c² for a batched constraint c."""
            nonlocal f
            phi_prime = a + b * c_val
            f = f + a * c_val + 0.5 * b * c_val * c_val
            if grad is not None:
                grad[:] += phi_prime[:, None] * c_grad6
            if hess is not None:
                hess[:] += b[:, None, None] * outer66(c_grad6, c_grad6)
                if c_hess66 is not None:
                    hess[:] += phi_prime[:, None, None] * c_hess66

        def pad_flow(grad4, hess4):
            g6 = scratch("flow_g6", (batch, 6))
            g6[:, :4] = grad4
            h6 = None
            if hess is not None:
                h6 = scratch("flow_h66", (batch, 6, 6))
                h6[:, :4, :4] = hess4
            return g6, h6

        # --- flow consensus terms ------------------------------------------
        for name, target, y in (("pij", self.tgt_pij, self.y_pij),
                                ("qij", self.tgt_qij, self.y_qij),
                                ("pji", self.tgt_pji, self.y_pji),
                                ("qji", self.tgt_qji, self.y_qji)):
            val, grad4, hess4 = flows[name]
            g6, h6 = pad_flow(grad4, hess4) if grad is not None else (None, None)
            c_val = val - target
            if grad is None:
                f = f + y * c_val + 0.5 * rho[name] * c_val * c_val
            else:
                add_term(c_val, g6, h6, y, np.full(batch, rho[name]))

        # --- voltage / angle consensus terms --------------------------------
        def add_simple(c_val, grad_index, extra_diag, a, b):
            """Consensus term whose constraint gradient is a single column."""
            nonlocal f
            phi_prime = a + b * c_val
            f = f + a * c_val + 0.5 * b * c_val * c_val
            if grad is not None:
                grad[:, grad_index] += phi_prime * extra_diag
            if hess is not None:
                hess[:, grad_index, grad_index] += b * extra_diag * extra_diag

        rho_wi = np.full(batch, rho["wi"])
        rho_wj = np.full(batch, rho["wj"])
        rho_ti = np.full(batch, rho["ti"])
        rho_tj = np.full(batch, rho["tj"])

        # w-type terms: c = v² − target, so ∇c = 2v e_v and ∇²c = 2 e_v e_vᵀ.
        c_wi = vi * vi - self.tgt_wi
        phi_wi = self.y_wi + rho_wi * c_wi
        f = f + self.y_wi * c_wi + 0.5 * rho_wi * c_wi * c_wi
        if grad is not None:
            grad[:, VI] += phi_wi * 2.0 * vi
        if hess is not None:
            hess[:, VI, VI] += rho_wi * 4.0 * vi * vi + 2.0 * phi_wi

        c_wj = vj * vj - self.tgt_wj
        phi_wj = self.y_wj + rho_wj * c_wj
        f = f + self.y_wj * c_wj + 0.5 * rho_wj * c_wj * c_wj
        if grad is not None:
            grad[:, VJ] += phi_wj * 2.0 * vj
        if hess is not None:
            hess[:, VJ, VJ] += rho_wj * 4.0 * vj * vj + 2.0 * phi_wj

        # θ-type terms: linear constraints.
        add_simple(ti - self.tgt_ti, TI, np.ones(batch), self.y_ti, rho_ti)
        add_simple(tj - self.tgt_tj, TJ, np.ones(batch), self.y_tj, rho_tj)

        # --- line-limit augmented-Lagrangian terms ---------------------------
        # c = p² + q² + s;  ∇c = 2p∇p + 2q∇q + e_s;  ∇²c = 2(∇p∇pᵀ + p∇²p + …).
        for (pname, qname, s, s_index, lam) in (
                ("pij", "qij", sij, SIJ, self.lam_sij),
                ("pji", "qji", sji, SJI, self.lam_sji)):
            p_val, p_grad4, p_hess4 = flows[pname]
            q_val, q_grad4, q_hess4 = flows[qname]
            c_val = p_val * p_val + q_val * q_val + s
            b = self.rho_tilde
            phi_prime = lam + b * c_val
            f = f + lam * c_val + 0.5 * b * c_val * c_val
            if grad is not None:
                c_grad6 = scratch("limit_g6", (batch, 6))
                c_grad6[:, :4] = 2.0 * p_val[:, None] * p_grad4 + 2.0 * q_val[:, None] * q_grad4
                c_grad6[:, s_index] = 1.0
                grad[:] += phi_prime[:, None] * c_grad6
                if hess is not None:
                    c_hess66 = scratch("limit_h66", (batch, 6, 6))
                    c_hess66[:, :4, :4] = 2.0 * (
                        kb.batched_outer(p_grad4, p_grad4) + p_val[:, None, None] * p_hess4
                        + kb.batched_outer(q_grad4, q_grad4) + q_val[:, None, None] * q_hess4)
                    hess[:] += b[:, None, None] * outer66(c_grad6, c_grad6)
                    hess[:] += phi_prime[:, None, None] * c_hess66

        if order == 0:
            return (f,)
        if order == 1:
            return f, grad
        return f, grad, hess

    # BatchProblem protocol -------------------------------------------------
    def objective(self, u: np.ndarray) -> np.ndarray:
        return self._evaluate(u, order=0)[0]

    def gradient(self, u: np.ndarray) -> np.ndarray:
        return self._evaluate(u, order=1)[1]

    def hessian(self, u: np.ndarray) -> np.ndarray:
        return self._evaluate(u, order=2)[2]

    def select(self, index: int) -> "BranchObjective":
        """One-branch view for the loop TRON backend's single-row evaluation."""
        return self.select_rows(np.array([index]))

    def select_rows(self, indices: np.ndarray) -> "BranchObjective":
        """Packed row-subset view (stream compaction in the TRON driver).

        The view deliberately carries no workspace: subset shapes change
        from call to call, and the packed evaluations must never overwrite
        buffers the full-batch callbacks handed out.
        """
        indices = np.asarray(indices, dtype=int)
        rho = {group: (value if np.ndim(value) == 0 else value[indices])
               for group, value in self.data.rho.items()
               if group not in ("gp", "gq")}
        view = _BranchDataView(
            quantities=self.data.quantities.take(indices),
            rho=rho,
            branch_has_limit=self.data.branch_has_limit[indices])
        return BranchObjective(
            data=view,
            tgt_pij=self.tgt_pij[indices], tgt_qij=self.tgt_qij[indices],
            tgt_pji=self.tgt_pji[indices], tgt_qji=self.tgt_qji[indices],
            tgt_wi=self.tgt_wi[indices], tgt_ti=self.tgt_ti[indices],
            tgt_wj=self.tgt_wj[indices], tgt_tj=self.tgt_tj[indices],
            y_pij=self.y_pij[indices], y_qij=self.y_qij[indices],
            y_pji=self.y_pji[indices], y_qji=self.y_qji[indices],
            y_wi=self.y_wi[indices], y_ti=self.y_ti[indices],
            y_wj=self.y_wj[indices], y_tj=self.y_tj[indices],
            lam_sij=self.lam_sij[indices], lam_sji=self.lam_sji[indices],
            rho_tilde=self.rho_tilde[indices],
            lb=self.lb[indices], ub=self.ub[indices],
            backend=self.backend)

    def limit_residuals(self, u: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Line-limit constraint residuals (zero for unrated branches)."""
        data = self.data
        vi, vj, ti, tj = u[:, VI], u[:, VJ], u[:, TI], u[:, TJ]
        flows = {}
        for name, coeff in zip(("pij", "qij", "pji", "qji"), data.quantities.as_tuple()):
            flows[name] = quantity_value(coeff, vi, vj, ti, tj)
        limited = data.branch_has_limit
        c_ij = np.where(limited, flows["pij"] ** 2 + flows["qij"] ** 2 + u[:, SIJ], 0.0)
        c_ji = np.where(limited, flows["pji"] ** 2 + flows["qji"] ** 2 + u[:, SJI], 0.0)
        return c_ij, c_ji


@dataclass
class _BranchDataView:
    """The slice of :class:`ComponentData` a sliced branch objective needs."""

    quantities: object
    rho: dict
    branch_has_limit: np.ndarray


def build_branch_objective(data: ComponentData, state: AdmmState,
                           workspace: Workspace | None = None,
                           backend: KernelBackend | None = None) -> BranchObjective:
    """Assemble the batched branch objective for the current ADMM iteration."""
    f = data.branch_from
    t = data.branch_to
    limited = data.branch_has_limit.astype(float)

    rate_sq = np.where(data.branch_has_limit, data.branch_rate_sq, 0.0)
    lb = np.column_stack([
        data.branch_vi_min, data.branch_vj_min,
        np.full(data.n_branch, -ANGLE_BOUND), np.full(data.n_branch, -ANGLE_BOUND),
        -rate_sq, -rate_sq])
    ub = np.column_stack([
        data.branch_vi_max, data.branch_vj_max,
        np.full(data.n_branch, ANGLE_BOUND), np.full(data.n_branch, ANGLE_BOUND),
        np.zeros(data.n_branch), np.zeros(data.n_branch)])

    return BranchObjective(
        data=data,
        tgt_pij=state.pij_copy - state.z["pij"],
        tgt_qij=state.qij_copy - state.z["qij"],
        tgt_pji=state.pji_copy - state.z["pji"],
        tgt_qji=state.qji_copy - state.z["qji"],
        tgt_wi=state.w[f] - state.z["wi"],
        tgt_ti=state.theta[f] - state.z["ti"],
        tgt_wj=state.w[t] - state.z["wj"],
        tgt_tj=state.theta[t] - state.z["tj"],
        y_pij=state.y["pij"], y_qij=state.y["qij"],
        y_pji=state.y["pji"], y_qji=state.y["qji"],
        y_wi=state.y["wi"], y_ti=state.y["ti"],
        y_wj=state.y["wj"], y_tj=state.y["tj"],
        lam_sij=state.lam_sij * limited,
        lam_sji=state.lam_sji * limited,
        rho_tilde=state.rho_tilde * limited,
        lb=lb, ub=ub, workspace=workspace, backend=backend)


def update_branches(data: ComponentData, state: AdmmState,
                    tron_options: TronOptions | None = None,
                    workspace: Workspace | None = None,
                    backend: KernelBackend | None = None) -> dict[str, float]:
    """Solve all branch subproblems and update the branch state in place.

    Returns a small info dictionary (TRON iterations, line-limit violation)
    used by the solver's logging.  ``backend`` selects the kernel backend
    for the objective's dense products, the TRON driver, and the
    per-scenario reductions; ``None`` resolves the environment default.
    """
    params = data.params
    tron_options = tron_options or params.tron
    backend = get_backend(backend)
    segment_max = backend.segment_max
    objective = build_branch_objective(data, state, workspace=workspace,
                                       backend=backend)

    u = np.column_stack([state.vi, state.vj, state.ti, state.tj, state.sij, state.sji])
    limited = data.branch_has_limit
    segments = data.group_scenarios("pij")
    n_scenarios = data.n_scenarios
    max_violation = 0.0
    tron_iterations = 0

    previous_violation = np.full(data.n_branch, np.inf)
    done = np.zeros(n_scenarios, dtype=bool)
    for iteration in range(max(1, params.auglag_max_iter)):
        result = solve_batch(objective, u, options=tron_options,
                             backend=params.tron_backend,
                             kernel_backend=backend)
        u_new = result.x
        tron_iterations += int(result.iterations.max()) if result.iterations.size else 0
        if iteration > 0 and done.any():
            # A scenario whose own augmented-Lagrangian loop has finished is
            # frozen: a standalone solve would have broken out already, so
            # later re-solves (driven by scenarios still iterating) must not
            # move its branch variables.
            u_new = np.where(done[segments][:, None], u, u_new)
        u = u_new

        c_ij, c_ji = objective.limit_residuals(u)
        violation = np.maximum(np.abs(c_ij), np.abs(c_ji))
        max_violation = float(violation.max()) if violation.size else 0.0
        # Scenarios are independent problems: whether a scenario's line-limit
        # multipliers advance may only depend on *its own* worst violation,
        # never on another scenario's (a global test would couple otherwise
        # independent trajectories).
        scenario_violation = segment_max(violation, segments, n_scenarios)
        needs_update = ~done & (scenario_violation > params.auglag_tol)
        done |= ~needs_update
        if not limited.any() or not needs_update.any():
            break

        # LANCELOT-style multiplier / penalty update (per branch), masked to
        # the scenarios whose own augmented-Lagrangian loop is still running.
        updating = limited & needs_update[segments]
        improved = violation <= 0.25 * previous_violation
        objective.lam_sij = np.where(
            updating, objective.lam_sij + objective.rho_tilde * c_ij, objective.lam_sij)
        objective.lam_sji = np.where(
            updating, objective.lam_sji + objective.rho_tilde * c_ji, objective.lam_sji)
        increase = updating & ~improved
        objective.rho_tilde = np.where(
            increase,
            np.minimum(objective.rho_tilde * params.auglag_penalty_factor,
                       params.auglag_penalty_max),
            objective.rho_tilde)
        previous_violation = np.where(updating, violation, previous_violation)
        # The multipliers changed, so cached evaluations are stale.
        objective._cache = None

    # Persist branch variables and the augmented-Lagrangian state.
    state.vi, state.vj = u[:, VI].copy(), u[:, VJ].copy()
    state.ti, state.tj = u[:, TI].copy(), u[:, TJ].copy()
    state.sij, state.sji = u[:, SIJ].copy(), u[:, SJI].copy()
    state.lam_sij = np.where(limited, objective.lam_sij, state.lam_sij)
    state.lam_sji = np.where(limited, objective.lam_sji, state.lam_sji)
    state.rho_tilde = np.where(limited, objective.rho_tilde, state.rho_tilde)
    state.refresh_flows(data)

    return {"tron_iterations": float(tron_iterations),
            "line_limit_residual": max_violation}
