"""Primal / dual residuals and termination tests of the inner ADMM loop."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.admm.data import COUPLING_GROUPS, ComponentData
from repro.admm.state import AdmmState


@dataclass(frozen=True)
class ResidualInfo:
    """Scalar residual summary of one inner iteration."""

    primal_norm: float
    dual_norm: float
    primal_max: float

    def converged(self, tol_primal: float, tol_dual: float) -> bool:
        return self.primal_norm <= tol_primal and self.dual_norm <= tol_dual


def compute_residuals(data: ComponentData, state: AdmmState,
                      primal: dict[str, np.ndarray]) -> ResidualInfo:
    """Summarise the inner-iteration residuals.

    ``primal`` is the per-group ``r + z`` returned by the multiplier update.
    The dual residual follows the standard ADMM estimate: the change in the
    bus-side (second block) values between consecutive iterations scaled by
    the penalty of the constraints they appear in.  Both residuals are
    reported *relative* (Boyd et al., §3.3.1): the primal one relative to the
    magnitude of the coupled quantities, the dual one relative to the
    magnitude of the multipliers, so that the same tolerances work across the
    wide range of penalty values in Table I.
    """
    n = sum(v.size for v in primal.values())
    primal_sq = sum(float(np.dot(v, v)) for v in primal.values())
    primal_max = max((float(np.max(np.abs(v))) if v.size else 0.0) for v in primal.values())

    bus_values = state.bus_side_values()
    value_sq = sum(float(np.dot(v, v)) for v in bus_values.values())
    primal_scale = max(1.0, np.sqrt(value_sq / max(n, 1)))
    primal_norm = np.sqrt(primal_sq / max(n, 1)) / primal_scale

    dual_sq = 0.0
    y_sq = 0.0
    for group in COUPLING_GROUPS:
        y_sq += float(np.dot(state.y[group], state.y[group]))
        previous = state.previous_bus_values.get(group)
        if previous is None or previous.shape != bus_values[group].shape:
            continue
        diff = data.rho[group] * (bus_values[group] - previous)
        dual_sq += float(np.dot(diff, diff))
    dual_scale = max(1.0, np.sqrt(y_sq / max(n, 1)))
    dual_norm = np.sqrt(dual_sq / max(n, 1)) / dual_scale

    state.previous_bus_values = {k: v.copy() for k, v in bus_values.items()}
    return ResidualInfo(primal_norm=float(primal_norm), dual_norm=float(dual_norm),
                        primal_max=primal_max)
