"""Primal / dual residuals and termination tests of the inner ADMM loop.

All residual summaries are computed *per scenario*: the stacked arrays of a
scenario batch are reduced over each scenario's contiguous block, so every
scenario carries its own convergence test and frozen scenarios can drop out
of the stopping logic while the shared kernels keep running on the full
arrays.  A classic single-network solve is simply the one-scenario special
case — its scalars are bitwise identical to the pre-batching implementation
because each per-scenario reduction runs on the same contiguous memory the
global reduction used to see.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.admm.data import COUPLING_GROUPS, ComponentData
from repro.admm.state import AdmmState
from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class ResidualInfo:
    """Residual summary of one inner iteration.

    The scalar fields summarise the whole batch (worst scenario); the
    ``*_norms`` arrays hold one entry per scenario and drive the batched
    solver's per-scenario convergence masks.
    """

    primal_norm: float
    dual_norm: float
    primal_max: float
    primal_norms: np.ndarray = field(default_factory=lambda: np.zeros(0))
    dual_norms: np.ndarray = field(default_factory=lambda: np.zeros(0))

    def converged(self, tol_primal: float, tol_dual: float) -> bool:
        """Whether every scenario meets the tolerances."""
        return self.primal_norm <= tol_primal and self.dual_norm <= tol_dual

    def converged_mask(self, tol_primal, tol_dual) -> np.ndarray:
        """Per-scenario convergence mask (tolerances may be per-scenario)."""
        return ((self.primal_norms <= tol_primal)
                & (self.dual_norms <= tol_dual))


def _scenario_rho(data: ComponentData, group: str, scenario: int) -> float:
    """One scenario's penalty for a group, read from ``data.rho`` itself.

    ``data.rho`` is the single source of truth (callers may hand-tune it);
    within a scenario the per-element arrays are constant by construction,
    so the block's first entry is the scenario's value.  A block that is
    *not* constant (a hand-tuned array written without scenario structure)
    would silently corrupt the dual-residual scale — and desynchronise the
    adaptive-ρ updater, which rewrites whole blocks — so it is rejected.
    """
    rho = data.rho[group]
    if np.ndim(rho) == 0:
        return float(rho)
    block = rho[data.group_block(group, scenario)]
    if not block.size:
        return 0.0
    first = float(block[0])
    if float(np.max(block)) != first or float(np.min(block)) != first:
        raise ConfigurationError(
            f"data.rho[{group!r}] is not constant within scenario {scenario} "
            f"(spread [{float(np.min(block))}, {float(np.max(block))}]); "
            "per-scenario penalties must be written per whole scenario block")
    return first


def compute_residuals(data: ComponentData, state: AdmmState,
                      primal: dict[str, np.ndarray],
                      active: np.ndarray | None = None) -> ResidualInfo:
    """Summarise the inner-iteration residuals per scenario.

    ``active`` optionally masks which scenarios need their reductions at
    all: a frozen scenario's residuals never feed a convergence decision or
    a log line again, so its per-scenario loop body is skipped (the norms
    report zero).  The batched solver passes its not-yet-frozen mask here
    when frozen scenarios are still resident (i.e. before stream compaction
    removes them from the stacked arrays).

    ``primal`` is the per-group ``r + z`` returned by the multiplier update.
    The dual residual follows the standard ADMM estimate: the change in the
    bus-side (second block) values between consecutive iterations scaled by
    the penalty of the constraints they appear in.  Both residuals are
    reported *relative* (Boyd et al., §3.3.1): the primal one relative to the
    magnitude of the coupled quantities, the dual one relative to the
    magnitude of the multipliers, so that the same tolerances work across the
    wide range of penalty values in Table I.

    Scenario blocks are contiguous, so each per-scenario accumulation is the
    exact reduction a standalone solve of that scenario would perform — the
    convergence decisions (and hence iteration trajectories) of a batched
    solve match the sequential ones bit for bit.
    """
    n_scenarios = data.n_scenarios
    bus_values = state.bus_side_values()
    previous_all = state.previous_bus_values

    primal_norms = np.zeros(n_scenarios)
    dual_norms = np.zeros(n_scenarios)
    primal_maxes = np.zeros(n_scenarios)

    # Per-scenario contiguous-slice reductions, not a segment_sum over the
    # stacked arrays: ``np.dot`` on a scenario's block performs the same
    # floating-point accumulation a standalone solve would, which is what
    # keeps batched convergence decisions bit-for-bit sequential.  The
    # Python loop costs O(S) small dot products per iteration — negligible
    # next to the branch TRON solve for realistic batch sizes.
    for s in range(n_scenarios):
        if active is not None and not active[s]:
            continue
        n = 0
        primal_sq = 0.0
        primal_max = 0.0
        value_sq = 0.0
        dual_sq = 0.0
        y_sq = 0.0
        for group in COUPLING_GROUPS:
            v = primal[group][data.group_block(group, s)]
            n += v.size
            primal_sq += float(np.dot(v, v))
            primal_max = max(primal_max, float(np.max(np.abs(v))) if v.size else 0.0)
        for group in COUPLING_GROUPS:
            bv = bus_values[group][data.value_block(group, s)]
            value_sq += float(np.dot(bv, bv))
        for group in COUPLING_GROUPS:
            y = state.y[group][data.group_block(group, s)]
            y_sq += float(np.dot(y, y))
            previous = previous_all.get(group)
            if previous is None or previous.shape != bus_values[group].shape:
                continue
            block = data.value_block(group, s)
            diff = _scenario_rho(data, group, s) * (bus_values[group][block] - previous[block])
            dual_sq += float(np.dot(diff, diff))

        primal_scale = max(1.0, np.sqrt(value_sq / max(n, 1)))
        dual_scale = max(1.0, np.sqrt(y_sq / max(n, 1)))
        primal_norms[s] = np.sqrt(primal_sq / max(n, 1)) / primal_scale
        dual_norms[s] = np.sqrt(dual_sq / max(n, 1)) / dual_scale
        primal_maxes[s] = primal_max

    state.previous_bus_values = {k: v.copy() for k, v in bus_values.items()}
    return ResidualInfo(
        primal_norm=float(primal_norms.max()),
        dual_norm=float(dual_norms.max()),
        primal_max=float(primal_maxes.max()),
        primal_norms=primal_norms,
        dual_norms=dual_norms)
