"""Artificial-variable (z) and multiplier updates.

The artificial variable ``z`` (one entry per coupling constraint) is what
turns the plain component ADMM of Mhanna et al. into the two-level scheme of
Sun & Sun with convergence guarantees: the inner ADMM drives the coupling
residual ``r + z`` to zero while the outer augmented-Lagrangian level drives
``z`` itself to zero by updating its multiplier ``λ`` (here ``lz``) and
penalty ``β``.

All updates are element-wise closed forms (eq. (6) and (8) of the paper) —
one GPU thread per constraint in the paper's implementation.
"""

from __future__ import annotations

import numpy as np

from repro.admm.data import COUPLING_GROUPS, ComponentData
from repro.admm.state import AdmmState


def update_artificial_variables(data: ComponentData, state: AdmmState) -> None:
    """Closed-form z-update.

    For each constraint, ``z`` minimises
    ``lz·z + (β/2)z² + y·(r + z) + (ρ/2)(r + z)²`` with ``r`` the coupling
    residual evaluated at the freshly updated components and buses:

    ``z* = −(lz + y + ρ r) / (β + ρ)``.
    """
    residuals = state.coupling_residuals(data)
    beta = state.beta
    for group in COUPLING_GROUPS:
        rho = data.rho[group]
        state.z[group] = -(state.lz[group] + state.y[group] + rho * residuals[group]) / (beta + rho)


def update_multipliers(data: ComponentData, state: AdmmState) -> dict[str, np.ndarray]:
    """ADMM multiplier update ``y ← y + ρ (r + z)``.

    Returns the post-update constraint residuals ``r + z`` per group (they
    are also the primal residuals used by the inner termination test).
    """
    residuals = state.coupling_residuals(data)
    primal = {}
    for group in COUPLING_GROUPS:
        rho = data.rho[group]
        primal[group] = residuals[group] + state.z[group]
        state.y[group] = state.y[group] + rho * primal[group]
    return primal


def update_outer_level(data: ComponentData, state: AdmmState,
                       previous_z_norm: float) -> float:
    """Outer-level update of ``λ`` (projected) and ``β`` (geometric growth).

    ``λ ← Π[−bound, bound](λ + β z)``; ``β`` grows by ``beta_factor`` whenever
    ``‖z‖_∞`` failed to contract by ``beta_contraction``.  Returns the new
    ``‖z‖_∞``.
    """
    params = data.params
    bound = params.outer_multiplier_bound
    for group in COUPLING_GROUPS:
        state.lz[group] = np.clip(state.lz[group] + state.beta * state.z[group],
                                  -bound, bound)
    z_norm = state.z_norm()
    if z_norm > params.beta_contraction * previous_z_norm:
        state.beta = min(state.beta * params.beta_factor, params.beta_max)
    return z_norm
