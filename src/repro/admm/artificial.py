"""Artificial-variable (z) and multiplier updates.

The artificial variable ``z`` (one entry per coupling constraint) is what
turns the plain component ADMM of Mhanna et al. into the two-level scheme of
Sun & Sun with convergence guarantees: the inner ADMM drives the coupling
residual ``r + z`` to zero while the outer augmented-Lagrangian level drives
``z`` itself to zero by updating its multiplier ``λ`` (here ``lz``) and
penalty ``β``.

All updates are element-wise closed forms (eq. (6) and (8) of the paper) —
one GPU thread per constraint in the paper's implementation.  In a
scenario-stacked solve ``state.beta`` is a per-scenario array broadcast onto
each group's component axis, and the outer-level update runs under a
per-scenario mask: only scenarios whose inner ADMM just finished advance
their ``λ`` / ``β``, while the element-wise kernels keep sweeping the full
stacked arrays.
"""

from __future__ import annotations

import numpy as np

from repro.admm.data import COUPLING_GROUPS, ComponentData
from repro.admm.state import AdmmState
from repro.parallel.backends import KernelBackend, get_backend


def update_artificial_variables(data: ComponentData, state: AdmmState) -> None:
    """Closed-form z-update.

    For each constraint, ``z`` minimises
    ``lz·z + (β/2)z² + y·(r + z) + (ρ/2)(r + z)²`` with ``r`` the coupling
    residual evaluated at the freshly updated components and buses:

    ``z* = −(lz + y + ρ r) / (β + ρ)``.
    """
    residuals = state.coupling_residuals(data)
    for group in COUPLING_GROUPS:
        rho = data.rho[group]
        beta = data.per_element(state.beta, group)
        state.z[group] = -(state.lz[group] + state.y[group] + rho * residuals[group]) / (beta + rho)


def update_multipliers(data: ComponentData, state: AdmmState) -> dict[str, np.ndarray]:
    """ADMM multiplier update ``y ← y + ρ (r + z)``.

    Returns the post-update constraint residuals ``r + z`` per group (they
    are also the primal residuals used by the inner termination test).
    """
    residuals = state.coupling_residuals(data)
    primal = {}
    for group in COUPLING_GROUPS:
        rho = data.rho[group]
        primal[group] = residuals[group] + state.z[group]
        state.y[group] = state.y[group] + rho * primal[group]
    return primal


def update_outer_level(data: ComponentData, state: AdmmState,
                       previous_z_norm, active: np.ndarray | None = None,
                       backend: KernelBackend | None = None):
    """Outer-level update of ``λ`` (projected) and ``β`` (geometric growth).

    Per scenario: ``λ ← Π[−bound, bound](λ + β z)``; ``β`` grows by
    ``beta_factor`` whenever the scenario's ``‖z‖_∞`` failed to contract by
    ``beta_contraction``.  ``active`` masks which scenarios update (the
    batched solver advances a scenario's outer level only when *its* inner
    ADMM has converged); masked-out scenarios keep ``λ``, ``β``, and their
    previous ``‖z‖_∞`` untouched.

    Returns the new per-scenario ``‖z‖_∞`` — as a float when called with
    scalar state (the classic single-network path), as an array otherwise.
    """
    segment_max = get_backend(backend).segment_max
    params = data.params
    layout = data.scenario_layout
    n_scenarios = layout.n_scenarios
    scalar = (active is None and np.ndim(state.beta) == 0
              and np.ndim(previous_z_norm) == 0 and n_scenarios == 1)

    beta = np.broadcast_to(np.asarray(state.beta, dtype=float), (n_scenarios,))
    previous = np.broadcast_to(np.asarray(previous_z_norm, dtype=float), (n_scenarios,))
    mask = np.ones(n_scenarios, dtype=bool) if active is None else np.asarray(active, dtype=bool)

    bound = params.outer_multiplier_bound
    z_norms = np.zeros(n_scenarios)
    for group in COUPLING_GROUPS:
        segments = data.group_scenarios(group)
        beta_e = beta[segments]
        updated = np.clip(state.lz[group] + beta_e * state.z[group], -bound, bound)
        if active is None:
            state.lz[group] = updated
        else:
            state.lz[group] = np.where(mask[segments], updated, state.lz[group])
        z_norms = np.maximum(z_norms, segment_max(
            np.abs(state.z[group]), segments, n_scenarios))

    grow = mask & (z_norms > params.beta_contraction * previous)
    new_beta = np.where(grow, np.minimum(beta * params.beta_factor, params.beta_max), beta)
    new_previous = np.where(mask, z_norms, previous)

    if scalar:
        state.beta = float(new_beta[0])
        return float(new_previous[0])
    state.beta = new_beta
    return new_previous
