"""Iteration state of the two-level ADMM solver.

``AdmmState`` carries every array that changes during the iteration:
component variables, bus variables and their copies, coupling multipliers
``y``, artificial variables ``z``, outer multipliers ``lz`` (the paper's λ),
the outer penalty ``beta``, and the per-branch augmented-Lagrangian state for
the line-limit constraints.  Deep-copying the state is exactly the paper's
warm-start mechanism: a new solve started from the previous period's state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.admm.data import COUPLING_GROUPS, GROUP_AXIS, VALUE_AXIS, ComponentData
from repro.powerflow.branch_derivatives import all_flow_values


@dataclass
class AdmmState:
    """Mutable iteration state (see module docstring)."""

    # generator components
    pg: np.ndarray
    qg: np.ndarray

    # branch components (local voltage variables and line-limit slacks)
    vi: np.ndarray
    vj: np.ndarray
    ti: np.ndarray
    tj: np.ndarray
    sij: np.ndarray
    sji: np.ndarray
    # branch flows implied by the branch variables (cached after each update)
    pij: np.ndarray
    qij: np.ndarray
    pji: np.ndarray
    qji: np.ndarray

    # bus components: originals and copies of coupled quantities
    w: np.ndarray
    theta: np.ndarray
    pg_copy: np.ndarray
    qg_copy: np.ndarray
    pij_copy: np.ndarray
    qij_copy: np.ndarray
    pji_copy: np.ndarray
    qji_copy: np.ndarray

    # coupling multipliers / artificial variables / outer multipliers, per group
    y: dict[str, np.ndarray]
    z: dict[str, np.ndarray]
    lz: dict[str, np.ndarray]

    # per-branch augmented-Lagrangian state for line limits
    lam_sij: np.ndarray
    lam_sji: np.ndarray
    rho_tilde: np.ndarray

    # outer level (a float for a single-network solve, a per-scenario array
    # for scenario-stacked solves)
    beta: float | np.ndarray
    outer_iteration: int = 0
    total_inner_iterations: int = 0

    # bookkeeping for dual residuals (previous bus-side values)
    previous_bus_values: dict[str, np.ndarray] = field(default_factory=dict)

    def copy(self) -> "AdmmState":
        """Deep copy (used for warm starting and for snapshotting)."""
        return AdmmState(
            pg=self.pg.copy(), qg=self.qg.copy(),
            vi=self.vi.copy(), vj=self.vj.copy(), ti=self.ti.copy(), tj=self.tj.copy(),
            sij=self.sij.copy(), sji=self.sji.copy(),
            pij=self.pij.copy(), qij=self.qij.copy(),
            pji=self.pji.copy(), qji=self.qji.copy(),
            w=self.w.copy(), theta=self.theta.copy(),
            pg_copy=self.pg_copy.copy(), qg_copy=self.qg_copy.copy(),
            pij_copy=self.pij_copy.copy(), qij_copy=self.qij_copy.copy(),
            pji_copy=self.pji_copy.copy(), qji_copy=self.qji_copy.copy(),
            y={k: v.copy() for k, v in self.y.items()},
            z={k: v.copy() for k, v in self.z.items()},
            lz={k: v.copy() for k, v in self.lz.items()},
            lam_sij=self.lam_sij.copy(), lam_sji=self.lam_sji.copy(),
            rho_tilde=self.rho_tilde.copy(),
            beta=(self.beta.copy() if isinstance(self.beta, np.ndarray) else self.beta),
            outer_iteration=self.outer_iteration,
            total_inner_iterations=self.total_inner_iterations,
            previous_bus_values={k: v.copy() for k, v in self.previous_bus_values.items()},
        )

    # ------------------------------------------------------------------ #
    # Residuals of the coupling constraints                               #
    # ------------------------------------------------------------------ #
    def coupling_residuals(self, data: ComponentData) -> dict[str, np.ndarray]:
        """Residual ``r = (component value) − (bus-side value)`` per group."""
        f = data.branch_from
        t = data.branch_to
        return {
            "gp": self.pg - self.pg_copy,
            "gq": self.qg - self.qg_copy,
            "pij": self.pij - self.pij_copy,
            "qij": self.qij - self.qij_copy,
            "pji": self.pji - self.pji_copy,
            "qji": self.qji - self.qji_copy,
            "wi": self.vi ** 2 - self.w[f],
            "ti": self.ti - self.theta[f],
            "wj": self.vj ** 2 - self.w[t],
            "tj": self.tj - self.theta[t],
        }

    def bus_side_values(self) -> dict[str, np.ndarray]:
        """Current bus-owned values per group (used for dual residuals)."""
        return {
            "gp": self.pg_copy, "gq": self.qg_copy,
            "pij": self.pij_copy, "qij": self.qij_copy,
            "pji": self.pji_copy, "qji": self.qji_copy,
            "wi": self.w, "ti": self.theta, "wj": self.w, "tj": self.theta,
        }

    def z_norm(self) -> float:
        """Infinity norm of the stacked artificial variable ``z``."""
        return max((float(np.max(np.abs(v))) if v.size else 0.0) for v in self.z.values())

    def refresh_flows(self, data: ComponentData) -> None:
        """Recompute the branch flows implied by the branch variables."""
        self.pij, self.qij, self.pji, self.qji = all_flow_values(
            data.quantities, self.vi, self.vj, self.ti, self.tj)


def _axis_indices(data: ComponentData, keep: np.ndarray) -> dict[str, np.ndarray]:
    """Gather maps (per component axis) of the kept scenarios' blocks."""
    layout = data.scenario_layout
    return {axis: layout.element_indices(axis, keep)
            for axis in ("gen", "branch", "bus")}


def select_state_scenarios(data: ComponentData, state: AdmmState,
                           keep) -> AdmmState:
    """Pack the surviving scenarios' blocks of a stacked state.

    ``data`` is the *resident* layout the state is currently shaped for;
    the returned state is shaped for ``data.select_scenarios(keep)``.  Every
    block is copied verbatim (stream-compaction gather), so the packed
    state continues each surviving scenario's trajectory bit for bit.
    """
    keep = np.asarray(keep, dtype=int)
    idx = _axis_indices(data, keep)
    gens, branches, buses = idx["gen"], idx["branch"], idx["bus"]

    def per_group(values: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        return {group: values[group][idx[GROUP_AXIS[group]]]
                for group in COUPLING_GROUPS}

    beta = state.beta
    if isinstance(beta, np.ndarray) and beta.ndim > 0:
        beta = beta[keep]
    previous = {
        group: values[idx[VALUE_AXIS[group]]]
        for group, values in state.previous_bus_values.items()
        if group in VALUE_AXIS
        and values.shape[0] == getattr(data, f"n_{VALUE_AXIS[group]}")}
    return AdmmState(
        pg=state.pg[gens], qg=state.qg[gens],
        vi=state.vi[branches], vj=state.vj[branches],
        ti=state.ti[branches], tj=state.tj[branches],
        sij=state.sij[branches], sji=state.sji[branches],
        pij=state.pij[branches], qij=state.qij[branches],
        pji=state.pji[branches], qji=state.qji[branches],
        w=state.w[buses], theta=state.theta[buses],
        pg_copy=state.pg_copy[gens], qg_copy=state.qg_copy[gens],
        pij_copy=state.pij_copy[branches], qij_copy=state.qij_copy[branches],
        pji_copy=state.pji_copy[branches], qji_copy=state.qji_copy[branches],
        y=per_group(state.y), z=per_group(state.z), lz=per_group(state.lz),
        lam_sij=state.lam_sij[branches], lam_sji=state.lam_sji[branches],
        rho_tilde=state.rho_tilde[branches],
        beta=beta, outer_iteration=state.outer_iteration,
        total_inner_iterations=state.total_inner_iterations,
        previous_bus_values=previous,
    )


def scatter_state_scenarios(data: ComponentData, state: AdmmState,
                            sub_state: AdmmState, keep) -> None:
    """Write a packed state's blocks back into the resident stacked state.

    The inverse of :func:`select_state_scenarios`: scenario ``keep[k]`` of
    ``state`` receives block ``k`` of ``sub_state`` (in place).  Scenarios
    outside ``keep`` are untouched — exactly the frozen-at-snapshot
    semantics of stream compaction.
    """
    keep = np.asarray(keep, dtype=int)
    idx = _axis_indices(data, keep)
    gens, branches, buses = idx["gen"], idx["branch"], idx["bus"]

    for attr, rows in (("pg", gens), ("qg", gens),
                       ("pg_copy", gens), ("qg_copy", gens),
                       ("vi", branches), ("vj", branches),
                       ("ti", branches), ("tj", branches),
                       ("sij", branches), ("sji", branches),
                       ("pij", branches), ("qij", branches),
                       ("pji", branches), ("qji", branches),
                       ("pij_copy", branches), ("qij_copy", branches),
                       ("pji_copy", branches), ("qji_copy", branches),
                       ("lam_sij", branches), ("lam_sji", branches),
                       ("rho_tilde", branches),
                       ("w", buses), ("theta", buses)):
        getattr(state, attr)[rows] = getattr(sub_state, attr)
    for group in COUPLING_GROUPS:
        rows = idx[GROUP_AXIS[group]]
        state.y[group][rows] = sub_state.y[group]
        state.z[group][rows] = sub_state.z[group]
        state.lz[group][rows] = sub_state.lz[group]
    for group, values in sub_state.previous_bus_values.items():
        target = state.previous_bus_values.get(group)
        rows = idx[VALUE_AXIS[group]]
        if target is not None and values.shape[0] == rows.shape[0]:
            target[rows] = values
    if isinstance(state.beta, np.ndarray) and np.ndim(state.beta) > 0:
        state.beta[keep] = sub_state.beta


def cold_start_state(data: ComponentData) -> AdmmState:
    """Build the paper's cold-start state.

    Real and reactive generation and voltage magnitudes start at the midpoint
    of their bounds, angles at zero, power flows at the values implied by the
    initial voltages, multipliers and artificial variables at zero.
    """
    n_gen, n_branch, n_bus = data.n_gen, data.n_branch, data.n_bus

    pg = 0.5 * (data.gen_pmin + data.gen_pmax)
    qg = 0.5 * (data.gen_qmin + data.gen_qmax)

    vm_mid = data.bus_vm_mid
    vi = vm_mid[data.branch_from].copy()
    vj = vm_mid[data.branch_to].copy()
    ti = np.zeros(n_branch)
    tj = np.zeros(n_branch)
    pij, qij, pji, qji = all_flow_values(data.quantities, vi, vj, ti, tj)

    rate_sq = np.where(np.isfinite(data.branch_rate_sq), data.branch_rate_sq, 0.0)
    sij = np.where(data.branch_has_limit,
                   np.clip(-(pij ** 2 + qij ** 2), -rate_sq, 0.0), 0.0)
    sji = np.where(data.branch_has_limit,
                   np.clip(-(pji ** 2 + qji ** 2), -rate_sq, 0.0), 0.0)

    zeros = {g: np.zeros(data.group_length(g)) for g in COUPLING_GROUPS}

    state = AdmmState(
        pg=pg, qg=qg,
        vi=vi, vj=vj, ti=ti, tj=tj, sij=sij, sji=sji,
        pij=pij, qij=qij, pji=pji, qji=qji,
        w=vm_mid ** 2, theta=np.zeros(n_bus),
        pg_copy=pg.copy(), qg_copy=qg.copy(),
        pij_copy=pij.copy(), qij_copy=qij.copy(),
        pji_copy=pji.copy(), qji_copy=qji.copy(),
        y={g: v.copy() for g, v in zeros.items()},
        z={g: v.copy() for g, v in zeros.items()},
        lz={g: v.copy() for g, v in zeros.items()},
        lam_sij=np.zeros(n_branch), lam_sji=np.zeros(n_branch),
        rho_tilde=np.full(n_branch, data.params.auglag_penalty_init),
        beta=data.params.beta_init,
    )
    state.previous_bus_values = {k: v.copy() for k, v in state.bus_side_values().items()}
    return state
