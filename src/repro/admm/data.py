"""Structure-of-arrays component layout for the ADMM solver.

``ComponentData`` freezes everything about a case that does not change
between ADMM iterations: component index maps, bounds, cost coefficients,
branch admittance quantities, and the per-coupling-group penalty values.  The
iteration state (variables and multipliers) lives in
:class:`repro.admm.state.AdmmState`.

Coupling constraints are organised in ten groups, each a flat array over the
owning component axis:

========  ====================================  ==============  ==========
group     constraint (component − bus copy)      length          penalty
========  ====================================  ==============  ==========
``gp``    ``pg − pg_copy + z``                  active gens      rho_pq
``gq``    ``qg − qg_copy + z``                  active gens      rho_pq
``pij``   ``p_ij(branch) − p_ij_copy + z``      branches         rho_pq
``qij``   ``q_ij(branch) − q_ij_copy + z``      branches         rho_pq
``pji``   ``p_ji(branch) − p_ji_copy + z``      branches         rho_pq
``qji``   ``q_ji(branch) − q_ji_copy + z``      branches         rho_pq
``wi``    ``v_i² − w_i + z``                    branches         rho_va
``ti``    ``θ_i(branch) − θ_i + z``             branches         rho_va
``wj``    ``v_j² − w_j + z``                    branches         rho_va
``tj``    ``θ_j(branch) − θ_j + z``             branches         rho_va
========  ====================================  ==============  ==========
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.admm.parameters import AdmmParameters
from repro.grid.network import Network
from repro.powerflow.branch_derivatives import BranchQuantities, branch_quantities

#: Names of the coupling-constraint groups, in canonical order.
COUPLING_GROUPS = ("gp", "gq", "pij", "qij", "pji", "qji", "wi", "ti", "wj", "tj")

#: Groups penalised with ``rho_pq`` (the rest use ``rho_va``).
POWER_GROUPS = ("gp", "gq", "pij", "qij", "pji", "qji")


@dataclass
class ComponentData:
    """Immutable per-case data consumed by the ADMM update kernels."""

    network: Network
    params: AdmmParameters

    # generators (active only)
    gen_index: np.ndarray          # indices into the network generator axis
    gen_bus: np.ndarray
    gen_pmin: np.ndarray
    gen_pmax: np.ndarray
    gen_qmin: np.ndarray
    gen_qmax: np.ndarray
    gen_c2: np.ndarray
    gen_c1: np.ndarray
    gen_c0: np.ndarray

    # branches
    branch_from: np.ndarray
    branch_to: np.ndarray
    quantities: BranchQuantities
    branch_vi_min: np.ndarray
    branch_vi_max: np.ndarray
    branch_vj_min: np.ndarray
    branch_vj_max: np.ndarray
    branch_has_limit: np.ndarray
    branch_rate_sq: np.ndarray

    # buses
    bus_pd: np.ndarray
    bus_qd: np.ndarray
    bus_gs: np.ndarray
    bus_bs: np.ndarray
    bus_vm_mid: np.ndarray

    # penalties per coupling group
    rho: dict[str, float]

    @property
    def n_gen(self) -> int:
        return int(self.gen_bus.shape[0])

    @property
    def n_branch(self) -> int:
        return int(self.branch_from.shape[0])

    @property
    def n_bus(self) -> int:
        return int(self.bus_pd.shape[0])

    @property
    def n_coupling(self) -> int:
        """Total number of coupling constraints (2 per generator, 8 per branch)."""
        return 2 * self.n_gen + 8 * self.n_branch

    def group_length(self, group: str) -> int:
        """Number of constraints in one coupling group."""
        return self.n_gen if group in ("gp", "gq") else self.n_branch

    @classmethod
    def from_network(cls, network: Network, params: AdmmParameters) -> "ComponentData":
        """Build the solver-facing layout for a case."""
        params.validate()
        active = np.flatnonzero(network.gen_status)
        scale = params.objective_scale

        rho = {group: (params.rho_pq if group in POWER_GROUPS else params.rho_va)
               for group in COUPLING_GROUPS}

        quantities = branch_quantities(network)
        f = network.branch_from
        t = network.branch_to
        rate_sq = np.where(network.branch_has_limit,
                           network.branch_rate_a ** 2, np.inf)

        return cls(
            network=network,
            params=params,
            gen_index=active,
            gen_bus=network.gen_bus[active],
            gen_pmin=network.gen_pmin[active],
            gen_pmax=network.gen_pmax[active],
            gen_qmin=network.gen_qmin[active],
            gen_qmax=network.gen_qmax[active],
            gen_c2=network.gen_cost_c2[active] * scale,
            gen_c1=network.gen_cost_c1[active] * scale,
            gen_c0=network.gen_cost_c0[active] * scale,
            branch_from=f,
            branch_to=t,
            quantities=quantities,
            branch_vi_min=network.bus_vmin[f],
            branch_vi_max=network.bus_vmax[f],
            branch_vj_min=network.bus_vmin[t],
            branch_vj_max=network.bus_vmax[t],
            branch_has_limit=network.branch_has_limit.copy(),
            branch_rate_sq=rate_sq,
            bus_pd=network.bus_pd.copy(),
            bus_qd=network.bus_qd.copy(),
            bus_gs=network.bus_gs.copy(),
            bus_bs=network.bus_bs.copy(),
            bus_vm_mid=0.5 * (network.bus_vmin + network.bus_vmax),
            rho=rho,
        )

    def generation_cost(self, pg: np.ndarray) -> float:
        """Unscaled generation cost ($/h) of an active-generator dispatch."""
        scale = self.params.objective_scale
        return float(np.sum(self.gen_c2 * pg * pg + self.gen_c1 * pg + self.gen_c0) / scale)
