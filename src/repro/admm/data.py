"""Structure-of-arrays component layout for the ADMM solver.

``ComponentData`` freezes everything about a case that does not change
between ADMM iterations: component index maps, bounds, cost coefficients,
branch admittance quantities, and the per-coupling-group penalty values.  The
iteration state (variables and multipliers) lives in
:class:`repro.admm.state.AdmmState`.

Coupling constraints are organised in ten groups, each a flat array over the
owning component axis:

========  ====================================  ==============  ==========
group     constraint (component − bus copy)      length          penalty
========  ====================================  ==============  ==========
``gp``    ``pg − pg_copy + z``                  active gens      rho_pq
``gq``    ``qg − qg_copy + z``                  active gens      rho_pq
``pij``   ``p_ij(branch) − p_ij_copy + z``      branches         rho_pq
``qij``   ``q_ij(branch) − q_ij_copy + z``      branches         rho_pq
``pji``   ``p_ji(branch) − p_ji_copy + z``      branches         rho_pq
``qji``   ``q_ji(branch) − q_ji_copy + z``      branches         rho_pq
``wi``    ``v_i² − w_i + z``                    branches         rho_va
``ti``    ``θ_i(branch) − θ_i + z``             branches         rho_va
``wj``    ``v_j² − w_j + z``                    branches         rho_va
``tj``    ``θ_j(branch) − θ_j + z``             branches         rho_va
========  ====================================  ==============  ==========
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

import numpy as np

from repro.admm.parameters import AdmmParameters
from repro.exceptions import DimensionError
from repro.grid.network import Network
from repro.powerflow.branch_derivatives import BranchQuantities, branch_quantities
from repro.scenarios.layout import ScenarioLayout

#: Names of the coupling-constraint groups, in canonical order.
COUPLING_GROUPS = ("gp", "gq", "pij", "qij", "pji", "qji", "wi", "ti", "wj", "tj")

#: Groups penalised with ``rho_pq`` (the rest use ``rho_va``).
POWER_GROUPS = ("gp", "gq", "pij", "qij", "pji", "qji")

#: Component axis each coupling group's constraint array lives on.
GROUP_AXIS = {group: ("gen" if group in ("gp", "gq") else "branch")
              for group in COUPLING_GROUPS}

#: Component axis of each group's *bus-side* value array: the voltage /
#: angle groups are owned by buses (``w`` and ``θ`` are per-bus), the rest
#: share the constraint axis.
VALUE_AXIS = {group: ("bus" if group in ("wi", "ti", "wj", "tj") else GROUP_AXIS[group])
              for group in COUPLING_GROUPS}


@dataclass
class ComponentData:
    """Immutable per-case (or per-batch) data consumed by the ADMM kernels.

    Built either from a single network (:meth:`from_network`) or as the
    disjoint union of several independent scenarios
    (:meth:`from_scenarios`).  In the stacked case every component axis is
    the scenario-major concatenation of the per-scenario axes, bus indices
    are offset so scenarios never couple, ``rho`` holds per-element arrays
    (scenarios may sweep different penalties), and :attr:`layout` records
    the segment structure used by per-scenario reductions.  The update
    kernels are component-separable, so they run unchanged on stacked
    arrays — the batch axis is simply wider, exactly like filling unused
    thread blocks of the paper's GPU.
    """

    network: Network | None
    params: AdmmParameters

    # generators (active only)
    gen_index: np.ndarray          # indices into the network generator axis
    gen_bus: np.ndarray
    gen_pmin: np.ndarray
    gen_pmax: np.ndarray
    gen_qmin: np.ndarray
    gen_qmax: np.ndarray
    gen_c2: np.ndarray
    gen_c1: np.ndarray
    gen_c0: np.ndarray

    # branches
    branch_from: np.ndarray
    branch_to: np.ndarray
    quantities: BranchQuantities
    branch_vi_min: np.ndarray
    branch_vi_max: np.ndarray
    branch_vj_min: np.ndarray
    branch_vj_max: np.ndarray
    branch_has_limit: np.ndarray
    branch_rate_sq: np.ndarray

    # buses
    bus_pd: np.ndarray
    bus_qd: np.ndarray
    bus_gs: np.ndarray
    bus_bs: np.ndarray
    bus_vm_mid: np.ndarray

    # penalties per coupling group: scalars for a single network, per-element
    # arrays (over the group's component axis) for scenario-stacked data
    rho: dict[str, float | np.ndarray]

    # scenario segment structure (a trivial single-scenario layout for
    # ``from_network`` data); see :class:`repro.scenarios.layout.ScenarioLayout`
    layout: ScenarioLayout | None = None

    @property
    def n_gen(self) -> int:
        return int(self.gen_bus.shape[0])

    @property
    def n_branch(self) -> int:
        return int(self.branch_from.shape[0])

    @property
    def n_bus(self) -> int:
        return int(self.bus_pd.shape[0])

    @property
    def n_coupling(self) -> int:
        """Total number of coupling constraints (2 per generator, 8 per branch)."""
        return 2 * self.n_gen + 8 * self.n_branch

    def group_length(self, group: str) -> int:
        """Number of constraints in one coupling group."""
        return self.n_gen if group in ("gp", "gq") else self.n_branch

    # ------------------------------------------------------------------ #
    # Scenario structure                                                   #
    # ------------------------------------------------------------------ #
    @property
    def scenario_layout(self) -> ScenarioLayout:
        """The segment layout (built lazily for hand-constructed data)."""
        if self.layout is None:
            self.layout = ScenarioLayout.single(
                name=self.network.name if self.network is not None else "case",
                n_gen=self.n_gen, n_branch=self.n_branch, n_bus=self.n_bus,
                rho_pq=self.params.rho_pq, rho_va=self.params.rho_va,
                network=self.network)
        return self.layout

    @property
    def n_scenarios(self) -> int:
        return self.scenario_layout.n_scenarios

    def group_scenarios(self, group: str) -> np.ndarray:
        """Owning-scenario id of every element of one coupling group."""
        return self.scenario_layout.segments(GROUP_AXIS[group])

    def group_block(self, group: str, scenario: int) -> slice:
        """Contiguous slice of one scenario inside a group's constraint axis."""
        return self.scenario_layout.block(GROUP_AXIS[group], scenario)

    def value_block(self, group: str, scenario: int) -> slice:
        """Contiguous slice of one scenario inside a group's bus-side axis."""
        return self.scenario_layout.block(VALUE_AXIS[group], scenario)

    def per_element(self, per_scenario, group: str):
        """Broadcast per-scenario values onto a group's component axis."""
        if np.ndim(per_scenario) == 0:
            return per_scenario
        return np.asarray(per_scenario)[self.group_scenarios(group)]

    def select_scenarios(self, keep) -> "ComponentData":
        """Compacted data over the scenario subset ``keep`` (stream compaction).

        Every surviving scenario's block is copied verbatim, so the packed
        arrays are the scenario-major stack :meth:`from_scenarios` would have
        built for just those scenarios — the update kernels therefore produce
        bitwise-identical per-scenario results on the packed data.  Bus
        indices are re-based onto the packed bus axis.
        """
        keep = np.asarray(keep, dtype=int)
        layout = self.scenario_layout
        sub_layout = layout.select(keep)
        gen_idx = layout.element_indices("gen", keep)
        branch_idx = layout.element_indices("branch", keep)
        bus_idx = layout.element_indices("bus", keep)

        # Per-element shift moving each kept scenario's bus indices from its
        # resident block to its packed block.
        shift = sub_layout.bus_offsets[:-1] - layout.bus_offsets[keep]
        gen_shift = shift[sub_layout.gen_segments]
        branch_shift = shift[sub_layout.branch_segments]

        def take_group(group: str, value):
            if np.ndim(value) == 0:
                return value
            return value[gen_idx if GROUP_AXIS[group] == "gen" else branch_idx]

        return ComponentData(
            network=self.network,
            params=self.params,
            gen_index=self.gen_index[gen_idx],
            gen_bus=self.gen_bus[gen_idx] + gen_shift,
            gen_pmin=self.gen_pmin[gen_idx],
            gen_pmax=self.gen_pmax[gen_idx],
            gen_qmin=self.gen_qmin[gen_idx],
            gen_qmax=self.gen_qmax[gen_idx],
            gen_c2=self.gen_c2[gen_idx],
            gen_c1=self.gen_c1[gen_idx],
            gen_c0=self.gen_c0[gen_idx],
            branch_from=self.branch_from[branch_idx] + branch_shift,
            branch_to=self.branch_to[branch_idx] + branch_shift,
            quantities=self.quantities.take(branch_idx),
            branch_vi_min=self.branch_vi_min[branch_idx],
            branch_vi_max=self.branch_vi_max[branch_idx],
            branch_vj_min=self.branch_vj_min[branch_idx],
            branch_vj_max=self.branch_vj_max[branch_idx],
            branch_has_limit=self.branch_has_limit[branch_idx],
            branch_rate_sq=self.branch_rate_sq[branch_idx],
            bus_pd=self.bus_pd[bus_idx],
            bus_qd=self.bus_qd[bus_idx],
            bus_gs=self.bus_gs[bus_idx],
            bus_bs=self.bus_bs[bus_idx],
            bus_vm_mid=self.bus_vm_mid[bus_idx],
            rho={group: take_group(group, value) for group, value in self.rho.items()},
            layout=sub_layout,
        )

    @classmethod
    def from_network(cls, network: Network, params: AdmmParameters) -> "ComponentData":
        """Build the solver-facing layout for a case."""
        params.validate()
        active = np.flatnonzero(network.gen_status)
        scale = params.objective_scale

        rho = {group: (params.rho_pq if group in POWER_GROUPS else params.rho_va)
               for group in COUPLING_GROUPS}

        quantities = branch_quantities(network)
        f = network.branch_from
        t = network.branch_to
        rate_sq = np.where(network.branch_has_limit,
                           network.branch_rate_a ** 2, np.inf)

        return cls(
            network=network,
            params=params,
            gen_index=active,
            gen_bus=network.gen_bus[active],
            gen_pmin=network.gen_pmin[active],
            gen_pmax=network.gen_pmax[active],
            gen_qmin=network.gen_qmin[active],
            gen_qmax=network.gen_qmax[active],
            gen_c2=network.gen_cost_c2[active] * scale,
            gen_c1=network.gen_cost_c1[active] * scale,
            gen_c0=network.gen_cost_c0[active] * scale,
            branch_from=f,
            branch_to=t,
            quantities=quantities,
            branch_vi_min=network.bus_vmin[f],
            branch_vi_max=network.bus_vmax[f],
            branch_vj_min=network.bus_vmin[t],
            branch_vj_max=network.bus_vmax[t],
            branch_has_limit=network.branch_has_limit.copy(),
            branch_rate_sq=rate_sq,
            bus_pd=network.bus_pd.copy(),
            bus_qd=network.bus_qd.copy(),
            bus_gs=network.bus_gs.copy(),
            bus_bs=network.bus_bs.copy(),
            bus_vm_mid=0.5 * (network.bus_vmin + network.bus_vmax),
            rho=rho,
            layout=ScenarioLayout.single(
                name=network.name, n_gen=int(active.shape[0]),
                n_branch=network.n_branch, n_bus=network.n_bus,
                rho_pq=params.rho_pq, rho_va=params.rho_va, network=network),
        )

    @classmethod
    def from_scenarios(cls, networks: Sequence[Network], params: AdmmParameters,
                       penalties: Sequence[tuple[float, float]] | None = None,
                       names: Sequence[str] | None = None) -> "ComponentData":
        """Stack independent scenarios into one solver-facing layout.

        Each scenario's components are laid out exactly as
        :meth:`from_network` would (so every per-scenario block of the
        stacked arrays is bitwise identical to the standalone layout), then
        concatenated scenario-major with bus indices offset by the preceding
        scenarios' bus counts.  ``penalties`` optionally overrides
        ``(rho_pq, rho_va)`` per scenario — the stacked ``rho`` becomes a
        per-element array, piecewise constant over scenario blocks.

        Shared knobs (iteration limits, tolerances, the outer β schedule,
        TRON options) come from ``params`` for every scenario.
        """
        networks = list(networks)
        if not networks:
            raise DimensionError("from_scenarios needs at least one network")
        if penalties is None:
            penalties = [(params.rho_pq, params.rho_va)] * len(networks)
        if names is None:
            names = [net.name for net in networks]
        if len(penalties) != len(networks) or len(names) != len(networks):
            raise DimensionError(
                f"{len(networks)} networks but {len(penalties)} penalty pairs "
                f"and {len(names)} names")

        parts = [cls.from_network(net, replace(params, rho_pq=rho_pq, rho_va=rho_va))
                 for net, (rho_pq, rho_va) in zip(networks, penalties)]
        layout = ScenarioLayout.stack(
            networks, names,
            rho_pq=[p for p, _ in penalties], rho_va=[v for _, v in penalties],
            n_gen=[part.n_gen for part in parts])
        bus_offsets = layout.bus_offsets

        def cat(attr: str) -> np.ndarray:
            return np.concatenate([getattr(part, attr) for part in parts])

        def cat_offset(attr: str) -> np.ndarray:
            return np.concatenate([getattr(part, attr) + bus_offsets[s]
                                   for s, part in enumerate(parts)])

        rho = {group: np.concatenate([
            np.full(part.group_length(group), part.rho[group]) for part in parts])
            for group in COUPLING_GROUPS}

        return cls(
            network=None,
            params=params,
            # gen_index stays scenario-local: it indexes the owning network's
            # generator axis and is only ever used through scenario blocks.
            gen_index=cat("gen_index"),
            gen_bus=cat_offset("gen_bus"),
            gen_pmin=cat("gen_pmin"),
            gen_pmax=cat("gen_pmax"),
            gen_qmin=cat("gen_qmin"),
            gen_qmax=cat("gen_qmax"),
            gen_c2=cat("gen_c2"),
            gen_c1=cat("gen_c1"),
            gen_c0=cat("gen_c0"),
            branch_from=cat_offset("branch_from"),
            branch_to=cat_offset("branch_to"),
            quantities=BranchQuantities.concatenate([part.quantities for part in parts]),
            branch_vi_min=cat("branch_vi_min"),
            branch_vi_max=cat("branch_vi_max"),
            branch_vj_min=cat("branch_vj_min"),
            branch_vj_max=cat("branch_vj_max"),
            branch_has_limit=cat("branch_has_limit"),
            branch_rate_sq=cat("branch_rate_sq"),
            bus_pd=cat("bus_pd"),
            bus_qd=cat("bus_qd"),
            bus_gs=cat("bus_gs"),
            bus_bs=cat("bus_bs"),
            bus_vm_mid=cat("bus_vm_mid"),
            rho=rho,
            layout=layout,
        )

    def generation_cost(self, pg: np.ndarray) -> float:
        """Unscaled generation cost ($/h) of an active-generator dispatch."""
        scale = self.params.objective_scale
        return float(np.sum(self.gen_c2 * pg * pg + self.gen_c1 * pg + self.gen_c0) / scale)
