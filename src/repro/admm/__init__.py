"""Component-based two-level ADMM for ACOPF (the paper's core contribution).

The solver decomposes an ACOPF into generator, branch, and bus components
coupled only by consensus constraints (Section II of the paper), adds an
artificial variable ``z`` per coupling constraint to obtain the two-level
structure with convergence guarantees (Sun & Sun), and iterates

1. generator updates (closed form) and branch updates (batched TRON) —
   embarrassingly parallel across components;
2. bus updates (closed form equality-constrained QPs);
3. the artificial-variable update and the ADMM multiplier update;
4. outer-level multiplier / penalty updates driving ``‖z‖ → 0``.

Public entry points:

* :func:`~repro.admm.solver.solve_acopf_admm` — one-shot solve;
* :class:`~repro.admm.solver.AdmmSolver` — reusable solver object with warm
  start (used by the tracking driver);
* :class:`~repro.admm.parameters.AdmmParameters` — all tuning knobs.
"""

from repro.admm.batch_solver import (
    BatchAdmmSolver,
    ShardResult,
    ShardTask,
    extract_scenario_state,
    scenario_parameters,
    solve_acopf_admm_batch,
    solve_scenario_shard,
)
from repro.admm.parameters import (
    AdmmParameters,
    parameters_for_case,
    suggest_penalties,
)
from repro.admm.penalty import (
    apply_residual_balancing,
    balanced_penalties,
    scenario_penalties,
    seed_penalties,
)
from repro.admm.solver import AdmmSolution, AdmmSolver, solve_acopf_admm

__all__ = [
    "AdmmParameters",
    "parameters_for_case",
    "suggest_penalties",
    "apply_residual_balancing",
    "balanced_penalties",
    "scenario_penalties",
    "seed_penalties",
    "AdmmSolution",
    "AdmmSolver",
    "solve_acopf_admm",
    "BatchAdmmSolver",
    "ShardResult",
    "ShardTask",
    "solve_acopf_admm_batch",
    "solve_scenario_shard",
    "scenario_parameters",
    "extract_scenario_state",
]
