"""Closed-form bus update (eq. (7) of the paper).

Each bus owns its squared voltage magnitude ``w``, its angle ``θ``, and the
bus-side copies of every coupled quantity (generator injections and incident
branch flows).  Its subproblem is an equality-constrained QP with a diagonal
Hessian (built from the consensus penalty terms) and two equality constraints
(the real and reactive power balances (1b)–(1c)), so the KKT system reduces
to a 2×2 solve per bus:

``μ* = (A Q⁻¹ Aᵀ)⁻¹ (A Q⁻¹ c − b)``,   ``x* = Q⁻¹ (c − Aᵀ μ*)``.

Every accumulation below is a segment sum over generators or incident branch
ends, and every per-bus operation is element-wise — the paper launches one
GPU thread per bus.
"""

from __future__ import annotations

import numpy as np

from repro.admm.data import ComponentData
from repro.admm.state import AdmmState
from repro.parallel.backends import KernelBackend, get_backend


def update_buses(data: ComponentData, state: AdmmState,
                 backend: KernelBackend | None = None) -> None:
    """Solve every bus subproblem in closed form and update the state.

    ``backend`` selects the kernel backend for the segment reductions;
    ``None`` resolves the environment default (``REPRO_BACKEND``).
    """
    segment_sum = get_backend(backend).segment_sum
    n_bus = data.n_bus
    f = data.branch_from
    t = data.branch_to
    gen_bus = data.gen_bus

    rho_gp, rho_gq = data.rho["gp"], data.rho["gq"]
    rho_pij, rho_qij = data.rho["pij"], data.rho["qij"]
    rho_pji, rho_qji = data.rho["pji"], data.rho["qji"]
    rho_wi, rho_ti = data.rho["wi"], data.rho["ti"]
    rho_wj, rho_tj = data.rho["wj"], data.rho["tj"]

    # Linear coefficients c_v = rho * (component value + z) + y for every
    # bus-owned variable v (see module docstring).
    c_gp = rho_gp * (state.pg + state.z["gp"]) + state.y["gp"]
    c_gq = rho_gq * (state.qg + state.z["gq"]) + state.y["gq"]
    c_pij = rho_pij * (state.pij + state.z["pij"]) + state.y["pij"]
    c_qij = rho_qij * (state.qij + state.z["qij"]) + state.y["qij"]
    c_pji = rho_pji * (state.pji + state.z["pji"]) + state.y["pji"]
    c_qji = rho_qji * (state.qji + state.z["qji"]) + state.y["qji"]

    # w and θ gather one contribution per incident branch end.
    c_w = segment_sum(rho_wi * (state.vi ** 2 + state.z["wi"]) + state.y["wi"], f, n_bus)
    c_w += segment_sum(rho_wj * (state.vj ** 2 + state.z["wj"]) + state.y["wj"], t, n_bus)
    q_w = segment_sum(np.full(f.shape, rho_wi), f, n_bus) \
        + segment_sum(np.full(t.shape, rho_wj), t, n_bus)

    c_theta = segment_sum(rho_ti * (state.ti + state.z["ti"]) + state.y["ti"], f, n_bus)
    c_theta += segment_sum(rho_tj * (state.tj + state.z["tj"]) + state.y["tj"], t, n_bus)
    q_theta = segment_sum(np.full(f.shape, rho_ti), f, n_bus) \
        + segment_sum(np.full(t.shape, rho_tj), t, n_bus)

    # Guard isolated buses (cannot occur in validated networks, but keep the
    # kernel total): give them a unit diagonal so the division is defined.
    q_w_safe = np.where(q_w > 0, q_w, 1.0)
    q_theta_safe = np.where(q_theta > 0, q_theta, 1.0)

    gs, bs = data.bus_gs, data.bus_bs

    # --- Schur complement S = A Q^{-1} A^T (2x2 per bus) ------------------
    s_pp = segment_sum(np.full(gen_bus.shape, 1.0 / rho_gp), gen_bus, n_bus) \
        + segment_sum(np.full(f.shape, 1.0 / rho_pij), f, n_bus) \
        + segment_sum(np.full(t.shape, 1.0 / rho_pji), t, n_bus) \
        + gs * gs / q_w_safe
    s_qq = segment_sum(np.full(gen_bus.shape, 1.0 / rho_gq), gen_bus, n_bus) \
        + segment_sum(np.full(f.shape, 1.0 / rho_qij), f, n_bus) \
        + segment_sum(np.full(t.shape, 1.0 / rho_qji), t, n_bus) \
        + bs * bs / q_w_safe
    s_pq = -gs * bs / q_w_safe

    # --- right-hand side A Q^{-1} c - b ------------------------------------
    rhs_p = segment_sum(c_gp / rho_gp, gen_bus, n_bus) \
        - segment_sum(c_pij / rho_pij, f, n_bus) \
        - segment_sum(c_pji / rho_pji, t, n_bus) \
        - gs * c_w / q_w_safe \
        - data.bus_pd
    rhs_q = segment_sum(c_gq / rho_gq, gen_bus, n_bus) \
        - segment_sum(c_qij / rho_qij, f, n_bus) \
        - segment_sum(c_qji / rho_qji, t, n_bus) \
        + bs * c_w / q_w_safe \
        - data.bus_qd

    det = s_pp * s_qq - s_pq * s_pq
    det_safe = np.where(np.abs(det) > 1e-300, det, 1.0)
    mu_p = (s_qq * rhs_p - s_pq * rhs_q) / det_safe
    mu_q = (s_pp * rhs_q - s_pq * rhs_p) / det_safe

    # --- recover the bus-owned variables -----------------------------------
    state.pg_copy = (c_gp - mu_p[gen_bus]) / rho_gp
    state.qg_copy = (c_gq - mu_q[gen_bus]) / rho_gq
    state.pij_copy = (c_pij + mu_p[f]) / rho_pij
    state.qij_copy = (c_qij + mu_q[f]) / rho_qij
    state.pji_copy = (c_pji + mu_p[t]) / rho_pji
    state.qji_copy = (c_qji + mu_q[t]) / rho_qji
    state.w = (c_w + gs * mu_p - bs * mu_q) / q_w_safe
    state.theta = c_theta / q_theta_safe
