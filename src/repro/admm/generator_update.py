"""Closed-form generator update (eq. (6) of the paper).

Each generator solves, independently of every other component,

``min_{pg ∈ [p̲, p̄]}  f_g(pg) + y (pg − pg_copy + z) + (ρ/2)(pg − pg_copy + z)²``

and the analogous problem in ``qg`` (which carries no cost term).  With
quadratic costs the unconstrained minimiser is available in closed form and
the bound constraint is a projection — one GPU thread per generator in the
paper, one vectorised kernel here.
"""

from __future__ import annotations

import numpy as np

from repro.admm.data import ComponentData
from repro.admm.state import AdmmState
from repro.parallel.backends import KernelBackend, get_backend
from repro.parallel.kernels import elementwise_kernel


@elementwise_kernel
def generator_kernel(pg_copy: np.ndarray, qg_copy: np.ndarray,
                     z_p: np.ndarray, z_q: np.ndarray,
                     y_p: np.ndarray, y_q: np.ndarray,
                     c2: np.ndarray, c1: np.ndarray,
                     pmin: np.ndarray, pmax: np.ndarray,
                     qmin: np.ndarray, qmax: np.ndarray,
                     rho_p: np.ndarray, rho_q: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Element-wise closed-form update of (pg, qg) for every generator."""
    pg = (rho_p * (pg_copy - z_p) - y_p - c1) / (2.0 * c2 + rho_p)
    qg = qg_copy - z_q - y_q / rho_q
    return np.clip(pg, pmin, pmax), np.clip(qg, qmin, qmax)


def update_generators(data: ComponentData, state: AdmmState,
                      backend: KernelBackend | None = None) -> None:
    """Launch the generator kernel on the active backend, update the state.

    The penalties are broadcast to per-generator arrays so the launch is a
    pure element-wise sweep over aligned arrays (scalar and per-element rho
    multiply identically, so the broadcast is bitwise-neutral).
    """
    n_gen = state.pg_copy.shape[0]
    rho_p = np.broadcast_to(np.asarray(data.rho["gp"], dtype=float), (n_gen,))
    rho_q = np.broadcast_to(np.asarray(data.rho["gq"], dtype=float), (n_gen,))
    state.pg, state.qg = get_backend(backend).launch_over_elements(
        generator_kernel,
        state.pg_copy, state.qg_copy,
        state.z["gp"], state.z["gq"],
        state.y["gp"], state.y["gq"],
        data.gen_c2, data.gen_c1,
        data.gen_pmin, data.gen_pmax,
        data.gen_qmin, data.gen_qmax,
        rho_p, rho_q,
    )
