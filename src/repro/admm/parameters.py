"""Tuning parameters of the two-level ADMM solver.

The paper fixes the consensus penalties per case family (Table I): ``rho_pq``
acts on the power-type coupling constraints (generator injections and branch
power flows) and ``rho_va`` on the voltage-type ones (squared magnitudes and
angles).  The outer (augmented-Lagrangian) level follows Sun & Sun: penalty
``beta`` grows geometrically whenever ``‖z‖`` fails to contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ConfigurationError
from repro.grid.network import Network
from repro.tron.options import TronOptions

#: Penalty values published in Table I of the paper, keyed by case name.
PAPER_PENALTIES: dict[str, tuple[float, float]] = {
    "1354pegase": (1e1, 1e3),
    "2869pegase": (1e1, 1e3),
    "9241pegase": (5e1, 5e3),
    "13659pegase": (5e1, 5e3),
    "ACTIVSg25k": (3e3, 3e4),
    "ACTIVSg70k": (3e4, 3e5),
}


@dataclass
class AdmmParameters:
    """All knobs of :class:`~repro.admm.solver.AdmmSolver`.

    Attributes
    ----------
    rho_pq, rho_va:
        Consensus penalties for power-type and voltage-type coupling
        constraints (Table I of the paper).
    beta_init, beta_factor, beta_max:
        Outer-level penalty on ``z = 0``: initial value, growth factor
        applied when ``‖z‖`` does not contract by ``beta_contraction``, cap.
    beta_contraction:
        Required contraction factor of ``‖z‖_∞`` between outer iterations.
    outer_multiplier_bound:
        Box onto which the outer multiplier ``λ`` is projected.
    max_outer, max_inner:
        Iteration limits (20 and 1000 in the paper).
    outer_tol:
        Termination tolerance on ``‖z‖_∞``.
    inner_tol_primal, inner_tol_dual:
        Final inner (ADMM) residual tolerances; the effective inner tolerance
        at outer iteration ``k`` is ``max(final, inner_tol_initial *
        inner_tol_decay**(k-1))`` so early outer iterations solve loosely.
    inner_tol_initial, inner_tol_decay:
        See above.
    min_inner_iterations:
        Lower bound on inner iterations per outer iteration (avoids
        degenerate outer loops when the inner tolerance is loose).
    auglag_max_iter, auglag_penalty_factor, auglag_penalty_max, auglag_tol:
        Per-branch augmented-Lagrangian treatment of the line-limit
        constraints (multipliers persist across ADMM iterations).
    tron:
        Options of the batched TRON solver used for branch subproblems.
    tron_backend:
        ``"batched"`` (default) or ``"loop"``.
    kernel_backend:
        Name of the registered kernel backend every sweep of this solve
        runs with (``"numpy"`` / ``"loop"`` / ``"numba"`` / any name added
        via :func:`repro.parallel.register_backend`).  ``None`` (the
        default) defers to the ``REPRO_BACKEND`` environment variable and
        falls back to the reference ``"numpy"`` oracle; an explicit name
        here always wins over the environment.
    compaction_threshold:
        Scenario stream-compaction trigger of the batched solver: when the
        fraction of still-running scenarios among those resident in the
        kernel stream drops to this value or below, the frozen scenarios
        are compacted away and the kernels sweep only the survivors'
        stacked blocks.  ``1.0`` (the default) compacts as soon as any
        resident scenario freezes; ``0`` disables scenario compaction (the
        kernels then sweep the full arrays like idle GPU thread blocks, as
        does setting ``REPRO_COMPACTION=0`` in the environment).
    objective_scale:
        Multiplier applied to the generation cost inside the ADMM (the paper
        scales the 70k case by 2 to counteract large penalties).
    adaptive_rho:
        Opt-in residual-balancing penalty adaptation (Boyd et al., §3.4.1),
        applied **per scenario** between inner sweeps: a scenario whose
        primal residual norm dominates its dual norm by
        ``adaptive_rho_ratio`` grows both its penalties by
        ``adaptive_rho_factor`` (and shrinks them in the mirror case), with
        the matching ``y``-multiplier rescale so the scaled-dual iteration
        stays consistent.  Off by default: the fixed-ρ path is bitwise
        identical to a build without this feature.
    adaptive_rho_ratio:
        Residual imbalance (μ) that triggers an adaptation step; must be
        at least 1.
    adaptive_rho_factor:
        Multiplicative step (τ) of one adaptation; must exceed 1.
    adaptive_rho_interval:
        Inner iterations between adaptation checks within a round (the
        OSQP-style cadence).  A scenario only adapts when its inner
        iteration count within the current round is a multiple of this, so
        a warm-started round that converges sooner never perturbs its
        penalties at all.
    adaptive_rho_min, adaptive_rho_max:
        Clamp bounds of the adapted penalties.
    verbose:
        Log one line per inner iteration block when true.
    """

    rho_pq: float = 400.0
    rho_va: float = 40000.0
    beta_init: float = 1e3
    beta_factor: float = 6.0
    beta_max: float = 1e8
    beta_contraction: float = 0.25
    outer_multiplier_bound: float = 1e12
    max_outer: int = 20
    max_inner: int = 1000
    outer_tol: float = 1e-4
    inner_tol_primal: float = 1e-4
    inner_tol_dual: float = 1e-3
    inner_tol_initial: float = 1e-2
    inner_tol_decay: float = 0.2
    min_inner_iterations: int = 5
    auglag_max_iter: int = 1
    auglag_penalty_init: float = 10.0
    auglag_penalty_factor: float = 10.0
    auglag_penalty_max: float = 1e7
    auglag_tol: float = 1e-4
    tron: TronOptions = field(default_factory=lambda: TronOptions(max_iter=40, gtol=1e-7))
    tron_backend: str = "batched"
    kernel_backend: str | None = None
    compaction_threshold: float = 1.0
    objective_scale: float = 1.0
    adaptive_rho: bool = False
    adaptive_rho_ratio: float = 5.0
    adaptive_rho_factor: float = 2.0
    adaptive_rho_interval: int = 8
    adaptive_rho_min: float = 1e-2
    adaptive_rho_max: float = 1e12
    verbose: bool = False

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on inconsistent settings."""
        if self.rho_pq <= 0 or self.rho_va <= 0:
            raise ConfigurationError("consensus penalties must be positive")
        if self.beta_init <= 0 or self.beta_factor <= 1:
            raise ConfigurationError("beta_init must be positive and beta_factor > 1")
        if self.max_outer < 1 or self.max_inner < 1:
            raise ConfigurationError("iteration limits must be at least 1")
        if not (0 < self.beta_contraction < 1):
            raise ConfigurationError("beta_contraction must lie in (0, 1)")
        if self.outer_tol <= 0:
            raise ConfigurationError("outer_tol must be positive")
        if (self.inner_tol_primal <= 0 or self.inner_tol_dual <= 0
                or self.inner_tol_initial <= 0):
            raise ConfigurationError("inner tolerances must be positive")
        if not (0 < self.inner_tol_decay <= 1):
            raise ConfigurationError("inner_tol_decay must lie in (0, 1]")
        if self.min_inner_iterations < 0:
            raise ConfigurationError("min_inner_iterations must be non-negative")
        if (self.auglag_penalty_init <= 0 or self.auglag_penalty_factor <= 0
                or self.auglag_penalty_max <= 0):
            raise ConfigurationError("auglag penalties must be positive")
        if self.objective_scale <= 0:
            raise ConfigurationError("objective_scale must be positive")
        if self.adaptive_rho_ratio < 1:
            raise ConfigurationError("adaptive_rho_ratio must be at least 1")
        if self.adaptive_rho_factor <= 1:
            raise ConfigurationError("adaptive_rho_factor must exceed 1")
        if self.adaptive_rho_interval < 1:
            raise ConfigurationError(
                "adaptive_rho_interval must be at least 1")
        if self.adaptive_rho_min <= 0:
            raise ConfigurationError("adaptive_rho_min must be positive")
        if self.adaptive_rho_max < self.adaptive_rho_min:
            raise ConfigurationError(
                "adaptive_rho_max must be at least adaptive_rho_min")
        if self.tron_backend not in ("batched", "loop"):
            raise ConfigurationError("tron_backend must be 'batched' or 'loop'")
        if self.kernel_backend is not None:
            from repro.parallel.backends import get_backend
            get_backend(self.kernel_backend)  # raises on unknown names
        if not (0 <= self.compaction_threshold <= 1):
            raise ConfigurationError("compaction_threshold must lie in [0, 1]")
        self.tron.validate()

    def inner_tolerance(self, outer_iteration: int) -> float:
        """Effective inner residual tolerance at the given outer iteration."""
        loose = self.inner_tol_initial * self.inner_tol_decay ** (outer_iteration - 1)
        return max(min(self.inner_tol_primal, self.inner_tol_dual), loose)


def suggest_penalties(network: Network) -> tuple[float, float]:
    """Heuristic (rho_pq, rho_va) for a case, mirroring Table I's scaling.

    The paper's published values grow roughly with system size; for cases not
    listed there we interpolate on the number of buses.  Exact Table I values
    are returned for the published case names (with or without a
    ``"_like"`` suffix from the synthetic registry).
    """
    base_name = network.name.replace("_like", "").replace("_synthetic", "")
    if base_name in PAPER_PENALTIES:
        return PAPER_PENALTIES[base_name]
    n_bus = network.n_bus
    # Small cases (including the scaled-down synthetic benchmark cases) use
    # the penalties ExaAdmm ships for MATPOWER-sized systems; the published
    # Table I values take over at the pegase scale and above.
    if n_bus <= 2000:
        return 4e2, 4e4
    if n_bus <= 15000:
        return 5e1, 5e3
    if n_bus <= 30000:
        return 3e3, 3e4
    return 3e4, 3e5


def parameters_for_case(network: Network, **overrides) -> AdmmParameters:
    """Build :class:`AdmmParameters` with Table-I-style penalties for a case.

    Explicit ``rho_pq`` / ``rho_va`` overrides win over the
    :func:`suggest_penalties` heuristic — the documented path for pinning
    Table-I-style penalties on a case the heuristic would size differently.
    """
    rho_pq, rho_va = suggest_penalties(network)
    overrides.setdefault("rho_pq", rho_pq)
    overrides.setdefault("rho_va", rho_va)
    return AdmmParameters(**overrides)
