"""Scenario-batched two-level ADMM: many independent ACOPFs, one kernel stream.

The paper saturates its GPU by giving every component of one large network
its own thread (block).  Small cases leave the batch axis — our proxy for
the device — mostly empty, so this driver fills it with *scenarios*: load
scalings, N-1 contingencies, penalty sweeps, or entirely different networks.
Because the ADMM subproblems are component-separable and scenarios never
couple, a batch of S scenarios is just the disjoint union of S component
sets; every kernel launch sweeps the stacked arrays exactly as it sweeps a
single network's, only wider.

Control flow is per scenario, in lockstep: each global step is one inner
ADMM iteration for every live scenario; a scenario whose inner residuals
meet *its* tolerance advances its own outer level (``λ``, ``β``) under a
mask; a scenario whose ``‖z‖_∞`` passes the outer tolerance is **frozen** —
its solution is snapshotted and it drops out of the stopping test while the
shared kernels keep running on the full arrays (idle thread blocks, exactly
like a GPU).  Scenario blocks are contiguous and every reduction is
per-scenario, so each scenario's trajectory is bit-for-bit the one a
standalone :func:`~repro.admm.solver.solve_acopf_admm` call would produce.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Sequence

import numpy as np

from repro.admm.artificial import (
    update_artificial_variables,
    update_multipliers,
    update_outer_level,
)
from repro.admm.branch_update import update_branches
from repro.admm.bus_update import update_buses
from repro.admm.data import COUPLING_GROUPS, ComponentData
from repro.admm.generator_update import update_generators
from repro.admm.parameters import AdmmParameters, suggest_penalties
from repro.admm.penalty import (
    apply_residual_balancing,
    flush_scenario_penalties,
    scenario_penalties,
    seed_penalties,
)
from repro.admm.residuals import compute_residuals
from repro.admm.solver import AdmmIterationLog, AdmmSolution
from repro.admm.state import (
    AdmmState,
    cold_start_state,
    scatter_state_scenarios,
    select_state_scenarios,
)
from repro.analysis.metrics import constraint_violation
from repro.exceptions import ConfigurationError
from repro.logging_utils import get_logger
from repro.parallel.backends import get_backend
from repro.parallel.compaction import Workspace, compaction_enabled
from repro.parallel.device import SimulatedDevice
from repro.scenarios import Scenario, ScenarioSet, as_scenario_set

LOGGER = get_logger("admm.batch")


def scenario_parameters(scenario: Scenario,
                        params: AdmmParameters | None = None) -> AdmmParameters:
    """The parameters a standalone solve of ``scenario`` would use.

    Penalty resolution order: the scenario's own ``rho_pq`` / ``rho_va``
    overrides, then the shared ``params``, then the per-case Table I
    heuristic.  All other knobs come from ``params`` (or the defaults).
    This is the exact contract of the batched solver, so sequential runs
    built from these parameters reproduce the batched per-scenario results.
    """
    base = params if params is not None else AdmmParameters()
    if params is not None:
        default_pq, default_va = params.rho_pq, params.rho_va
    else:
        default_pq, default_va = suggest_penalties(scenario.network)
    rho_pq = scenario.rho_pq if scenario.rho_pq is not None else default_pq
    rho_va = scenario.rho_va if scenario.rho_va is not None else default_va
    return replace(base, rho_pq=rho_pq, rho_va=rho_va)


class BatchAdmmSolver:
    """Two-level ADMM over a stacked batch of independent scenarios."""

    def __init__(self, scenarios, params: AdmmParameters | None = None,
                 device: SimulatedDevice | None = None) -> None:
        self.scenarios: ScenarioSet = as_scenario_set(scenarios)
        self.params = params if params is not None else AdmmParameters()
        self.params.validate()
        per_scenario = [scenario_parameters(s, params) for s in self.scenarios]
        #: Construction-time (rho_pq, rho_va) per scenario — the fixed values
        #: the adaptive path restarts from when no seeds are supplied.
        self.initial_penalties: list[tuple[float, float]] = [
            (p.rho_pq, p.rho_va) for p in per_scenario]
        self.data = ComponentData.from_scenarios(
            networks=self.scenarios.networks,
            params=self.params,
            penalties=list(self.initial_penalties),
            names=self.scenarios.names)
        self.backend = get_backend(self.params.kernel_backend)
        self.device = device or SimulatedDevice()
        self.device.backend = self.backend.name
        self.workspace = Workspace()
        self.last_state: AdmmState | None = None

    # ------------------------------------------------------------------ #
    def update_scenario_data(self, *, bus_pd: np.ndarray | None = None,
                             bus_qd: np.ndarray | None = None,
                             gen_pmin: np.ndarray | None = None,
                             gen_pmax: np.ndarray | None = None,
                             networks: Sequence | None = None) -> None:
        """Swap per-period loads / generator bounds on the stacked arrays.

        The rolling-horizon tracking pipeline re-solves the same fleet every
        period with nothing changed but bus loads (the demand profile) and
        generator dispatch windows (ramp limits around the previous period's
        set points).  Rebuilding :class:`ComponentData` from scratch would
        recompute branch quantities and re-concatenate every component axis;
        this hook overwrites just the affected stacked arrays in place, so
        the next :meth:`solve` runs on data bitwise identical to a fresh
        :meth:`ComponentData.from_scenarios` stack of the updated networks.

        Each array must cover the full stacked axis (``n_bus`` for loads,
        ``n_gen`` — active generators only, scenario-major — for bounds), in
        per unit.  ``networks`` optionally supplies the per-scenario
        effective networks (e.g. :meth:`Network.with_array_overrides` views)
        so extracted solutions evaluate their constraint-violation metrics
        against the period's grid rather than the construction-time one.
        """
        data = self.data
        for attr, value in (("bus_pd", bus_pd), ("bus_qd", bus_qd),
                            ("gen_pmin", gen_pmin), ("gen_pmax", gen_pmax)):
            if value is None:
                continue
            value = np.asarray(value, dtype=float)
            current = getattr(data, attr)
            if value.shape != current.shape:
                raise ConfigurationError(
                    f"{attr} update has shape {value.shape}, "
                    f"expected the stacked {current.shape}")
            setattr(data, attr, value.copy())
        if networks is not None:
            layout = data.scenario_layout
            if len(networks) != layout.n_scenarios:
                raise ConfigurationError(
                    f"{len(networks)} networks for {layout.n_scenarios} "
                    "scenarios")
            data.layout = replace(layout, networks=tuple(networks))

    # ------------------------------------------------------------------ #
    def solve(self, time_limit: float | None = None,
              warm_start: Sequence[AdmmState | None] | None = None,
              penalties: Sequence[tuple[float, float] | None] | None = None,
              ) -> list[AdmmSolution]:
        """Run the stacked two-level loop; one solution per scenario.

        ``warm_start`` optionally supplies one per-scenario
        :class:`~repro.admm.state.AdmmState` (or ``None`` for a cold start of
        that scenario) — the shapes a previous solve's
        :func:`extract_scenario_state` snapshots have.  This is what makes a
        shard *resumable*: a pool worker (or a tracking driver) can re-enter
        the loop from where a previous solve of the same scenarios stopped.
        As with the single-network solver's warm start, the outer level
        restarts (``β`` back to ``beta_init``, outer iteration 1).

        ``penalties`` optionally seeds per-scenario ``(rho_pq, rho_va)``
        starting points (``None`` entries keep that scenario's
        construction-time values) — the tracking pipeline's ρ-cache hands a
        scenario's previously *converged* penalties back in here, alongside
        its warm state.  Under ``params.adaptive_rho`` the penalties then
        keep adapting from that seed; with adaptation off the seeds simply
        pin the fixed penalties of this solve.  When ``adaptive_rho`` is on
        and no seeds are given, the construction-time penalties are
        rewritten first, so a reused solver never inherits the previous
        solve's adapted values (each solve starts from a defined point).

        **Stream compaction.**  A frozen scenario's kernels are pure waste
        (idle thread blocks on the paper's GPU, dead vector width here), so
        once the fraction of still-running scenarios among the *resident*
        ones drops to ``params.compaction_threshold`` or below, the solver
        derives a compacted :class:`~repro.scenarios.layout.ScenarioLayout`
        over the survivors, packs their blocks of ``ComponentData`` and
        ``AdmmState``, and continues the very same loop on the narrower
        arrays.  Per-scenario trajectories are unaffected (kernels are
        component-separable and reductions per-scenario), so results remain
        bit-for-bit those of the full sweep; the kernel occupancy column of
        :meth:`SimulatedDevice.report` shows the reclaimed width.  After the
        last scenario freezes, the packed blocks are scattered back so
        :attr:`last_state` covers the full stacked layout.
        """
        params = self.params
        device = self.device
        data_full = self.data
        n_scenarios = data_full.scenario_layout.n_scenarios
        start = time.perf_counter()

        if penalties is not None:
            if len(penalties) != n_scenarios:
                raise ConfigurationError(
                    f"penalties has {len(penalties)} seeds for "
                    f"{n_scenarios} scenarios")
            seed = [pair if pair is not None else self.initial_penalties[s]
                    for s, pair in enumerate(penalties)]
            seed_penalties(data_full, seed)
        elif params.adaptive_rho:
            seed_penalties(data_full, self.initial_penalties)

        state_full = cold_start_state(data_full)
        if warm_start is not None:
            if len(warm_start) != n_scenarios:
                raise ConfigurationError(
                    f"warm_start has {len(warm_start)} states for "
                    f"{n_scenarios} scenarios")
            for s, scenario_state in enumerate(warm_start):
                if scenario_state is not None:
                    scatter_state_scenarios(data_full, state_full,
                                            scenario_state, [s])
        state_full.beta = np.full(n_scenarios, params.beta_init)

        outer = np.ones(n_scenarios, dtype=int)
        inner_in_round = np.zeros(n_scenarios, dtype=int)
        total_inner = np.zeros(n_scenarios, dtype=int)
        z_norm_prev = np.ones(n_scenarios)  # max(‖z‖, 1) at cold start
        frozen = np.zeros(n_scenarios, dtype=bool)
        logs: list[list[AdmmIterationLog]] = [[] for _ in range(n_scenarios)]
        solutions: list[AdmmSolution | None] = [None] * n_scenarios

        compact = compaction_enabled() and params.compaction_threshold > 0
        live = np.arange(n_scenarios)  # global ids of the resident scenarios
        data, state = data_full, state_full

        while not frozen.all():
            active_live = ~frozen[live]
            n_active = int(active_live.sum())
            if (compact and 0 < n_active < live.size
                    and n_active <= params.compaction_threshold * live.size):
                # Compact: pack the surviving scenarios' blocks and continue
                # the loop on the narrower arrays.  The resident state is
                # flushed first; a block stops evolving once compacted away
                # (its reported solution is always the freeze-time snapshot).
                # Adapted penalties live in the packed data's rho blocks and
                # must flush with it, or re-selecting from the full arrays
                # would silently revert every adaptation since the previous
                # compaction.
                if state is not state_full:
                    scatter_state_scenarios(data_full, state_full, state, live)
                    if params.adaptive_rho:
                        flush_scenario_penalties(data, data_full, live)
                live = live[active_live]
                data = data_full.select_scenarios(live)
                state = select_state_scenarios(data_full, state_full, live)
                active_live = np.ones(live.size, dtype=bool)

            layout = data.scenario_layout
            active_gen = int(layout.counts("gen")[active_live].sum())
            active_branch = int(layout.counts("branch")[active_live].sum())
            active_bus = int(layout.counts("bus")[active_live].sum())
            active_coupling = 2 * active_gen + 8 * active_branch

            device.launch("generator_update", update_generators, data, state,
                          elements=data.n_gen, active_elements=active_gen,
                          backend=self.backend)
            device.launch("branch_update", update_branches, data, state, params.tron,
                          elements=data.n_branch, active_elements=active_branch,
                          workspace=self.workspace, backend=self.backend)
            device.launch("bus_update", update_buses, data, state,
                          elements=data.n_bus, active_elements=active_bus,
                          backend=self.backend)
            device.launch("z_update", update_artificial_variables, data, state,
                          elements=data.n_coupling, active_elements=active_coupling)
            primal = device.launch("multiplier_update", update_multipliers, data, state,
                                   elements=data.n_coupling, active_elements=active_coupling)
            residual = compute_residuals(data, state, primal,
                                         active=active_live if compact else None)

            idx_active = live[active_live]
            inner_in_round[idx_active] += 1
            total_inner[idx_active] += 1
            time_up = (time_limit is not None
                       and time.perf_counter() - start > time_limit)

            tol_inner = np.array([params.inner_tolerance(int(k)) for k in outer[live]])
            converged_inner = residual.converged_mask(
                np.maximum(tol_inner, params.inner_tol_primal),
                np.maximum(tol_inner, params.inner_tol_dual))
            round_done = active_live & (
                ((inner_in_round[live] >= params.min_inner_iterations) & converged_inner)
                | (inner_in_round[live] >= params.max_inner))
            if time_up:
                round_done = active_live.copy()
            if params.adaptive_rho:
                # A scenario whose round continues gets one residual-balancing
                # step every ``adaptive_rho_interval`` inner iterations — the
                # same point in the iteration where the sequential solver
                # adapts, so trajectories stay bitwise sequential.
                adapt = (active_live & ~round_done
                         & (inner_in_round[live]
                            % params.adaptive_rho_interval == 0))
                if adapt.any():
                    idx = np.flatnonzero(adapt)
                    apply_residual_balancing(
                        data, state, idx, residual.primal_norms[idx],
                        residual.dual_norms[idx], params)
            if not round_done.any():
                continue

            z_norm_new = update_outer_level(data, state, z_norm_prev[live],
                                            active=round_done, backend=self.backend)
            beta = np.asarray(state.beta)
            for s in np.flatnonzero(round_done):
                g = int(live[s])
                logs[g].append(AdmmIterationLog(
                    outer_iteration=int(outer[g]),
                    inner_iterations=int(inner_in_round[g]),
                    primal_residual=float(residual.primal_norms[s]),
                    dual_residual=float(residual.dual_norms[s]),
                    z_norm=float(z_norm_new[s]),
                    beta=float(beta[s])))
            if params.verbose:
                for s in np.flatnonzero(round_done):
                    g = int(live[s])
                    LOGGER.info("%s outer %2d: inner=%4d primal=%.3e dual=%.3e "
                                "|z|=%.3e beta=%.1e", layout.names[s], outer[g],
                                inner_in_round[g], residual.primal_norms[s],
                                residual.dual_norms[s], z_norm_new[s], beta[s])
            z_norm_prev[live] = z_norm_new

            newly_converged = round_done & (z_norm_new <= params.outer_tol)
            exhausted = round_done & ~newly_converged & (outer[live] >= params.max_outer)
            to_freeze = newly_converged | exhausted
            if time_up:
                to_freeze = active_live  # deadline: freeze everything still running
            elapsed = time.perf_counter() - start
            for s in np.flatnonzero(to_freeze & active_live):
                g = int(live[s])
                solutions[g] = self._extract_solution(
                    data, state, s, bool(newly_converged[s]), int(outer[g]),
                    int(total_inner[g]), elapsed, logs[g])
            frozen[live[to_freeze]] = True

            advancing = round_done & ~to_freeze
            adv = live[advancing]
            outer[adv] += 1
            inner_in_round[adv] = 0

        if state is not state_full:
            scatter_state_scenarios(data_full, state_full, state, live)
            if params.adaptive_rho:
                flush_scenario_penalties(data, data_full, live)
        self.last_state = state_full
        return solutions

    # ------------------------------------------------------------------ #
    def _extract_solution(self, data: ComponentData, state: AdmmState, s: int,
                          converged: bool, outer_iterations: int,
                          inner_iterations: int, elapsed: float,
                          log: list[AdmmIterationLog]) -> AdmmSolution:
        """Snapshot one scenario's slice of a (possibly compacted) state.

        ``s`` indexes the scenario inside ``data``'s own layout, which may
        be a compacted subset of :attr:`self.data`; the layout carries the
        scenario's name and network either way.
        """
        layout = data.scenario_layout
        network = layout.network(s)
        scenario_state = extract_scenario_state(data, state, s)
        scenario_state.outer_iteration = outer_iterations
        scenario_state.total_inner_iterations = inner_iterations

        vm = np.sqrt(np.maximum(scenario_state.w, 1e-12))
        va = scenario_state.theta - scenario_state.theta[network.ref_bus]

        gen_block = layout.block("gen", s)
        pg_full = np.zeros(network.n_gen)
        qg_full = np.zeros(network.n_gen)
        pg_full[data.gen_index[gen_block]] = scenario_state.pg
        qg_full[data.gen_index[gen_block]] = scenario_state.qg

        metrics = constraint_violation(network, vm, va, pg_full, qg_full)
        rho_pq, rho_va = scenario_penalties(data, s)
        return AdmmSolution(
            network_name=layout.names[s], vm=vm, va=va, pg=pg_full, qg=qg_full,
            objective=metrics.objective, metrics=metrics, converged=converged,
            outer_iterations=outer_iterations, inner_iterations=inner_iterations,
            solve_seconds=elapsed, state=scenario_state, iteration_log=list(log),
            rho_pq=rho_pq, rho_va=rho_va)


def extract_scenario_state(data: ComponentData, state: AdmmState, s: int) -> AdmmState:
    """Copy one scenario's block out of a stacked :class:`AdmmState`.

    The result is a standalone state of that scenario's network (bus indices
    are block-local because scenarios are stacked scenario-major), usable to
    warm start a classic single-network solve.
    """
    layout = data.scenario_layout
    gens = layout.block("gen", s)
    branches = layout.block("branch", s)
    buses = layout.block("bus", s)

    def per_group(values: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        return {group: values[group][data.group_block(group, s)].copy()
                for group in COUPLING_GROUPS}

    beta = state.beta
    if isinstance(beta, np.ndarray) and beta.ndim > 0:
        beta = float(beta[s])
    return AdmmState(
        pg=state.pg[gens].copy(), qg=state.qg[gens].copy(),
        vi=state.vi[branches].copy(), vj=state.vj[branches].copy(),
        ti=state.ti[branches].copy(), tj=state.tj[branches].copy(),
        sij=state.sij[branches].copy(), sji=state.sji[branches].copy(),
        pij=state.pij[branches].copy(), qij=state.qij[branches].copy(),
        pji=state.pji[branches].copy(), qji=state.qji[branches].copy(),
        w=state.w[buses].copy(), theta=state.theta[buses].copy(),
        pg_copy=state.pg_copy[gens].copy(), qg_copy=state.qg_copy[gens].copy(),
        pij_copy=state.pij_copy[branches].copy(), qij_copy=state.qij_copy[branches].copy(),
        pji_copy=state.pji_copy[branches].copy(), qji_copy=state.qji_copy[branches].copy(),
        y=per_group(state.y), z=per_group(state.z), lz=per_group(state.lz),
        lam_sij=state.lam_sij[branches].copy(), lam_sji=state.lam_sji[branches].copy(),
        rho_tilde=state.rho_tilde[branches].copy(),
        beta=beta, outer_iteration=state.outer_iteration,
        total_inner_iterations=state.total_inner_iterations,
        previous_bus_values={
            group: state.previous_bus_values[group][data.value_block(group, s)].copy()
            for group in state.previous_bus_values},
    )


def solve_acopf_admm_batch(scenarios, params: AdmmParameters | None = None,
                           device: SimulatedDevice | None = None,
                           time_limit: float | None = None) -> list[AdmmSolution]:
    """Solve a batch of independent scenarios in one stacked ADMM run.

    ``scenarios`` may be a :class:`~repro.scenarios.ScenarioSet`, a sequence
    of :class:`~repro.scenarios.Scenario`, or a sequence of networks.
    Returns one :class:`~repro.admm.solver.AdmmSolution` per scenario, in
    order; each matches the solution a standalone
    :func:`~repro.admm.solver.solve_acopf_admm` call (with
    :func:`scenario_parameters`) would produce.
    """
    solver = BatchAdmmSolver(scenarios, params=params, device=device)
    return solver.solve(time_limit=time_limit)


# --------------------------------------------------------------------- #
# Multi-device sharding entry point                                      #
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class ShardTask:
    """One unit of :class:`~repro.parallel.pool.DevicePool` work.

    Everything in here is picklable, so a task can cross a process boundary
    to a worker: the scenario sub-batch itself, the *global* positions those
    scenarios occupy in the pool's full batch (for stable re-merge), the
    shared solve knobs, and optional per-scenario warm-start states that make
    a shard resumable.  ``time_limit`` is the aggregate budget of this
    shard's stacked solve, exactly as in :meth:`BatchAdmmSolver.solve`.
    """

    indices: tuple[int, ...]
    scenarios: ScenarioSet
    params: AdmmParameters | None = None
    time_limit: float | None = None
    warm_states: tuple[AdmmState | None, ...] | None = None
    device_name: str = "shard"
    penalties: tuple[tuple[float, float] | None, ...] | None = None

    def __post_init__(self) -> None:
        if len(self.indices) != len(self.scenarios):
            raise ConfigurationError(
                f"shard has {len(self.indices)} indices for "
                f"{len(self.scenarios)} scenarios")
        if (self.penalties is not None
                and len(self.penalties) != len(self.scenarios)):
            raise ConfigurationError(
                f"shard has {len(self.penalties)} penalty seeds for "
                f"{len(self.scenarios)} scenarios")


@dataclass
class ShardResult:
    """What a worker sends back: per-scenario solutions plus device metrics.

    ``indices`` mirror the task's global positions (``solutions[k]`` is the
    solution of global scenario ``indices[k]``); ``device`` is the worker's
    :meth:`~repro.parallel.device.SimulatedDevice.as_dict` snapshot for this
    shard and ``seconds`` the worker-side wall-clock of the solve — the
    quantity the pool's makespan accounting is built from.
    """

    indices: tuple[int, ...]
    solutions: list[AdmmSolution]
    device: dict = field(default_factory=dict)
    seconds: float = 0.0


def solve_scenario_shard(task: ShardTask) -> ShardResult:
    """Solve one shard on its own simulated device (the pool worker body).

    A module-level function so it pickles under every multiprocessing start
    method; per-scenario results are bit-for-bit those of the full-batch
    (and of the standalone sequential) solve because scenarios never couple.
    """
    device = SimulatedDevice(name=task.device_name)
    solver = BatchAdmmSolver(task.scenarios, params=task.params, device=device)
    start = time.perf_counter()
    solutions = solver.solve(time_limit=task.time_limit,
                             warm_start=task.warm_states,
                             penalties=task.penalties)
    seconds = time.perf_counter() - start
    return ShardResult(indices=task.indices, solutions=solutions,
                       device=device.as_dict(), seconds=seconds)
