"""Residual-balancing penalty (ρ) adaptation, per scenario.

The policy is Boyd et al. §3.4.1 applied independently to every scenario of
a batch: a scenario whose primal residual norm dominates its dual norm by
``adaptive_rho_ratio`` (μ) grows both of its penalty families by
``adaptive_rho_factor`` (τ); the mirror imbalance shrinks them; either step
clamps to ``[adaptive_rho_min, adaptive_rho_max]``.  Whenever a penalty
changes, the corresponding (unscaled) multipliers are rescaled by
``new / old`` so that the scaled dual variable ``u = y / ρ`` carries over
continuously and the next sweep's proximal terms stay consistent.

Penalties are written back into ``ComponentData.rho`` as whole-scenario
blocks — the within-scenario-constant invariant that ``_scenario_rho`` (and
hence the dual-residual scale, stream compaction, and select/scatter
round-trips) relies on.  The scalar-rho layout (``from_network``) and the
stacked per-element layout (``from_scenarios``) go through the exact same
float arithmetic, which is what keeps an S=1 batched adaptive solve bitwise
identical to the sequential adaptive solve.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.admm.data import COUPLING_GROUPS, POWER_GROUPS, ComponentData
from repro.admm.residuals import _scenario_rho
from repro.admm.state import AdmmState
from repro.exceptions import ConfigurationError


def balanced_penalties(primal: float, dual: float, rho_pq: float,
                       rho_va: float, params) -> tuple[float, float]:
    """One residual-balancing step of a scenario's penalty pair.

    Returns the (possibly unchanged) ``(rho_pq, rho_va)``: both families
    move together by τ when the scenario's relative residuals are out of
    balance by more than μ, clamped to the configured bounds.
    """
    if primal > params.adaptive_rho_ratio * dual:
        factor = params.adaptive_rho_factor
    elif dual > params.adaptive_rho_ratio * primal:
        factor = 1.0 / params.adaptive_rho_factor
    else:
        return rho_pq, rho_va
    lo, hi = params.adaptive_rho_min, params.adaptive_rho_max
    new_pq = min(max(rho_pq * factor, lo), hi)
    new_va = min(max(rho_va * factor, lo), hi)
    return new_pq, new_va


def scenario_penalties(data: ComponentData, scenario: int) -> tuple[float, float]:
    """A scenario's current ``(rho_pq, rho_va)`` read from ``data.rho``.

    The power-family value comes from the generator groups (falling back to
    the branch groups for generator-free scenarios); the voltage family from
    the bus-side groups.  Raises if a family is non-constant within the
    scenario (via :func:`repro.admm.residuals._scenario_rho`).
    """
    rho_pq = _scenario_rho(data, "gp", scenario)
    if rho_pq == 0.0:
        rho_pq = _scenario_rho(data, "pij", scenario)
    rho_va = _scenario_rho(data, "wi", scenario)
    return rho_pq, rho_va


def _write_family(data: ComponentData, state: AdmmState | None, group: str,
                  scenario: int, old: float, new: float) -> None:
    """Set one group's penalty for one scenario, rescaling ``y`` if asked.

    ``state is None`` writes the penalty without touching the multipliers —
    the solve-entry seeding path, where the warm-started ``y`` already
    corresponds to the seeded penalties.
    """
    rho = data.rho[group]
    if np.ndim(rho) == 0:
        data.rho[group] = new
    else:
        rho[data.group_block(group, scenario)] = new
    if state is not None and old > 0.0:
        factor = new / old
        block = data.group_block(group, scenario)
        state.y[group][block] = state.y[group][block] * factor


def apply_residual_balancing(data: ComponentData, state: AdmmState,
                             scenarios: Sequence[int],
                             primal_norms: np.ndarray,
                             dual_norms: np.ndarray,
                             params) -> int:
    """Adapt the listed scenarios' penalties in place; return how many moved.

    ``scenarios`` indexes into the (possibly compacted) ``data`` / ``state``,
    matching the order of ``primal_norms`` / ``dual_norms``.  Each scenario's
    multipliers are rescaled by ``new / old`` per penalty family so the
    scaled-dual iteration stays consistent across the change.
    """
    changed = 0
    for position, scenario in enumerate(scenarios):
        old_pq, old_va = scenario_penalties(data, scenario)
        new_pq, new_va = balanced_penalties(
            float(primal_norms[position]), float(dual_norms[position]),
            old_pq, old_va, params)
        if new_pq == old_pq and new_va == old_va:
            continue
        changed += 1
        for group in COUPLING_GROUPS:
            old = old_pq if group in POWER_GROUPS else old_va
            new = new_pq if group in POWER_GROUPS else new_va
            if new != old:
                _write_family(data, state, group, scenario, old, new)
    return changed


def flush_scenario_penalties(src: ComponentData, dst: ComponentData,
                             scenario_ids: Sequence[int]) -> None:
    """Copy per-scenario penalties from compacted ``src`` back into ``dst``.

    ``scenario_ids[p]`` names the scenario of ``dst`` that position ``p`` of
    ``src`` holds — the ``live`` map of the batched solver's stream
    compaction.  Without this flush, adaptation steps taken *after* a
    compaction (which writes into a packed copy of the data) would be lost
    the next time the solver re-selects scenarios from the full arrays.
    No multiplier rescale: the flushed values are the penalties the live
    multipliers already correspond to.
    """
    for position, scenario in enumerate(scenario_ids):
        rho_pq, rho_va = scenario_penalties(src, position)
        old_pq, old_va = scenario_penalties(dst, scenario)
        for group in COUPLING_GROUPS:
            old = old_pq if group in POWER_GROUPS else old_va
            new = rho_pq if group in POWER_GROUPS else rho_va
            if new != old:
                _write_family(dst, None, group, scenario, old, new)


def seed_penalties(data: ComponentData,
                   penalties: Sequence[tuple[float, float] | None]) -> None:
    """Write per-scenario ``(rho_pq, rho_va)`` seeds into ``data.rho``.

    No multiplier rescale happens here: seeding runs at solve entry, where
    any warm-started ``y`` was produced under (and cached alongside) exactly
    these penalties — the write just makes ``data.rho`` agree with them,
    the same way a fresh solver built with those penalties would start.
    ``None`` entries leave that scenario's current penalties alone.
    """
    if len(penalties) != data.n_scenarios:
        raise ConfigurationError(
            f"got {len(penalties)} penalty seeds for "
            f"{data.n_scenarios} scenarios")
    for scenario, pair in enumerate(penalties):
        if pair is None:
            continue
        rho_pq, rho_va = pair
        if not (rho_pq > 0 and rho_va > 0):
            raise ConfigurationError(
                f"penalty seed for scenario {scenario} must be positive, "
                f"got ({rho_pq}, {rho_va})")
        old_pq, old_va = scenario_penalties(data, scenario)
        for group in COUPLING_GROUPS:
            old = old_pq if group in POWER_GROUPS else old_va
            new = float(rho_pq) if group in POWER_GROUPS else float(rho_va)
            if new != old:
                _write_family(data, None, group, scenario, old, new)
