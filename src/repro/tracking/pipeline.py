"""Batched rolling-horizon tracking on the pooled execution stack.

The classic driver (:func:`repro.tracking.horizon.track_horizon`) follows a
load profile one period and one grid at a time.  This module runs the same
experiment the way the rest of the repository executes everything since the
scenario subsystem landed: **many grids at once** —

* every period solves the whole fleet as one scenario batch
  (:class:`~repro.admm.batch_solver.BatchAdmmSolver`), or sharded across a
  :class:`~repro.parallel.pool.DevicePool` of simulated devices;
* a :class:`WarmStartCache`, keyed by scenario identity, seeds period ``t``
  from every scenario's period ``t−1`` freeze-time state via the batch
  solver's ``warm_start=`` hook — and remembers which pool worker held each
  state, so pooled periods run with **shard affinity** (persistent
  placement, stealing still allowed: a stolen scenario's state ships with
  the chunk);
* load drift and generator ramp windows are applied between periods as
  vectorised array updates — stacked :class:`~repro.admm.data.ComponentData`
  loads/bounds are overwritten in place
  (:meth:`BatchAdmmSolver.update_scenario_data`) and per-scenario metric
  networks are O(1) :meth:`~repro.grid.network.Network.with_array_overrides`
  views — no per-network rebuilds and no re-stacking in the hot loop.

Every per-scenario trajectory remains bit-for-bit the one the sequential
driver produces: the in-place updates replicate
``with_scaled_loads`` + ``apply_ramp_limits`` + ``ComponentData`` stacking
bitwise (see :func:`repro.tracking.ramping.ramp_window`), scenarios never
couple, and the batched warm start scatters exactly the state a standalone
``AdmmSolver.solve(warm_start=...)`` would copy.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Sequence

import numpy as np

from repro.admm.batch_solver import BatchAdmmSolver
from repro.admm.parameters import AdmmParameters
from repro.admm.solver import AdmmSolution
from repro.admm.state import AdmmState
from repro.exceptions import ConfigurationError
from repro.logging_utils import get_logger
from repro.parallel.pool import DevicePool, PoolExecutionError
from repro.scenarios import Scenario, ScenarioSet, as_scenario_set
from repro.tracking.horizon import HorizonResult, PeriodRecord
from repro.tracking.load_profile import normalize_profiles
from repro.tracking.ramping import DEFAULT_RAMP_FRACTION, ramp_window

LOGGER = get_logger("tracking.pipeline")


# --------------------------------------------------------------------- #
# Warm-start state cache                                                  #
# --------------------------------------------------------------------- #
@dataclass
class WarmRecord:
    """What the cache keeps per scenario between periods."""

    state: AdmmState            # freeze-time snapshot (the warm seed)
    pg: np.ndarray              # full-axis per-unit dispatch (the ramp anchor)
    worker: int | None = None   # pool worker that held the state (affinity)
    period: int = -1            # period the record was written after
    rho_pq: float | None = None  # converged penalties (the adaptive-ρ seed)
    rho_va: float | None = None


class WarmStartCache:
    """Warm-start state cache keyed by scenario identity.

    Keys are scenario names (any hashable works), so the cache survives
    fleet recomposition: a scenario added mid-horizon cold-starts, one that
    disappears simply stops being read, and a cache handed to a later
    :func:`track_horizon_batch` call resumes the horizon where the previous
    call stopped — including the ramp coupling, because the cache also
    carries each scenario's last dispatch.

    Besides the :class:`~repro.admm.state.AdmmState` seed, each record
    remembers the pool worker that produced it; that is the **shard
    affinity** the pooled pipeline feeds back into
    :meth:`DevicePool.solve(affinity=...) <repro.parallel.pool.DevicePool.solve>`
    so a scenario keeps running on the device already holding its state.
    """

    def __init__(self) -> None:
        self._records: dict[object, WarmRecord] = {}

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key) -> bool:
        return key in self._records

    def get(self, key) -> WarmRecord | None:
        return self._records.get(key)

    def store(self, key, state: AdmmState, pg: np.ndarray,
              worker: int | None = None, period: int = -1,
              rho_pq: float | None = None,
              rho_va: float | None = None) -> None:
        self._records[key] = WarmRecord(state=state, pg=np.asarray(pg, dtype=float),
                                        worker=worker, period=period,
                                        rho_pq=rho_pq, rho_va=rho_va)

    def states(self, keys: Sequence) -> list[AdmmState | None]:
        """Per-key warm-start states (``None`` where the key is unknown)."""
        return [record.state if record is not None else None
                for record in map(self.get, keys)]

    def previous_pg(self, keys: Sequence) -> list[np.ndarray | None]:
        """Per-key previous dispatches (``None`` where the key is unknown)."""
        return [record.pg if record is not None else None
                for record in map(self.get, keys)]

    def affinity(self, keys: Sequence) -> list[int | None]:
        """Per-key preferred workers (``None`` where unknown / single-device)."""
        return [record.worker if record is not None else None
                for record in map(self.get, keys)]

    def penalties(self, keys: Sequence) -> list[tuple[float, float] | None]:
        """Per-key cached converged ``(rho_pq, rho_va)`` (``None`` if unknown).

        This is the **ρ-cache**: under adaptive ρ, the penalties a scenario
        converged with in period ``t`` seed its period ``t+1`` solve the way
        its state already does.
        """
        return [(record.rho_pq, record.rho_va)
                if record is not None and record.rho_pq is not None else None
                for record in map(self.get, keys)]

    def clear(self) -> None:
        self._records.clear()


# --------------------------------------------------------------------- #
# Results                                                                 #
# --------------------------------------------------------------------- #
@dataclass
class BatchPeriodRecord:
    """One period of a batched tracking run (all scenarios).

    The retained :class:`~repro.admm.solver.AdmmSolution` objects are
    *detached* from their solver states (``solution.state is None``): the
    :class:`WarmStartCache` is the single owner of the live per-scenario
    states, so a long horizon does not accumulate full solver state per
    scenario-period.  To resume a horizon, pass the cache — not a stored
    solution — to the next :func:`track_horizon_batch` call.
    """

    period: int
    multipliers: np.ndarray
    solutions: list[AdmmSolution]
    solve_seconds: float        # stream wall-clock / pool makespan (see result)
    wall_seconds: float         # observed host wall-clock of the period
    workers: list[int | None]   # worker that solved each scenario (pool mode)
    steals: int = 0
    retries: int = 0            # chunks replayed by the pool this period
    respawns: int = 0           # worker processes respawned this period
    replayed: tuple[int, ...] = ()  # scenarios that survived a replay

    @property
    def objectives(self) -> np.ndarray:
        return np.array([s.objective for s in self.solutions])

    @property
    def violations(self) -> np.ndarray:
        return np.array([s.max_constraint_violation for s in self.solutions])

    @property
    def iterations(self) -> np.ndarray:
        """Per-scenario inner ADMM iterations spent this period."""
        return np.array([s.inner_iterations for s in self.solutions], dtype=int)

    @property
    def converged(self) -> np.ndarray:
        return np.array([s.converged for s in self.solutions], dtype=bool)


@dataclass
class BatchHorizonResult:
    """Result of a batched tracking run: per-period × per-scenario series.

    ``solve_seconds`` of each period is the simulated fleet wall-clock — the
    batched stream's elapsed time in single-device mode, the pool *makespan*
    (max per-worker busy time) in pooled mode — so the cumulative series is
    the batched analogue of Figure 1's y-axis.  :meth:`scenario_result`
    projects one scenario out as a classic
    :class:`~repro.tracking.horizon.HorizonResult`, which keeps the figure
    renderers and :func:`~repro.tracking.horizon.relative_gaps` usable per
    scenario.
    """

    scenario_names: list[str]
    warm_start: bool
    n_workers: int = 1
    executor: str = "single-device"
    ramp_fraction: float = DEFAULT_RAMP_FRACTION
    periods: list[BatchPeriodRecord] = field(default_factory=list)

    @property
    def n_periods(self) -> int:
        return len(self.periods)

    @property
    def n_scenarios(self) -> int:
        return len(self.scenario_names)

    @property
    def cumulative_seconds(self) -> np.ndarray:
        """Cumulative fleet wall-clock after each period (Figure 1, batched)."""
        return np.cumsum([p.solve_seconds for p in self.periods])

    @property
    def total_seconds(self) -> float:
        return float(sum(p.solve_seconds for p in self.periods))

    @property
    def objectives(self) -> np.ndarray:
        """``(n_periods, n_scenarios)`` objective matrix."""
        return np.array([p.objectives for p in self.periods])

    @property
    def violations(self) -> np.ndarray:
        """``(n_periods, n_scenarios)`` max-constraint-violation matrix."""
        return np.array([p.violations for p in self.periods])

    @property
    def iterations(self) -> np.ndarray:
        """``(n_periods, n_scenarios)`` inner-iteration matrix."""
        return np.array([p.iterations for p in self.periods], dtype=int)

    @property
    def total_inner_iterations(self) -> int:
        """Total ADMM inner iterations across the whole horizon and fleet."""
        return int(self.iterations.sum()) if self.periods else 0

    @property
    def n_steals(self) -> int:
        return sum(p.steals for p in self.periods)

    @property
    def total_retries(self) -> int:
        """Chunk replays the pool performed across the whole horizon."""
        return sum(p.retries for p in self.periods)

    @property
    def total_respawns(self) -> int:
        """Worker respawns the pool performed across the whole horizon."""
        return sum(p.respawns for p in self.periods)

    def scenario_index(self, scenario: int | str) -> int:
        if isinstance(scenario, str):
            try:
                return self.scenario_names.index(scenario)
            except ValueError:
                raise ConfigurationError(
                    f"unknown scenario {scenario!r}; choose from "
                    f"{self.scenario_names}") from None
        return int(scenario)

    def scenario_result(self, scenario: int | str) -> HorizonResult:
        """One scenario's horizon as a classic :class:`HorizonResult`.

        Per-period ``solve_seconds`` is the scenario's own solve time (the
        stream's elapsed time when that scenario froze), not the fleet
        makespan — summing scenario results therefore over-counts shared
        stream time; use :attr:`cumulative_seconds` for fleet wall-clock.
        """
        s = self.scenario_index(scenario)
        records = []
        for period in self.periods:
            solution = period.solutions[s]
            records.append(PeriodRecord(
                period=period.period,
                load_multiplier=float(period.multipliers[s]),
                objective=solution.objective,
                max_violation=solution.max_constraint_violation,
                solve_seconds=solution.solve_seconds,
                iterations=solution.inner_iterations,
                converged=solution.converged,
                pg=solution.pg, vm=solution.vm, va=solution.va))
        return HorizonResult(method="admm",
                             network_name=self.scenario_names[s],
                             warm_start=self.warm_start, periods=records)


# --------------------------------------------------------------------- #
# Per-scenario period expansion (vectorised)                              #
# --------------------------------------------------------------------- #
@dataclass
class _ScenarioBase:
    """Per-scenario constants the period loop reads every step.

    ``pd_mw``/``qd_mw`` are the raw component loads in MW — scaling them and
    dividing by ``base_mva`` reproduces bitwise what
    ``with_scaled_loads`` + ``Network._build_arrays`` would compute, without
    touching component records.
    """

    scenario: Scenario
    pd_mw: np.ndarray
    qd_mw: np.ndarray
    active: np.ndarray   # active-generator indices (the stacked gen axis)

    @classmethod
    def build(cls, scenario: Scenario) -> "_ScenarioBase":
        network = scenario.network
        return cls(
            scenario=scenario,
            pd_mw=np.array([bus.pd for bus in network.buses], dtype=float),
            qd_mw=np.array([bus.qd for bus in network.buses], dtype=float),
            active=np.flatnonzero(network.gen_status))

    def period_arrays(self, multiplier: float, previous_pg: np.ndarray | None,
                      ramp_fraction: float):
        """``(bus_pd, bus_qd, gen_pmin, gen_pmax)`` of one period, per unit.

        Bound arrays cover the **full** generator axis; the caller selects
        the active rows when stacking.
        """
        network = self.scenario.network
        base = network.base_mva
        bus_pd = (self.pd_mw * multiplier) / base
        bus_qd = (self.qd_mw * multiplier) / base
        if previous_pg is None:
            return bus_pd, bus_qd, network.gen_pmin, network.gen_pmax
        lo, hi = ramp_window(network, previous_pg, ramp_fraction)
        return bus_pd, bus_qd, lo, hi


# --------------------------------------------------------------------- #
# The driver                                                              #
# --------------------------------------------------------------------- #
def track_horizon_batch(scenarios, profile,
                        params: AdmmParameters | None = None,
                        warm_start: bool = True,
                        ramp_fraction: float = DEFAULT_RAMP_FRACTION,
                        time_limit_per_period: float | None = None,
                        pool: DevicePool | None = None,
                        cache: WarmStartCache | None = None,
                        ) -> BatchHorizonResult:
    """Track a load profile with a whole scenario fleet per period.

    Parameters
    ----------
    scenarios:
        The base fleet — anything :func:`~repro.scenarios.as_scenario_set`
        accepts (a single network, a list of networks, or a
        :class:`~repro.scenarios.ScenarioSet` built by any generator:
        load-scaled, N-1 contingencies, monte-carlo perturbations, ...).
        Scenario names must be unique: they key the warm-start cache.
    profile:
        A :class:`~repro.tracking.load_profile.LoadProfile` shared by the
        fleet, or one profile per scenario (equal horizon lengths).
    params:
        Shared :class:`~repro.admm.parameters.AdmmParameters` (per-scenario
        penalty overrides on the scenarios still apply).
    warm_start:
        ``True`` seeds every scenario's period-``t`` solve from its period
        ``t−1`` freeze-time state (and, in pooled mode, pins it to the
        worker holding that state); ``False`` is the cold-start ablation.
        Ramp limits couple consecutive periods in **both** modes, exactly
        like the sequential driver.
    time_limit_per_period:
        Per-scenario, per-period ADMM budget; the batched stream receives
        the aggregate (``limit × S``), pooled chunks their own aggregates.
    pool:
        A :class:`~repro.parallel.pool.DevicePool` to shard each period
        across; ``None`` (default) keeps one persistent
        :class:`~repro.admm.batch_solver.BatchAdmmSolver` whose stacked
        arrays are updated in place between periods — the fastest
        single-device path because nothing is ever re-stacked.
    cache:
        A :class:`WarmStartCache` to resume from / fill; default a fresh
        one.  A pre-seeded cache warm-starts period 0 and anchors its ramp
        windows — that is how a horizon is continued across calls.
    """
    base = as_scenario_set(scenarios)
    n_scenarios = len(base)
    keys = base.names
    if len(set(keys)) != n_scenarios:
        raise ConfigurationError(
            "scenario names must be unique — they key the warm-start cache")
    profiles = normalize_profiles(profile, n_scenarios)
    n_periods = profiles[0].n_periods
    cache = cache if cache is not None else WarmStartCache()
    bases = [_ScenarioBase.build(scenario) for scenario in base]

    result = BatchHorizonResult(
        scenario_names=list(keys), warm_start=warm_start,
        n_workers=pool.n_workers if pool is not None else 1,
        executor=pool.executor if pool is not None else "single-device",
        ramp_fraction=ramp_fraction)

    solver: BatchAdmmSolver | None = None
    for period in range(n_periods):
        multipliers = np.array([p.multiplier(period) for p in profiles])
        previous = cache.previous_pg(keys)

        views = []
        per_scenario = []
        for s, scenario_base in enumerate(bases):
            bus_pd, bus_qd, lo, hi = scenario_base.period_arrays(
                multipliers[s], previous[s], ramp_fraction)
            views.append(scenario_base.scenario.network.with_array_overrides(
                bus_pd=bus_pd, bus_qd=bus_qd, gen_pmin=lo, gen_pmax=hi))
            per_scenario.append((bus_pd, bus_qd, lo, hi))

        warm_states = cache.states(keys) if warm_start else None
        # The ρ-cache rides with the warm start: a scenario's converged
        # penalties seed the next period only when its state does too (a
        # cold period re-derives both from the configured starting point).
        adaptive = params is not None and params.adaptive_rho
        penalties = cache.penalties(keys) if (warm_start and adaptive) else None
        start = time.perf_counter()
        if pool is None:
            solver = _solve_single_device(solver, base, bases, views,
                                          per_scenario, params)
            solutions = solver.solve(
                time_limit=(None if time_limit_per_period is None
                            else time_limit_per_period * n_scenarios),
                warm_start=warm_states, penalties=penalties)
            wall = time.perf_counter() - start
            seconds = wall
            workers: list[int | None] = [None] * n_scenarios
            steals = 0
            retries = respawns = 0
            replayed: tuple[int, ...] = ()
        else:
            scenario_set = _period_scenario_set(base, views, period)
            report = pool.solve(scenario_set, params=params,
                                time_limit=time_limit_per_period,
                                warm_states=warm_states,
                                affinity=(cache.affinity(keys)
                                          if warm_start else None),
                                penalties=penalties)
            if report.failed_scenarios:
                # a partial-mode pool can hand back None solutions; a
                # tracking horizon cannot continue past a hole in the fleet
                # (the cache and the ramp coupling both need every state)
                names = [keys[s] for s in report.failed_scenarios]
                raise PoolExecutionError(
                    f"period {period} lost scenarios {names} to exhausted "
                    "retry budgets; a tracking horizon needs every scenario "
                    "— use on_failure='retry' (or 'raise') pools for "
                    "tracking, or widen the budgets",
                    indices=report.failed_scenarios,
                    scenario_names=tuple(names),
                    failures=tuple(report.failures))
            solutions = report.solutions
            wall = time.perf_counter() - start
            seconds = report.makespan_seconds
            worker_map = report.scenario_workers
            workers = [worker_map.get(s) for s in range(n_scenarios)]
            steals = report.n_steals
            retries = report.retries
            respawns = report.respawns
            replayed = report.replayed_scenarios
            # the pool clamps its width to the scenario count; record the
            # width the periods actually ran at
            result.n_workers = report.n_workers

        for s, solution in enumerate(solutions):
            cache.store(keys[s], state=solution.state, pg=solution.pg,
                        worker=workers[s], period=period,
                        rho_pq=solution.rho_pq, rho_va=solution.rho_va)
        # The cache owns the live AdmmStates; the retained per-period
        # solutions are detached from theirs so a long horizon accumulates
        # O(reported arrays), not O(full solver state), per scenario-period.
        result.periods.append(BatchPeriodRecord(
            period=period, multipliers=multipliers,
            solutions=[replace(solution, state=None) for solution in solutions],
            solve_seconds=seconds, wall_seconds=wall, workers=workers,
            steals=steals, retries=retries, respawns=respawns,
            replayed=replayed))
        LOGGER.debug("period %d: %d scenarios, %d iterations, %.2fs%s%s",
                     period, n_scenarios,
                     int(result.periods[-1].iterations.sum()), seconds,
                     f", {steals} steals" if steals else "",
                     (f", {retries} retries/{respawns} respawns"
                      if retries or respawns else ""))
    return result


def _period_scenario_set(base: ScenarioSet, views, period: int) -> ScenarioSet:
    """The effective fleet of one period (view networks, penalties kept)."""
    return ScenarioSet(
        scenarios=tuple(
            Scenario(name=scenario.name, network=view,
                     rho_pq=scenario.rho_pq, rho_va=scenario.rho_va)
            for scenario, view in zip(base.scenarios, views)),
        name=f"{base.name}@t{period}")


def _solve_single_device(solver: BatchAdmmSolver | None, base: ScenarioSet,
                         bases: list[_ScenarioBase], views, per_scenario,
                         params: AdmmParameters | None) -> BatchAdmmSolver:
    """Build the persistent solver once, then step it in place per period."""
    if solver is None:
        return BatchAdmmSolver(_period_scenario_set(base, views, 0),
                               params=params)
    solver.update_scenario_data(
        bus_pd=np.concatenate([arrays[0] for arrays in per_scenario]),
        bus_qd=np.concatenate([arrays[1] for arrays in per_scenario]),
        gen_pmin=np.concatenate([arrays[2][scenario_base.active]
                                 for arrays, scenario_base
                                 in zip(per_scenario, bases)]),
        gen_pmax=np.concatenate([arrays[3][scenario_base.active]
                                 for arrays, scenario_base
                                 in zip(per_scenario, bases)]),
        networks=views)
    return solver
