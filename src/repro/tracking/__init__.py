"""Multi-period solution tracking with warm starts (paper Section IV-C).

* :mod:`repro.tracking.load_profile` — synthetic ISO-New-England-like demand
  profile interpolated to one-minute periods;
* :mod:`repro.tracking.ramping` — generator ramp-rate limits between periods;
* :mod:`repro.tracking.horizon` — the driver that solves a horizon of
  load-perturbed ACOPFs, warm-starting each period from the previous
  solution, for both the ADMM solver and the centralized baseline.
"""

from repro.tracking.load_profile import LoadProfile, make_load_profile
from repro.tracking.horizon import HorizonResult, PeriodRecord, track_horizon
from repro.tracking.ramping import apply_ramp_limits

__all__ = [
    "LoadProfile",
    "make_load_profile",
    "HorizonResult",
    "PeriodRecord",
    "track_horizon",
    "apply_ramp_limits",
]
