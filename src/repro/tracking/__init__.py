"""Multi-period solution tracking with warm starts (paper Section IV-C).

* :mod:`repro.tracking.load_profile` — synthetic ISO-New-England-like demand
  profile interpolated to one-minute periods;
* :mod:`repro.tracking.ramping` — generator ramp-rate limits between periods;
* :mod:`repro.tracking.horizon` — the classic driver that solves a horizon of
  load-perturbed ACOPFs one grid at a time, warm-starting each period from
  the previous solution, for both the ADMM solver and the centralized
  baseline;
* :mod:`repro.tracking.pipeline` — the batched driver: the whole scenario
  fleet solved per period in one stacked stream (or across a
  :class:`~repro.parallel.pool.DevicePool` with shard affinity), warm starts
  threaded through a :class:`~repro.tracking.pipeline.WarmStartCache`.
"""

from repro.tracking.load_profile import LoadProfile, make_load_profile
from repro.tracking.horizon import HorizonResult, PeriodRecord, track_horizon
from repro.tracking.pipeline import (
    BatchHorizonResult,
    BatchPeriodRecord,
    WarmStartCache,
    track_horizon_batch,
)
from repro.tracking.ramping import apply_ramp_limits, ramp_window

__all__ = [
    "LoadProfile",
    "make_load_profile",
    "HorizonResult",
    "PeriodRecord",
    "track_horizon",
    "BatchHorizonResult",
    "BatchPeriodRecord",
    "WarmStartCache",
    "track_horizon_batch",
    "apply_ramp_limits",
    "ramp_window",
]
