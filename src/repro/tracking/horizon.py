"""Multi-period tracking driver (the paper's warm-start experiment).

``track_horizon`` solves one ACOPF per period of a load profile.  The first
period is solved from cold start; every subsequent period is warm-started
from the previous period's solution (unless ``warm_start=False``, which is
the cold-start ablation).  Generator ramp limits of 2 % of ``pmax`` per
period tie consecutive dispatches together exactly as in the paper.

Both solution methods are supported so the benchmark harness can produce the
paper's Figure 1 (cumulative time, ADMM vs. Ipopt), Figure 2 (max constraint
violation per period), and Figure 3 (relative objective gap per period).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.admm.parameters import AdmmParameters, parameters_for_case
from repro.admm.solver import AdmmSolver
from repro.baseline.interior_point import InteriorPointOptions
from repro.baseline.solver import solve_acopf_ipm
from repro.exceptions import ConfigurationError
from repro.grid.network import Network
from repro.logging_utils import get_logger
from repro.tracking.load_profile import LoadProfile
from repro.tracking.ramping import DEFAULT_RAMP_FRACTION, apply_ramp_limits

LOGGER = get_logger("tracking")

METHODS = ("admm", "ipm")


@dataclass
class PeriodRecord:
    """Result of one tracking period."""

    period: int
    load_multiplier: float
    objective: float
    max_violation: float
    solve_seconds: float
    iterations: int
    converged: bool
    pg: np.ndarray
    vm: np.ndarray
    va: np.ndarray


@dataclass
class HorizonResult:
    """Result of a full tracking run."""

    method: str
    network_name: str
    warm_start: bool
    periods: list[PeriodRecord] = field(default_factory=list)

    @property
    def cumulative_seconds(self) -> np.ndarray:
        """Cumulative computation time after each period (Figure 1's y-axis)."""
        return np.cumsum([p.solve_seconds for p in self.periods])

    @property
    def objectives(self) -> np.ndarray:
        return np.array([p.objective for p in self.periods])

    @property
    def violations(self) -> np.ndarray:
        return np.array([p.max_violation for p in self.periods])

    @property
    def iterations(self) -> np.ndarray:
        """Per-period solver iterations (inner ADMM iterations for ADMM runs)."""
        return np.array([p.iterations for p in self.periods], dtype=int)

    @property
    def total_iterations(self) -> int:
        """Total solver iterations over the horizon (the warm-start metric)."""
        return int(self.iterations.sum()) if self.periods else 0

    @property
    def total_seconds(self) -> float:
        return float(sum(p.solve_seconds for p in self.periods))


def track_horizon(network: Network, profile: LoadProfile, method: str = "admm",
                  warm_start: bool = True,
                  admm_params: AdmmParameters | None = None,
                  ipm_options: InteriorPointOptions | None = None,
                  ramp_fraction: float = DEFAULT_RAMP_FRACTION,
                  time_limit_per_period: float | None = None) -> HorizonResult:
    """Solve every period of the profile and return the per-period records."""
    if method not in METHODS:
        raise ConfigurationError(f"unknown tracking method {method!r}; choose from {METHODS}")

    result = HorizonResult(method=method, network_name=network.name, warm_start=warm_start)
    previous_pg: np.ndarray | None = None
    admm_state = None
    ipm_x0 = None

    for period in range(profile.n_periods):
        multiplier = profile.multiplier(period)
        scaled = network.with_scaled_loads(multiplier,
                                           name=f"{network.name}_t{period}")
        if previous_pg is not None:
            scaled = apply_ramp_limits(scaled, previous_pg, fraction=ramp_fraction)

        start = time.perf_counter()
        if method == "admm":
            params = admm_params if admm_params is not None else parameters_for_case(network)
            solver = AdmmSolver(scaled, params=params)
            solution = solver.solve(
                warm_start=admm_state if (warm_start and period > 0) else None,
                time_limit=time_limit_per_period)
            admm_state = solution.state
            record = PeriodRecord(
                period=period, load_multiplier=multiplier,
                objective=solution.objective,
                max_violation=solution.max_constraint_violation,
                solve_seconds=time.perf_counter() - start,
                iterations=solution.inner_iterations, converged=solution.converged,
                pg=solution.pg, vm=solution.vm, va=solution.va)
        else:
            solution = solve_acopf_ipm(
                scaled, options=ipm_options,
                x0=ipm_x0 if (warm_start and period > 0) else None)
            ipm_x0 = solution.as_warm_start()
            record = PeriodRecord(
                period=period, load_multiplier=multiplier,
                objective=solution.objective,
                max_violation=solution.max_constraint_violation,
                solve_seconds=time.perf_counter() - start,
                iterations=solution.iterations, converged=solution.converged,
                pg=solution.pg, vm=solution.vm, va=solution.va)

        previous_pg = record.pg
        result.periods.append(record)
        LOGGER.debug("%s period %d: obj=%.2f viol=%.2e %.2fs",
                     method, period, record.objective, record.max_violation,
                     record.solve_seconds)
    return result


def relative_gap_series(values: np.ndarray, reference: np.ndarray) -> np.ndarray:
    """Elementwise ``|values − reference| / |reference|``, zero-safe.

    Entries whose reference is exactly zero (e.g. a free-generation
    synthetic case) report the absolute gap instead of dividing by zero —
    the one fallback policy shared by :func:`relative_gaps`, the batched
    tracking table, and the tracking benchmark's gap assertion.
    """
    values = np.asarray(values, dtype=float)
    reference = np.asarray(reference, dtype=float)
    denom = np.abs(reference)
    return np.abs(values - reference) / np.where(denom > 0, denom, 1.0)


def relative_gaps(candidate: HorizonResult, reference: HorizonResult) -> np.ndarray:
    """Per-period relative objective gap of ``candidate`` against ``reference``.

    This is Figure 3's series: the ADMM run measured against the centralized
    baseline run over the same horizon.  Zero-reference periods degrade to
    the absolute gap (see :func:`relative_gap_series`).
    """
    if len(candidate.periods) != len(reference.periods):
        raise ConfigurationError("horizon results have different lengths")
    return relative_gap_series(candidate.objectives, reference.objectives)
