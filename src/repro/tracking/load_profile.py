"""Synthetic demand profiles for the tracking experiment.

The paper drives its 30-period (one minute each) horizon with hourly ISO New
England real-time system demand interpolated to minutes, with the load moving
by up to 5 % over the horizon.  That feed is not available offline, so this
module synthesises an hourly profile with the same character — a smooth
morning-ramp-like drift plus small fluctuations — and interpolates it to
minutes exactly the way the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class LoadProfile:
    """Per-period load multipliers applied to every bus load."""

    multipliers: np.ndarray

    @property
    def n_periods(self) -> int:
        return int(self.multipliers.shape[0])

    def multiplier(self, period: int) -> float:
        """Multiplier of one (zero-based) period."""
        return float(self.multipliers[period])

    @property
    def max_drift(self) -> float:
        """Largest relative deviation from the first period."""
        base = self.multipliers[0]
        return float(np.max(np.abs(self.multipliers - base)) / base)


def normalize_profiles(profile, n_scenarios: int) -> list[LoadProfile]:
    """One profile per scenario (a single profile is shared by the fleet).

    The common validation of every fleet × profile expansion: accepts one
    :class:`LoadProfile` (broadcast to the fleet) or a sequence of exactly
    ``n_scenarios`` profiles with equal horizon lengths.
    """
    if isinstance(profile, LoadProfile):
        profiles = [profile] * n_scenarios
    else:
        profiles = list(profile)
        if len(profiles) != n_scenarios:
            raise ConfigurationError(
                f"{len(profiles)} load profiles for {n_scenarios} scenarios")
        if not all(isinstance(p, LoadProfile) for p in profiles):
            raise ConfigurationError(
                "profile must be a LoadProfile or a sequence of LoadProfile")
    lengths = {p.n_periods for p in profiles}
    if len(lengths) != 1:
        raise ConfigurationError(
            f"per-scenario profiles have different lengths: {sorted(lengths)}")
    return profiles


def make_load_profile(n_periods: int = 30, total_drift: float = 0.05,
                      fluctuation: float = 0.003, seed: int = 0,
                      minutes_per_hour_sample: int = 60) -> LoadProfile:
    """Create a per-minute load profile the way the paper builds its horizon.

    Hourly "system demand" samples are generated first (a smooth ramp with
    ``total_drift`` total change plus small random variation), then linearly
    interpolated to one-minute resolution, reproducing the paper's
    interpolation of the ISO-NE hourly feed.

    Parameters
    ----------
    n_periods:
        Number of one-minute periods (30 in the paper).
    total_drift:
        Relative load change across the horizon (≤5 % in the paper).
    fluctuation:
        Standard deviation of the random per-hour variation.
    seed:
        Deterministic seed.
    minutes_per_hour_sample:
        Spacing of the synthetic hourly samples in minutes.
    """
    if n_periods < 1:
        raise ConfigurationError("a load profile needs at least one period")
    if abs(total_drift) >= 0.5:
        raise ConfigurationError("total_drift must stay well below 50%")
    rng = np.random.default_rng(seed)

    n_hours = max(2, int(np.ceil(n_periods / minutes_per_hour_sample)) + 1)
    hour_points = np.arange(n_hours) * minutes_per_hour_sample
    hourly = 1.0 + total_drift * np.linspace(0.0, 1.0, n_hours) \
        + fluctuation * rng.standard_normal(n_hours)
    hourly[0] = 1.0

    minutes = np.arange(n_periods)
    multipliers = np.interp(minutes, hour_points, hourly)
    return LoadProfile(multipliers=multipliers)
