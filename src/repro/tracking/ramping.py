"""Generator ramp-rate limits between tracking periods.

When warm-starting period ``t+1`` from period ``t`` the paper enforces
``|pg_{t+1} − pg_t| ≤ r_g`` with ``r_g`` equal to 2 % of the generator's
maximum real output.  The simplest faithful realisation is to shrink each
generator's dispatch window to the ramp-feasible interval around its previous
set point before the period is solved, which is what both solvers use here.
"""

from __future__ import annotations

import numpy as np

from repro.grid.components import Generator
from repro.grid.network import Network

#: The paper's ramp rate: 2 % of the generator's upper real-power limit.
DEFAULT_RAMP_FRACTION = 0.02


def ramp_limits(network: Network, fraction: float = DEFAULT_RAMP_FRACTION) -> np.ndarray:
    """Per-generator ramp limit in per unit for one period."""
    explicit = network.gen_ramp
    fallback = fraction * network.gen_pmax
    return np.where(explicit > 0, np.minimum(explicit, fallback), fallback)


def apply_ramp_limits(network: Network, previous_pg: np.ndarray,
                      fraction: float = DEFAULT_RAMP_FRACTION,
                      name: str | None = None) -> Network:
    """Return a copy of ``network`` with generator limits tightened to the
    ramp-feasible window around ``previous_pg`` (per unit, full generator axis).
    """
    previous_pg = np.asarray(previous_pg, dtype=float)
    limit = ramp_limits(network, fraction)
    base = network.base_mva

    new_gens = []
    for g, gen in enumerate(network.generators):
        if not gen.in_service:
            new_gens.append(gen)
            continue
        lo = max(network.gen_pmin[g], previous_pg[g] - limit[g]) * base
        hi = min(network.gen_pmax[g], previous_pg[g] + limit[g]) * base
        # Never produce an empty window (can happen if the previous point sat
        # at a bound): keep at least the previous set point inside.
        if lo > hi:
            lo = hi = float(np.clip(previous_pg[g] * base, network.gen_pmin[g] * base,
                                    network.gen_pmax[g] * base))
        new_gens.append(Generator(bus=gen.bus, pg=gen.pg, qg=gen.qg, qmax=gen.qmax,
                                  qmin=gen.qmin, vg=gen.vg, mbase=gen.mbase,
                                  status=gen.status, pmax=hi, pmin=lo,
                                  ramp_rate=gen.ramp_rate))
    return Network(name=name or network.name, base_mva=network.base_mva,
                   buses=list(network.buses), branches=list(network.branches),
                   generators=new_gens, costs=list(network.costs))
