"""Generator ramp-rate limits between tracking periods.

When warm-starting period ``t+1`` from period ``t`` the paper enforces
``|pg_{t+1} − pg_t| ≤ r_g`` with ``r_g`` equal to 2 % of the generator's
maximum real output.  The simplest faithful realisation is to shrink each
generator's dispatch window to the ramp-feasible interval around its previous
set point before the period is solved, which is what both solvers use here.

Two realisations of the same window are provided: :func:`apply_ramp_limits`
rebuilds the generator components (the classic single-network path), and
:func:`ramp_window` returns the identical per-unit bounds as plain arrays so
the batched tracking pipeline can overwrite stacked bound arrays in place —
no per-network rebuilds between periods.  Both go through one shared MW-space
computation, so their results are bitwise identical (including the round trip
through ``base_mva`` that the component rebuild incurs).
"""

from __future__ import annotations

import numpy as np

from repro.grid.components import Generator
from repro.grid.network import Network

#: The paper's ramp rate: 2 % of the generator's upper real-power limit.
DEFAULT_RAMP_FRACTION = 0.02


def ramp_limits(network: Network, fraction: float = DEFAULT_RAMP_FRACTION) -> np.ndarray:
    """Per-generator ramp limit in per unit for one period."""
    explicit = network.gen_ramp
    fallback = fraction * network.gen_pmax
    return np.where(explicit > 0, np.minimum(explicit, fallback), fallback)


def _ramp_window_mw(network: Network, previous_pg: np.ndarray,
                    fraction: float) -> tuple[np.ndarray, np.ndarray]:
    """The ramp-feasible dispatch window in MW (full generator axis).

    Never produces an empty window: when the previous point sat at a bound
    the window collapses onto the (clipped) previous set point.
    """
    limit = ramp_limits(network, fraction)
    base = network.base_mva
    lo = np.maximum(network.gen_pmin, previous_pg - limit) * base
    hi = np.minimum(network.gen_pmax, previous_pg + limit) * base
    fix = np.clip(previous_pg * base, network.gen_pmin * base, network.gen_pmax * base)
    empty = lo > hi
    return np.where(empty, fix, lo), np.where(empty, fix, hi)


def ramp_window(network: Network, previous_pg: np.ndarray,
                fraction: float = DEFAULT_RAMP_FRACTION,
                ) -> tuple[np.ndarray, np.ndarray]:
    """Ramp-feasible ``(pmin, pmax)`` in per unit, over the full generator axis.

    Bitwise the bound arrays a network rebuilt by :func:`apply_ramp_limits`
    would expose (the MW values divided by ``base_mva`` exactly as
    ``Network._build_arrays`` divides them), which is what lets the tracking
    pipeline apply ramp limits as vectorised updates on stacked
    :class:`~repro.admm.data.ComponentData` bound arrays.  Out-of-service
    generators keep their (pinned-to-zero) bounds.
    """
    previous_pg = np.asarray(previous_pg, dtype=float)
    lo_mw, hi_mw = _ramp_window_mw(network, previous_pg, fraction)
    base = network.base_mva
    active = network.gen_status
    lo = np.where(active, lo_mw / base, network.gen_pmin)
    hi = np.where(active, hi_mw / base, network.gen_pmax)
    return lo, hi


def apply_ramp_limits(network: Network, previous_pg: np.ndarray,
                      fraction: float = DEFAULT_RAMP_FRACTION,
                      name: str | None = None) -> Network:
    """Return a copy of ``network`` with generator limits tightened to the
    ramp-feasible window around ``previous_pg`` (per unit, full generator axis).
    """
    previous_pg = np.asarray(previous_pg, dtype=float)
    lo_mw, hi_mw = _ramp_window_mw(network, previous_pg, fraction)

    new_gens = []
    for g, gen in enumerate(network.generators):
        if not gen.in_service:
            new_gens.append(gen)
            continue
        new_gens.append(Generator(bus=gen.bus, pg=gen.pg, qg=gen.qg, qmax=gen.qmax,
                                  qmin=gen.qmin, vg=gen.vg, mbase=gen.mbase,
                                  status=gen.status, pmax=float(hi_mw[g]),
                                  pmin=float(lo_mw[g]),
                                  ramp_rate=gen.ramp_rate))
    return Network(name=name or network.name, base_mva=network.base_mva,
                   buses=list(network.buses), branches=list(network.branches),
                   generators=new_gens, costs=list(network.costs))
