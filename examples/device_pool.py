#!/usr/bin/env python
"""Multi-device scenario sharding: solve one batch across a DevicePool.

The paper fills one GPU with the components of one network; the pool fills
*many* (simulated) devices with independent scenarios.  This example builds
a heterogeneous batch — N-1 contingencies of one case, each screened at its
own operating point — and solves it three ways:

1. one shared single-device batched stream (the PR-1 path),
2. a ``DevicePool`` with the in-process sequential executor (the
   deterministic debugging path) at 1, 2, and 4 workers, reporting the
   *makespan* — the max per-worker busy time, i.e. the wall-clock a fleet
   of real devices would need,
3. a 2-worker ``multiprocessing`` pool (the default executor), which uses
   real OS processes and therefore real cores when the host has them.

Per-scenario solutions are bit-for-bit identical in every mode — sharding
only changes *where* a scenario runs.

Run with::

    python examples/device_pool.py [case-name]
"""

from __future__ import annotations

import sys

import numpy as np

import repro
from repro.analysis.reporting import render_table
from repro.parallel import DevicePool


def build_batch(case: str) -> repro.ScenarioSet:
    network = repro.load_case(case)
    factors = (0.80, 0.90, 0.95, 1.00)
    scenarios = None
    for factor in factors:
        scaled = network.with_scaled_loads(factor, name=f"{case}@x{factor:g}")
        batch = repro.contingency_scenarios(scaled)
        batch = repro.ScenarioSet(scenarios=batch.scenarios[:2],
                                  name=batch.name)
        scenarios = batch if scenarios is None else scenarios.extended(batch)
    return scenarios


def main() -> int:
    case = sys.argv[1] if len(sys.argv) > 1 else "case9"
    scenario_set = build_batch(case)
    params = repro.AdmmParameters(max_outer=2, max_inner=30)
    print(scenario_set.describe())
    print()

    reference = repro.solve_acopf_admm_batch(scenario_set, params=params)

    rows = []
    for workers in (1, 2, 4):
        pool = DevicePool(n_workers=workers, executor="sequential")
        report = pool.solve(scenario_set, params=params)
        for pooled, batched in zip(report.solutions, reference):
            assert np.array_equal(pooled.vm, batched.vm)
            assert pooled.inner_iterations == batched.inner_iterations
        rows.append([f"sequential x{report.n_workers}",
                     report.makespan_seconds, report.total_busy_seconds,
                     report.parallel_speedup, report.n_steals])

    pool = DevicePool(n_workers=2, executor="process")
    report = pool.solve(scenario_set, params=params)
    for pooled, batched in zip(report.solutions, reference):
        assert np.array_equal(pooled.vm, batched.vm)
    rows.append([f"process x{report.n_workers}", report.makespan_seconds,
                 report.total_busy_seconds, report.parallel_speedup,
                 report.n_steals])

    print(render_table(
        ["pool", "makespan (s)", "total busy (s)", "speedup", "steals"],
        rows, title=f"DevicePool scaling on {len(scenario_set)} scenarios of {case} "
                    "(identical solutions in every mode)"))
    print()
    print("fleet-wide merged kernel metrics (last run):")
    for name, stats in report.device["kernels"].items():
        print(f"  {name:<20} launches={stats['launches']:<6d} "
              f"total={stats['total_seconds']:.3f} s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
