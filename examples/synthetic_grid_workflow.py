#!/usr/bin/env python
"""End-to-end workflow on a synthetic grid.

Builds a pegase-style synthetic transmission grid (the stand-in for the
paper's proprietary-format large cases), validates it, runs a Newton power
flow at a nominal dispatch, exports it to a MATPOWER ``.m`` file, and solves
the ACOPF with both solvers.  This is the path a user would follow to apply
the library to their own system.

Run with::

    python examples/synthetic_grid_workflow.py [n-buses]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

import repro
from repro.grid.matpower import write_case
from repro.grid.validation import validate_network
from repro.powerflow import solve_power_flow


def main() -> int:
    n_bus = int(sys.argv[1]) if len(sys.argv) > 1 else 60

    print(f"Generating a pegase-style synthetic grid with {n_bus} buses ...")
    network = repro.make_synthetic_grid(n_bus=n_bus, style="pegase", seed=42)
    print(f"  {network.summary()}")

    report = validate_network(network)
    print(f"  validation: {'OK' if report.ok else 'FAILED'} "
          f"({len(report.warnings)} warnings)")
    for warning in report.warnings:
        print(f"    warning: {warning}")

    pf = solve_power_flow(network)
    print(f"  power flow: converged={pf.converged} in {pf.iterations} iterations, "
          f"max mismatch {pf.max_mismatch:.2e} pu")

    with tempfile.TemporaryDirectory() as tmp:
        path = write_case(network, Path(tmp) / "synthetic_case.m")
        size_kb = path.stat().st_size / 1024
        print(f"  exported MATPOWER file: {path.name} ({size_kb:.1f} kB)")
        reloaded = repro.load_case(path)
        print(f"  reloaded from disk: {reloaded.summary()}")

    print("\nSolving the ACOPF ...")
    baseline = repro.solve_acopf_ipm(network)
    print(f"  baseline objective {baseline.objective:.2f} $/h "
          f"({baseline.iterations} IPM iterations, {baseline.solve_seconds:.2f}s)")

    solution = repro.solve_acopf_admm(network)
    gap = repro.relative_objective_gap(solution.objective, baseline.objective)
    print(f"  ADMM objective {solution.objective:.2f} $/h, "
          f"violation {solution.max_constraint_violation:.2e} pu, "
          f"gap {100 * gap:.3f}%, {solution.inner_iterations} inner iterations, "
          f"{solution.solve_seconds:.2f}s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
