#!/usr/bin/env python
"""Ablation: how the consensus penalties affect ADMM convergence.

The paper fixes the penalty parameters per case (Table I) and notes in its
conclusion that automatic penalty selection is the main avenue for
improvement.  This example sweeps ``(rho_pq, rho_va)`` over a small grid on
one case — as a *scenario batch*: every penalty pair becomes an independent
scenario of the same network and the whole sweep runs in one stacked ADMM
kernel stream (see ``repro.scenarios``), so the sweep costs one batched
solve instead of one solve per pair.  Reported per-pair iterations, time,
final violation, and objective gap show the trade-off the paper describes
(large penalties converge faster but put less weight on the objective).

Run with::

    python examples/penalty_sweep.py [case-name]
"""

from __future__ import annotations

import sys

import repro
from repro.analysis.reporting import render_table
from repro.parallel.device import SimulatedDevice


def main() -> int:
    case = sys.argv[1] if len(sys.argv) > 1 else "case9"
    network = repro.load_case(case)
    baseline = repro.solve_acopf_ipm(network)
    print(f"{network.summary()}; baseline objective {baseline.objective:.2f} $/h\n")

    sweep = [(1e2, 1e4), (4e2, 4e4), (1e3, 1e5), (4e3, 4e5)]
    scenarios = repro.penalty_sweep_scenarios(network, sweep)
    device = SimulatedDevice()
    solutions = repro.solve_acopf_admm_batch(scenarios, device=device)

    rows = []
    for (rho_pq, rho_va), solution in zip(sweep, solutions):
        gap = repro.relative_objective_gap(solution.objective, baseline.objective)
        rows.append([rho_pq, rho_va, solution.inner_iterations,
                     solution.solve_seconds, solution.max_constraint_violation,
                     100.0 * gap])

    print(render_table(
        ["rho_pq", "rho_va", "iterations", "time (s)", "||c(x)||inf", "gap (%)"],
        rows, title=f"Penalty sweep on {case} ({len(sweep)} scenarios, one batch)"))
    print()
    print(device.report())
    print("\nLarger penalties enforce consensus more aggressively (fewer iterations,"
          "\nsmaller violation) at the cost of a larger objective gap — the trade-off"
          "\nthe paper manages with its per-case Table I values.  The whole sweep"
          "\nshared one kernel stream; per-pair time is the stream's elapsed time"
          "\nwhen that scenario froze.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
