#!/usr/bin/env python
"""Ablation: how the consensus penalties affect ADMM convergence.

The paper fixes the penalty parameters per case (Table I) and notes in its
conclusion that automatic penalty selection is the main avenue for
improvement.  This example sweeps ``(rho_pq, rho_va)`` over a small grid on
one case and reports iterations, time, final violation, and objective gap —
the trade-off the paper describes (large penalties converge faster but put
less weight on the objective).

Run with::

    python examples/penalty_sweep.py [case-name]
"""

from __future__ import annotations

import sys

import repro
from repro.analysis.reporting import render_table


def main() -> int:
    case = sys.argv[1] if len(sys.argv) > 1 else "case9"
    network = repro.load_case(case)
    baseline = repro.solve_acopf_ipm(network)
    print(f"{network.summary()}; baseline objective {baseline.objective:.2f} $/h\n")

    sweep = [(1e2, 1e4), (4e2, 4e4), (1e3, 1e5), (4e3, 4e5)]
    rows = []
    for rho_pq, rho_va in sweep:
        params = repro.AdmmParameters(rho_pq=rho_pq, rho_va=rho_va)
        solution = repro.solve_acopf_admm(network, params=params)
        gap = repro.relative_objective_gap(solution.objective, baseline.objective)
        rows.append([rho_pq, rho_va, solution.inner_iterations,
                     solution.solve_seconds, solution.max_constraint_violation,
                     100.0 * gap])

    print(render_table(
        ["rho_pq", "rho_va", "iterations", "time (s)", "||c(x)||inf", "gap (%)"],
        rows, title=f"Penalty sweep on {case}"))
    print("\nLarger penalties enforce consensus more aggressively (fewer iterations,"
          "\nsmaller violation) at the cost of a larger objective gap — the trade-off"
          "\nthe paper manages with its per-case Table I values.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
