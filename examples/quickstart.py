#!/usr/bin/env python
"""Quickstart: solve one ACOPF with the GPU-style ADMM solver.

Loads the 9-bus case, solves it from cold start with the component-based
two-level ADMM (the paper's method), solves the same case with the
centralized interior-point baseline (the paper's Ipopt reference), and prints
the comparison the paper's Table II reports: iterations, wall-clock time,
maximum constraint violation, and the relative objective gap.

Run with::

    python examples/quickstart.py [case-name]
"""

from __future__ import annotations

import sys

import repro
from repro.analysis.reporting import render_table, summarize_speedup
from repro.logging_utils import enable_console_logging


def main() -> int:
    enable_console_logging()
    case = sys.argv[1] if len(sys.argv) > 1 else "case9"

    network = repro.load_case(case)
    print(f"Loaded {network.summary()}")

    print("\nSolving with the centralized interior-point baseline ...")
    baseline = repro.solve_acopf_ipm(network)
    print(f"  objective = {baseline.objective:.2f} $/h, "
          f"converged = {baseline.converged}, "
          f"{baseline.iterations} iterations, {baseline.solve_seconds:.2f}s")

    print("\nSolving with the component-based two-level ADMM (GPU-style) ...")
    params = repro.parameters_for_case(network)
    solution = repro.solve_acopf_admm(network, params=params)
    gap = repro.relative_objective_gap(solution.objective, baseline.objective)

    print(render_table(
        ["metric", "ADMM", "baseline"],
        [
            ["objective ($/h)", solution.objective, baseline.objective],
            ["max violation (pu)", solution.max_constraint_violation,
             baseline.max_constraint_violation],
            ["iterations", solution.inner_iterations, baseline.iterations],
            ["time (s)", solution.solve_seconds, baseline.solve_seconds],
        ],
        title=f"\nCold-start comparison on {case}"))
    print(f"relative objective gap: {100 * gap:.3f}%")
    print(summarize_speedup(solution.solve_seconds, baseline.solve_seconds))

    # The ADMM solution reports voltages from the bus components and
    # generator set points from the generator components.
    print("\nGenerator dispatch (per unit):")
    for g, (pg, qg) in enumerate(zip(solution.pg, solution.qg)):
        if network.gen_status[g]:
            print(f"  generator {g} at bus {network.generators[g].bus}: "
                  f"pg = {pg:.4f}, qg = {qg:.4f}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
