#!/usr/bin/env python
"""Batched rolling-horizon tracking: a whole fleet per period, warm-started.

The paper tracks a drifting load profile by warm-starting each period from
the previous solution — one grid at a time.  This example runs the batched
pipeline instead: a small fleet (nominal case, a load-stressed variant, and
an N-1 outage) follows the same profile, every period solved as one
scenario batch, with a ``WarmStartCache`` carrying each scenario's state —
and its pool-worker affinity — across periods.

Three runs are compared:

1. warm-started, single device (one stacked stream per period; between
   periods only the stacked load/bound arrays are updated in place),
2. the cold-start ablation (same ramp coupling, no state reuse),
3. warm-started across a 2-worker ``DevicePool`` with shard affinity —
   per-period results are bit-for-bit those of run 1; only *where* each
   scenario runs changes.

Run with::

    python examples/tracking_pipeline.py [case-name] [n-periods]
"""

from __future__ import annotations

import sys

import numpy as np

import repro
from repro.analysis.experiments import render_tracking_table, tracking_rows
from repro.parallel import DevicePool


def build_fleet(case: str) -> repro.ScenarioSet:
    network = repro.load_case(case)
    nominal = repro.Scenario(name=f"{case}@nominal", network=network)
    stressed = repro.Scenario(
        name=f"{case}@x1.05",
        network=network.with_scaled_loads(1.05, name=f"{case}@x1.05"))
    outage = repro.contingency_scenarios(network).scenarios[0]
    return repro.ScenarioSet(scenarios=(nominal, stressed, outage),
                             name=f"{case}-tracking-fleet")


def main() -> int:
    case = sys.argv[1] if len(sys.argv) > 1 else "case9"
    n_periods = int(sys.argv[2]) if len(sys.argv) > 2 else 6

    network = repro.load_case(case)
    fleet = build_fleet(case)
    profile = repro.make_load_profile(n_periods=n_periods, seed=0)
    params = repro.parameters_for_case(network, outer_tol=1e-2,
                                       inner_tol_primal=1e-3,
                                       inner_tol_dual=1e-2)
    print(fleet.describe())
    print(f"profile: {n_periods} periods, multipliers "
          f"{profile.multipliers.min():.3f}..{profile.multipliers.max():.3f}\n")

    warm = repro.track_horizon_batch(fleet, profile, params=params,
                                     warm_start=True)
    cold = repro.track_horizon_batch(fleet, profile, params=params,
                                     warm_start=False)

    print(render_tracking_table(
        tracking_rows(warm, cold),
        title=f"warm start vs cold ablation ({len(fleet)} scenarios x "
              f"{n_periods} periods)"))
    print()

    pool = DevicePool(n_workers=2, executor="sequential", chunk_scenarios=1)
    pooled = repro.track_horizon_batch(fleet, profile, params=params,
                                       warm_start=True, pool=pool)
    identical = all(
        np.array_equal(a.pg, b.pg) and a.inner_iterations == b.inner_iterations
        for wp, pp in zip(warm.periods, pooled.periods)
        for a, b in zip(wp.solutions, pp.solutions))
    placements = [period.workers for period in pooled.periods]
    print(f"2-worker pooled warm run: makespan {pooled.total_seconds:.2f}s "
          f"(single device {warm.total_seconds:.2f}s), "
          f"{pooled.n_steals} steals")
    print(f"scenario placement per period: {placements}")
    print(f"pooled results identical to single device: {identical}")

    series = warm.scenario_result(fleet.names[2])
    print(f"\nper-scenario series ({fleet.names[2]}): objectives "
          f"{np.array2string(series.objectives, precision=1)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
