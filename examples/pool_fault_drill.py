#!/usr/bin/env python
"""Fault drill: crash and stall a 2-worker DevicePool, recover bitwise.

The CI fault-injection leg runs this drill.  A scripted
:class:`~repro.parallel.faults.FaultPlan` — taken from the
``REPRO_FAULT_PLAN`` environment variable when set, otherwise the built-in
"crash worker 1 on its 2nd chunk, stall worker 0 for 30 s on its 3rd" —
is driven through a 2-worker **process-executor** pool with
``on_failure="retry"``: the crash kills a real worker process
(``os._exit`` mid-dispatch), the stall trips the ``chunk_timeout``
deadline and gets the worker terminated.  Both chunks are replayed and
both workers respawned, and the drill asserts the recovered solutions are
**bitwise identical** to a failure-free run, with exactly the expected
``retries``/``respawns`` accounting and no failed scenarios.

Run with::

    python examples/pool_fault_drill.py
    REPRO_FAULT_PLAN="crash(worker=0,chunk=1)" python examples/pool_fault_drill.py
"""

from __future__ import annotations

import os

import numpy as np

import repro
from repro.parallel import DevicePool, FaultPlan
from repro.parallel.faults import FAULT_PLAN_ENV

DEFAULT_PLAN = "crash(worker=1,chunk=2);stall(worker=0,chunk=3,seconds=30)"


def main() -> int:
    network = repro.load_case("case9")
    factors = [0.80 + 0.05 * k for k in range(8)]
    scenario_set = repro.load_scaling_scenarios(network, factors)
    params = repro.AdmmParameters(max_outer=2, max_inner=30)

    spec = os.environ.get(FAULT_PLAN_ENV, "").strip() or DEFAULT_PLAN
    plan = FaultPlan.parse(spec)
    print(f"fault plan: {spec}")
    expected_losses = len(plan.specs)

    reference = repro.solve_acopf_admm_batch(scenario_set, params=params)

    pool = DevicePool(n_workers=2, executor="process", chunk_scenarios=1,
                      on_failure="retry", chunk_timeout=5.0,
                      respawn_backoff=0.05, fault_plan=plan)
    report = pool.solve(scenario_set, params=params)

    for pooled, batched in zip(report.solutions, reference):
        assert pooled.inner_iterations == batched.inner_iterations
        assert np.array_equal(pooled.vm, batched.vm)
        assert np.array_equal(pooled.va, batched.va)
        assert np.array_equal(pooled.pg, batched.pg)
        assert np.array_equal(pooled.qg, batched.qg)
    print(f"recovered solutions: bitwise identical to the failure-free run "
          f"({len(report.solutions)} scenarios)")

    assert plan.n_fired == expected_losses, (
        f"plan fired {plan.n_fired}/{expected_losses} scheduled faults — "
        "the drill did not exercise every scripted failure")
    assert len(report.failures) == expected_losses, (
        f"{len(report.failures)} chunk failures for {expected_losses} faults: "
        f"{[f.describe() for f in report.failures]}")
    assert report.retries == expected_losses
    assert report.failed_scenarios == (), (
        f"scenarios lost for good: {report.failed_scenarios}")
    losses = [f.kind for f in report.failures]
    print(f"chunk losses: {sorted(losses)}; retries={report.retries}, "
          f"respawns={report.respawns}, "
          f"replayed scenarios={list(report.replayed_scenarios)}")
    # every lost worker (death or timeout, never a plain exception) costs
    # exactly one respawn when the budget suffices
    assert report.respawns == sum(
        1 for kind in losses if kind in ("death", "timeout"))
    print("fault drill passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
