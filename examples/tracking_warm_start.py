#!/usr/bin/env python
"""Tracking ACOPF solutions under load fluctuations with warm starts.

Reproduces (at example scale) the paper's Section IV-C experiment: a horizon
of one-minute periods whose loads follow an interpolated demand profile, with
each period warm-started from the previous solution and generator ramp
limits of 2 % of ``pmax`` per period.  Prints the per-period series behind
the paper's Figures 1–3 (cumulative time, maximum violation, relative gap).

Run with::

    python examples/tracking_warm_start.py [case-name] [n-periods]
"""

from __future__ import annotations

import sys

import repro
from repro.analysis.experiments import (
    render_figure1,
    render_figure2,
    render_figure3,
    tracking_experiment,
)
from repro.logging_utils import enable_console_logging


def main() -> int:
    enable_console_logging()
    case = sys.argv[1] if len(sys.argv) > 1 else "case9"
    n_periods = int(sys.argv[2]) if len(sys.argv) > 2 else 10

    print(f"Tracking {case} over {n_periods} one-minute periods "
          f"(load drift <= 5%, ramp limit 2% of pmax per period)\n")
    experiment = tracking_experiment(case, n_periods=n_periods)

    print(render_figure1(experiment))
    print()
    print(render_figure2(experiment))
    print()
    print(render_figure3(experiment))

    warm_periods = experiment.admm_cumulative_seconds[1:] - experiment.admm_cumulative_seconds[:-1]
    cold = experiment.admm_cumulative_seconds[0]
    if warm_periods.size:
        print(f"\ncold-start period: {cold:.2f}s, "
              f"mean warm-started period: {warm_periods.mean():.2f}s "
              f"(x{cold / max(warm_periods.mean(), 1e-9):.1f} faster)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
