"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.grid.cases import load_case
from repro.grid.synthetic import make_synthetic_grid


@pytest.fixture(scope="session")
def case3():
    return load_case("case3")


@pytest.fixture(scope="session")
def case5():
    return load_case("case5")


@pytest.fixture(scope="session")
def case9():
    return load_case("case9")


@pytest.fixture(scope="session")
def small_synthetic():
    """A small synthetic pegase-style grid shared across tests."""
    return make_synthetic_grid(n_bus=30, n_gen=6, n_branch=41, style="pegase", seed=7)


@pytest.fixture()
def rng():
    return np.random.default_rng(12345)
