"""Unit tests for the Network container."""

import numpy as np
import pytest

from repro.exceptions import DataError
from repro.grid.components import Branch, Bus, BusType, Generator, GeneratorCost
from repro.grid.network import Network


def tiny_components():
    buses = [Bus(index=1, bus_type=BusType.REF), Bus(index=2, pd=50.0, qd=10.0)]
    branches = [Branch(from_bus=1, to_bus=2, r=0.01, x=0.1, b=0.02, rate_a=100.0)]
    generators = [Generator(bus=1, pmax=100.0, pmin=0.0, qmax=50.0, qmin=-50.0)]
    costs = [GeneratorCost(coefficients=(0.1, 10.0, 0.0))]
    return buses, branches, generators, costs


class TestConstruction:
    def test_basic_counts(self, case9):
        assert case9.n_bus == 9
        assert case9.n_branch == 9
        assert case9.n_gen == 3
        assert case9.n_gen_active == 3

    def test_per_unit_loads(self, case9):
        # Bus 5 has 90 MW / 30 MVAr on a 100 MVA base.
        idx = case9.bus_index_map[5]
        assert np.isclose(case9.bus_pd[idx], 0.9)
        assert np.isclose(case9.bus_qd[idx], 0.3)

    def test_cost_conversion_to_per_unit(self, case9):
        # cost(p_pu) must equal cost(p_MW) for the same physical power.
        p_mw = 100.0
        p_pu = 1.0
        cost_mw = 0.11 * p_mw ** 2 + 5 * p_mw + 150
        assert np.isclose(case9.gen_cost_c2[0] * p_pu ** 2
                          + case9.gen_cost_c1[0] * p_pu + case9.gen_cost_c0[0], cost_mw)

    def test_reference_bus(self, case9):
        assert case9.bus_type[case9.ref_bus] == int(BusType.REF)

    def test_from_components_synthesises_costs(self):
        buses, branches, generators, _ = tiny_components()
        net = Network.from_components("tiny", 100.0, buses, branches, generators)
        assert len(net.costs) == len(generators)

    def test_admittance_matches_direct_computation(self, case9):
        # Branch 4-5: r=0.017, x=0.092, b=0.158, no transformer.
        live = case9.live_branches
        idx = next(i for i, br in enumerate(live) if br.from_bus == 4 and br.to_bus == 5)
        r, x, b = 0.017, 0.092, 0.158
        ys = 1.0 / complex(r, x)
        ytt = ys + 0.5j * b
        assert np.isclose(case9.branch_g_jj[idx], ytt.real)
        assert np.isclose(case9.branch_b_jj[idx], ytt.imag)
        assert np.isclose(case9.branch_g_ij[idx], (-ys).real)
        assert np.isclose(case9.branch_b_ij[idx], (-ys).imag)

    def test_transformer_scaling(self):
        buses, branches, generators, costs = tiny_components()
        branches[0].tap = 0.95
        net = Network("xfmr", 100.0, buses, branches, generators, costs)
        ys = 1.0 / complex(0.01, 0.1)
        ytt = ys + 0.5j * 0.02
        assert np.isclose(net.branch_g_ii[0], (ytt / 0.95 ** 2).real)
        assert np.isclose(net.branch_g_jj[0], ytt.real)

    def test_adjacency_lists(self, case9):
        # Every branch end appears exactly once in the incidence lists.
        total = sum(len(ends) for ends in case9.lines_at_bus)
        assert total == 2 * case9.n_branch
        for g, bus in enumerate(case9.gen_bus):
            assert g in case9.gens_at_bus[bus]

    def test_unlimited_branch_flagged(self):
        buses, branches, generators, costs = tiny_components()
        branches[0].rate_a = 0.0
        net = Network("nolimit", 100.0, buses, branches, generators, costs)
        assert not net.branch_has_limit[0]


class TestValidationErrors:
    def test_duplicate_bus(self):
        buses, branches, generators, costs = tiny_components()
        buses.append(Bus(index=1))
        with pytest.raises(DataError, match="duplicate"):
            Network("bad", 100.0, buses, branches, generators, costs)

    def test_unknown_branch_bus(self):
        buses, branches, generators, costs = tiny_components()
        branches.append(Branch(from_bus=1, to_bus=99, x=0.1))
        with pytest.raises(DataError, match="unknown bus"):
            Network("bad", 100.0, buses, branches, generators, costs)

    def test_self_loop(self):
        buses, branches, generators, costs = tiny_components()
        branches.append(Branch(from_bus=2, to_bus=2, x=0.1))
        with pytest.raises(DataError, match="itself"):
            Network("bad", 100.0, buses, branches, generators, costs)

    def test_zero_impedance(self):
        buses, branches, generators, costs = tiny_components()
        branches[0].r = 0.0
        branches[0].x = 0.0
        with pytest.raises(DataError, match="zero series impedance"):
            Network("bad", 100.0, buses, branches, generators, costs)

    def test_missing_reference(self):
        buses, branches, generators, costs = tiny_components()
        buses[0].bus_type = BusType.PV
        with pytest.raises(DataError, match="reference"):
            Network("bad", 100.0, buses, branches, generators, costs)

    def test_unknown_generator_bus(self):
        buses, branches, generators, costs = tiny_components()
        generators.append(Generator(bus=42))
        costs.append(GeneratorCost())
        with pytest.raises(DataError, match="unknown bus"):
            Network("bad", 100.0, buses, branches, generators, costs)

    def test_cost_count_mismatch(self):
        buses, branches, generators, costs = tiny_components()
        with pytest.raises(DataError, match="cost"):
            Network("bad", 100.0, buses, branches, generators, costs + [GeneratorCost()])

    def test_nonpositive_base(self):
        buses, branches, generators, costs = tiny_components()
        with pytest.raises(DataError, match="base MVA"):
            Network("bad", 0.0, buses, branches, generators, costs)

    def test_no_buses(self):
        with pytest.raises(DataError):
            Network("bad", 100.0, [], [], [], [])


class TestLoadScaling:
    def test_scalar_scaling(self, case9):
        scaled = case9.with_scaled_loads(1.05)
        assert np.allclose(scaled.bus_pd, 1.05 * case9.bus_pd)
        assert np.allclose(scaled.bus_qd, 1.05 * case9.bus_qd)
        # Everything else untouched.
        assert np.allclose(scaled.gen_pmax, case9.gen_pmax)
        assert scaled.n_branch == case9.n_branch

    def test_per_bus_scaling(self, case9):
        factors = np.linspace(0.9, 1.1, case9.n_bus)
        scaled = case9.with_scaled_loads(factors)
        assert np.allclose(scaled.bus_pd, factors * case9.bus_pd)

    def test_wrong_length_vector_rejected(self, case9):
        with pytest.raises(DataError):
            case9.with_scaled_loads(np.ones(3))

    def test_original_unmodified(self, case9):
        before = case9.bus_pd.copy()
        case9.with_scaled_loads(2.0)
        assert np.array_equal(case9.bus_pd, before)


class TestDerivedQuantities:
    def test_total_load(self, case9):
        p, q = case9.total_load()
        assert np.isclose(p, (90 + 100 + 125) / 100.0)
        assert np.isclose(q, (30 + 35 + 50) / 100.0)

    def test_generation_cost_matches_manual(self, case9):
        pg = np.array([0.8, 1.2, 0.9])
        manual = sum(case9.gen_cost_c2[i] * pg[i] ** 2 + case9.gen_cost_c1[i] * pg[i]
                     + case9.gen_cost_c0[i] for i in range(3))
        assert np.isclose(case9.generation_cost(pg), manual)

    def test_summary_mentions_counts(self, case9):
        text = case9.summary()
        assert "9 buses" in text and "3 generators" in text
