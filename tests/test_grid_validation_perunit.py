"""Tests for network validation and per-unit helpers."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.grid import perunit
from repro.grid.components import Branch, Bus, BusType, Generator, GeneratorCost
from repro.grid.network import Network
from repro.grid.validation import connected_components, validate_network


def island_network():
    """Two disconnected 2-bus islands (invalid)."""
    buses = [Bus(index=i, bus_type=BusType.REF if i == 1 else BusType.PQ, pd=10.0)
             for i in range(1, 5)]
    branches = [Branch(from_bus=1, to_bus=2, x=0.1),
                Branch(from_bus=3, to_bus=4, x=0.1)]
    gens = [Generator(bus=1, pmax=100.0)]
    return Network("islands", 100.0, buses, branches, gens, [GeneratorCost()])


class TestValidation:
    def test_ok_network(self, case9):
        assert validate_network(case9).ok

    def test_detects_islands(self):
        report = validate_network(island_network())
        assert not report.ok
        assert any("island" in e for e in report.errors)

    def test_connected_components_counts(self):
        comps = connected_components(island_network())
        assert len(comps) == 2
        assert sorted(len(c) for c in comps) == [2, 2]

    def test_detects_capacity_shortfall(self):
        buses = [Bus(index=1, bus_type=BusType.REF), Bus(index=2, pd=500.0, qd=0.0)]
        branches = [Branch(from_bus=1, to_bus=2, x=0.1)]
        gens = [Generator(bus=1, pmax=100.0)]
        net = Network("short", 100.0, buses, branches, gens, [GeneratorCost()])
        report = validate_network(net)
        assert any("capacity" in e for e in report.errors)

    def test_detects_reference_without_generator(self, case9):
        buses = [Bus(index=1, bus_type=BusType.REF), Bus(index=2, pd=10.0)]
        branches = [Branch(from_bus=1, to_bus=2, x=0.1)]
        gens = [Generator(bus=2, pmax=100.0)]
        net = Network("norefgen", 100.0, buses, branches, gens, [GeneratorCost()])
        report = validate_network(net)
        assert any("reference" in w for w in report.warnings)

    def test_report_string(self):
        report = validate_network(island_network())
        assert "errors" in str(report)


class TestPerUnit:
    @given(st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
           st.floats(min_value=1.0, max_value=1000.0))
    def test_power_round_trip(self, mw, base):
        pu = perunit.mw_to_pu(mw, base)
        assert np.isclose(perunit.pu_to_mw(pu, base), mw, atol=1e-9)

    @given(st.floats(min_value=0.01, max_value=1e3, allow_nan=False),
           st.floats(min_value=10.0, max_value=765.0),
           st.floats(min_value=1.0, max_value=1000.0))
    def test_impedance_round_trip(self, ohms, kv, base):
        z = perunit.impedance_to_pu(ohms, kv, base)
        assert np.isclose(perunit.impedance_from_pu(z, kv, base), ohms, rtol=1e-12)

    def test_angle_round_trip(self):
        deg = np.array([0.0, 30.0, -90.0, 180.0])
        assert np.allclose(perunit.radians_to_degrees(perunit.degrees_to_radians(deg)), deg)

    @given(st.floats(min_value=0.0, max_value=1.0), st.floats(min_value=0.0, max_value=100.0),
           st.floats(min_value=0.0, max_value=1000.0))
    def test_cost_coefficient_round_trip(self, c2, c1, c0):
        base = 100.0
        pu = perunit.cost_coefficients_to_pu(c2, c1, c0, base)
        back = perunit.cost_coefficients_from_pu(*pu, base)
        assert np.allclose(back, (c2, c1, c0))

    def test_cost_conversion_preserves_value(self):
        c2, c1, c0 = 0.11, 5.0, 150.0
        base = 100.0
        c2p, c1p, c0p = perunit.cost_coefficients_to_pu(c2, c1, c0, base)
        p_mw, p_pu = 80.0, 0.8
        assert np.isclose(c2 * p_mw ** 2 + c1 * p_mw + c0,
                          c2p * p_pu ** 2 + c1p * p_pu + c0p)

    def test_invalid_base_rejected(self):
        with pytest.raises(ValueError):
            perunit.mw_to_pu(10.0, 0.0)
        with pytest.raises(ValueError):
            perunit.pu_to_mw(10.0, -5.0)
