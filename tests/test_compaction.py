"""Stream-compaction engine: primitives, TRON windows, ADMM scenario packing.

The contract under test is strict: compacted execution must be *bitwise*
identical to the full sweep — same solutions, same per-problem /
per-scenario iteration counts, same trajectories — because every kernel is
row- (or scenario-) separable and compaction only changes which rows share
a batch.  The tests therefore compare against runs with the
``REPRO_COMPACTION=0`` escape hatch, covering the threshold-crossing path
where compaction engages (and re-engages) mid-solve.
"""

import numpy as np
import pytest

from repro.admm import AdmmParameters, solve_acopf_admm_batch
from repro.admm.state import (
    cold_start_state,
    scatter_state_scenarios,
    select_state_scenarios,
)
from repro.exceptions import ConfigurationError, DimensionError
from repro.parallel.compaction import ActiveSet, Workspace, compaction_enabled
from repro.parallel.device import SimulatedDevice
from repro.scenarios import ScenarioSet, load_scaling_scenarios
from repro.tron.batch import QuadraticBatchProblem, solve_batch
from repro.tron.options import TronOptions
from repro.tron.projection import projected_gradient_norm


# --------------------------------------------------------------------- #
# Primitives                                                             #
# --------------------------------------------------------------------- #
class TestActiveSet:
    def test_from_mask_and_gather_scatter(self):
        mask = np.array([True, False, True, True, False])
        work = ActiveSet.from_mask(mask)
        assert work.size == 3 and work.full_size == 5
        assert work.fraction == pytest.approx(0.6)

        resident = np.arange(10.0).reshape(5, 2)
        packed = work.gather(resident)
        assert packed.shape == (3, 2)
        assert np.array_equal(packed, resident[[0, 2, 3]])

        work.scatter(resident, -packed)
        assert np.array_equal(resident[[0, 2, 3]], -packed)
        assert np.array_equal(resident[1], [2.0, 3.0])  # untouched

    def test_gather_works_on_any_leading_axis(self):
        work = ActiveSet(np.array([1, 3]), 4)
        vec = np.arange(4.0)
        mat3 = np.arange(4.0 * 2 * 2).reshape(4, 2, 2)
        assert np.array_equal(work.gather(vec), [1.0, 3.0])
        assert np.array_equal(work.gather(mat3), mat3[[1, 3]])

    def test_scatter_where_merges_masked_rows_only(self):
        work = ActiveSet(np.array([0, 2]), 3)
        target = np.zeros(3)
        work.scatter_where(target, np.array([5.0, 7.0]), np.array([False, True]))
        assert np.array_equal(target, [0.0, 0.0, 7.0])

    def test_refine_composes_resident_indices(self):
        work = ActiveSet.from_mask(np.array([True, False, True, True]))
        refined = work.refine(np.array([False, True, True]))
        assert np.array_equal(refined.indices, [2, 3])
        assert refined.full_size == 4

    def test_validation(self):
        with pytest.raises(DimensionError):
            ActiveSet(np.array([[0]]), 2)
        with pytest.raises(DimensionError):
            ActiveSet(np.array([3]), 2)
        with pytest.raises(DimensionError):
            ActiveSet(np.array([0]), 2).refine(np.array([True, False]))


class TestWorkspace:
    def test_reuses_buffer_for_same_key_and_shape(self):
        ws = Workspace()
        a = ws.take("h", (4, 6, 6))
        b = ws.take("h", (4, 6, 6))
        assert a is b
        assert ws.allocations == 1 and ws.reuses == 1

    def test_reallocates_on_shape_change(self):
        ws = Workspace()
        a = ws.take("h", (4, 6))
        b = ws.take("h", (2, 6))
        assert a is not b and b.shape == (2, 6)
        assert ws.allocations == 2

    def test_zeros_clears_reused_buffer(self):
        ws = Workspace()
        ws.take("g", (3,))[:] = 7.0
        assert np.array_equal(ws.zeros("g", (3,)), np.zeros(3))

    def test_clear_and_nbytes(self):
        ws = Workspace()
        ws.take("g", (8,))
        assert ws.nbytes == 8 * 8
        ws.clear()
        assert ws.nbytes == 0


class TestEscapeHatch:
    def test_compaction_enabled_reads_environment(self, monkeypatch):
        monkeypatch.delenv("REPRO_COMPACTION", raising=False)
        assert compaction_enabled()
        for off in ("0", "false", "OFF", "no"):
            monkeypatch.setenv("REPRO_COMPACTION", off)
            assert not compaction_enabled()
        monkeypatch.setenv("REPRO_COMPACTION", "1")
        assert compaction_enabled()

    def test_threshold_validation(self):
        with pytest.raises(ConfigurationError):
            TronOptions(compaction_threshold=1.5).validate()
        with pytest.raises(ConfigurationError):
            TronOptions(compaction_min_batch=0).validate()
        with pytest.raises(ConfigurationError):
            AdmmParameters(compaction_threshold=-0.1).validate()


# --------------------------------------------------------------------- #
# TRON: compacted vs full sweep                                          #
# --------------------------------------------------------------------- #
class _RecordingProblem:
    """Delegating BatchProblem that records the width of every evaluation."""

    def __init__(self, problem):
        self._problem = problem
        self.lb = problem.lb
        self.ub = problem.ub
        self.eval_widths = []
        self.select_rows_calls = []

    def objective(self, x):
        self.eval_widths.append(x.shape[0])
        return self._problem.objective(x)

    def gradient(self, x):
        return self._problem.gradient(x)

    def hessian(self, x):
        return self._problem.hessian(x)

    def select_rows(self, indices):
        self.select_rows_calls.append(np.asarray(indices).copy())
        return self._problem.select_rows(indices)


def heterogeneous_qp_batch(rng, batch=48, n=6):
    """Convex QPs whose conditioning (and TRON iteration count) varies a lot."""
    mats = []
    for b in range(batch):
        a = rng.normal(size=(n, n))
        mats.append(a @ a.T + (0.02 + 20.0 * (b % 5 == 0)) * np.eye(n))
    q = np.stack(mats)
    c = rng.normal(size=(batch, n))
    bound = np.ones((batch, n))
    return QuadraticBatchProblem(q, c, -bound, bound)


class TestTronCompactionEquivalence:
    def test_bitwise_identical_to_full_sweep(self, rng, monkeypatch):
        problem = heterogeneous_qp_batch(rng)
        x0 = rng.uniform(-1, 1, problem.c.shape)
        options = TronOptions(compaction_threshold=0.9, compaction_min_batch=4)

        monkeypatch.setenv("REPRO_COMPACTION", "1")
        compacted = solve_batch(problem, x0, options=options)
        monkeypatch.setenv("REPRO_COMPACTION", "0")
        full = solve_batch(problem, x0, options=options)

        assert np.array_equal(compacted.x, full.x)
        assert np.array_equal(compacted.f, full.f)
        assert np.array_equal(compacted.iterations, full.iterations)
        assert np.array_equal(compacted.converged, full.converged)
        assert np.array_equal(compacted.projected_gradient_norm,
                              full.projected_gradient_norm)
        assert compacted.function_evaluations == full.function_evaluations
        # The batch really was heterogeneous (the point of compacting).
        assert compacted.iterations.max() >= 2 * compacted.iterations.min() + 1

    def test_window_engages_and_shrinks_mid_solve(self, rng, monkeypatch):
        monkeypatch.setenv("REPRO_COMPACTION", "1")
        problem = _RecordingProblem(heterogeneous_qp_batch(rng))
        x0 = rng.uniform(-1, 1, problem._problem.c.shape)
        solve_batch(problem, x0,
                    options=TronOptions(compaction_threshold=0.9,
                                        compaction_min_batch=4))
        # The driver crossed the threshold at least once: some window was
        # built, and later windows are strictly smaller resident subsets.
        windows = [c for c in problem.select_rows_calls if c.size > 1]
        assert windows, "compaction never engaged"
        assert windows[-1].size < problem.lb.shape[0]

    def test_disabled_below_min_batch(self, rng, monkeypatch):
        monkeypatch.setenv("REPRO_COMPACTION", "1")
        problem = _RecordingProblem(heterogeneous_qp_batch(rng, batch=6))
        x0 = rng.uniform(-1, 1, problem._problem.c.shape)
        solve_batch(problem, x0,
                    options=TronOptions(compaction_threshold=0.9,
                                        compaction_min_batch=64))
        assert problem.select_rows_calls == []

    def test_reported_pgnorm_matches_final_iterate(self, rng):
        problem = heterogeneous_qp_batch(rng, batch=20)
        x0 = rng.uniform(-1, 1, problem.c.shape)
        result = solve_batch(problem, x0)
        recomputed = projected_gradient_norm(result.x, problem.gradient(result.x),
                                             problem.lb, problem.ub)
        assert np.array_equal(result.projected_gradient_norm, recomputed)

    def test_quadratic_hessian_is_broadcast_view(self, rng):
        problem = heterogeneous_qp_batch(rng, batch=4)
        hess = problem.hessian(np.zeros((4, 6)))
        assert hess.base is not None  # a view, not a fresh copy
        assert not hess.flags.writeable
        assert np.array_equal(hess, problem.q)


# --------------------------------------------------------------------- #
# ADMM: scenario packing primitives                                      #
# --------------------------------------------------------------------- #
class TestScenarioPacking:
    @pytest.fixture()
    def stacked(self, case3, case5, case9):
        from repro.admm.data import ComponentData
        params = AdmmParameters()
        data = ComponentData.from_scenarios([case3, case9, case5], params)
        return data

    def test_layout_select_rebases_offsets(self, stacked):
        layout = stacked.scenario_layout
        sub = layout.select([0, 2])
        assert sub.names == (layout.names[0], layout.names[2])
        assert sub.bus_offsets[0] == 0
        assert np.array_equal(sub.counts("bus"),
                              layout.counts("bus")[[0, 2]])
        assert np.array_equal(sub.rho_pq, layout.rho_pq[[0, 2]])

    def test_select_scenarios_matches_fresh_stack(self, stacked, case3, case5):
        from repro.admm.data import ComponentData
        sub = stacked.select_scenarios([0, 2])
        fresh = ComponentData.from_scenarios([case3, case5], stacked.params)
        assert np.array_equal(sub.gen_bus, fresh.gen_bus)
        assert np.array_equal(sub.branch_from, fresh.branch_from)
        assert np.array_equal(sub.branch_to, fresh.branch_to)
        assert np.array_equal(sub.bus_pd, fresh.bus_pd)
        for group in sub.rho:
            assert np.array_equal(np.broadcast_to(sub.rho[group], (sub.group_length(group),)),
                                  np.broadcast_to(fresh.rho[group], (fresh.group_length(group),)))

    def test_state_pack_scatter_roundtrip(self, stacked):
        state = cold_start_state(stacked)
        state.beta = np.array([1.0, 2.0, 3.0])
        reference = state.copy()

        packed = select_state_scenarios(stacked, state, [1, 2])
        assert packed.pg.shape[0] == stacked.scenario_layout.counts("gen")[[1, 2]].sum()
        packed.pg += 1.0
        packed.w *= 0.5
        packed.y["wi"][:] = 9.0
        packed.beta[:] = 7.0

        scatter_state_scenarios(stacked, state, packed, [1, 2])
        block0 = stacked.scenario_layout.block("gen", 0)
        assert np.array_equal(state.pg[block0], reference.pg[block0])  # untouched
        for s in (1, 2):
            gens = stacked.scenario_layout.block("gen", s)
            assert np.array_equal(state.pg[gens], reference.pg[gens] + 1.0)
        assert np.array_equal(np.asarray(state.beta), [1.0, 7.0, 7.0])


# --------------------------------------------------------------------- #
# ADMM: compacted vs full-sweep batch solves                             #
# --------------------------------------------------------------------- #
def _solve(scenario_set, params, device=None):
    return solve_acopf_admm_batch(scenario_set, params=params, device=device)


def assert_batches_bitwise_equal(compacted, full):
    for a, b in zip(compacted, full):
        assert a.converged == b.converged
        assert a.inner_iterations == b.inner_iterations
        assert a.outer_iterations == b.outer_iterations
        assert np.array_equal(a.vm, b.vm)
        assert np.array_equal(a.va, b.va)
        assert np.array_equal(a.pg, b.pg)
        assert np.array_equal(a.qg, b.qg)
        assert len(a.iteration_log) == len(b.iteration_log)
        for la, lb in zip(a.iteration_log, b.iteration_log):
            assert la.inner_iterations == lb.inner_iterations
            assert la.z_norm == lb.z_norm
            assert la.beta == lb.beta


class TestAdmmCompactionEquivalence:
    def test_mixed_networks_bitwise(self, case3, case5, case9, monkeypatch):
        scenario_set = ScenarioSet.from_networks([case3, case9, case5])
        params = AdmmParameters(max_outer=2, max_inner=15)
        monkeypatch.setenv("REPRO_COMPACTION", "1")
        compacted = _solve(scenario_set, params)
        monkeypatch.setenv("REPRO_COMPACTION", "0")
        full = _solve(scenario_set, params)
        assert_batches_bitwise_equal(compacted, full)

    def test_threshold_crossing_mid_solve(self, case9, monkeypatch):
        # The light-load scenarios freeze rounds before the heavy ones, so
        # compaction engages (and re-engages) mid-solve; trajectories of the
        # surviving scenarios must be unaffected.
        scenario_set = load_scaling_scenarios(case9, [0.4, 0.9, 1.0, 1.1])
        params = AdmmParameters(max_outer=5, max_inner=120, outer_tol=2e-2)

        monkeypatch.setenv("REPRO_COMPACTION", "1")
        device_on = SimulatedDevice()
        compacted = _solve(scenario_set, params, device_on)
        monkeypatch.setenv("REPRO_COMPACTION", "0")
        device_off = SimulatedDevice()
        full = _solve(scenario_set, params, device_off)

        assert_batches_bitwise_equal(compacted, full)
        # Scenarios froze at different times...
        outers = [s.outer_iterations for s in compacted]
        assert min(outers) < max(outers)
        # ...so the full sweep wasted width (occupancy < 1) that the
        # compacted stream reclaimed (occupancy = 1).
        on = device_on.kernels["branch_update"]
        off = device_off.kernels["branch_update"]
        assert on.occupancy == pytest.approx(1.0)
        assert off.occupancy < 1.0
        assert on.total_elements < off.total_elements

    def test_partial_threshold_keeps_frozen_resident(self, case9, monkeypatch):
        # threshold 0.5: one frozen scenario of four is not enough to
        # compact, so frozen rows stay resident (sub-1 occupancy) until
        # half the batch froze — results must still match the full sweep.
        scenario_set = load_scaling_scenarios(case9, [0.4, 0.9, 1.0, 1.1])
        params = AdmmParameters(max_outer=5, max_inner=120, outer_tol=2e-2,
                                compaction_threshold=0.5)
        monkeypatch.setenv("REPRO_COMPACTION", "1")
        compacted = _solve(scenario_set, params)
        monkeypatch.setenv("REPRO_COMPACTION", "0")
        full = _solve(scenario_set, params)
        assert_batches_bitwise_equal(compacted, full)

    def test_compaction_threshold_zero_disables(self, case3, case5):
        scenario_set = ScenarioSet.from_networks([case3, case5])
        params = AdmmParameters(max_outer=2, max_inner=15,
                                compaction_threshold=0.0)
        device = SimulatedDevice()
        solutions = _solve(scenario_set, params, device)
        assert all(s is not None for s in solutions)

    def test_last_state_covers_full_layout(self, case3, case9):
        from repro.admm import BatchAdmmSolver
        solver = BatchAdmmSolver(ScenarioSet.from_networks([case3, case9]),
                                 params=AdmmParameters(max_outer=2, max_inner=15))
        solver.solve()
        layout = solver.data.scenario_layout
        assert solver.last_state.pg.shape[0] == int(layout.counts("gen").sum())
        assert solver.last_state.w.shape[0] == int(layout.counts("bus").sum())
        assert np.asarray(solver.last_state.beta).shape == (2,)
