"""Unit tests for the plain-data grid component records."""

import numpy as np
import pytest

from repro.grid.components import Branch, Bus, BusType, CostModel, Generator, GeneratorCost


class TestBus:
    def test_defaults(self):
        bus = Bus(index=1)
        assert bus.bus_type == BusType.PQ
        assert bus.pd == 0.0
        assert bus.vmax > bus.vmin

    def test_bus_type_coerced_from_int(self):
        bus = Bus(index=4, bus_type=3)
        assert bus.bus_type is BusType.REF

    def test_invalid_bus_type_raises(self):
        with pytest.raises(ValueError):
            Bus(index=1, bus_type=9)


class TestGenerator:
    def test_in_service_flag(self):
        assert Generator(bus=1, status=1).in_service
        assert not Generator(bus=1, status=0).in_service

    def test_defaults_are_wide_bounds(self):
        gen = Generator(bus=2)
        assert gen.pmin <= gen.pmax
        assert gen.qmin <= gen.qmax


class TestBranch:
    def test_turns_ratio_zero_means_one(self):
        assert Branch(from_bus=1, to_bus=2).turns_ratio == 1.0

    def test_turns_ratio_explicit(self):
        assert Branch(from_bus=1, to_bus=2, tap=0.98).turns_ratio == 0.98

    def test_in_service(self):
        assert Branch(from_bus=1, to_bus=2).in_service
        assert not Branch(from_bus=1, to_bus=2, status=0).in_service


class TestGeneratorCost:
    def test_quadratic_passthrough(self):
        cost = GeneratorCost(coefficients=(0.11, 5.0, 150.0))
        assert cost.as_quadratic() == (0.11, 5.0, 150.0)

    def test_linear_cost_padded(self):
        cost = GeneratorCost(coefficients=(14.0, 0.0))
        c2, c1, c0 = cost.as_quadratic()
        assert c2 == 0.0
        assert c1 == 14.0
        assert c0 == 0.0

    def test_constant_cost_padded(self):
        cost = GeneratorCost(coefficients=(42.0,))
        assert cost.as_quadratic() == (0.0, 0.0, 42.0)

    def test_cubic_truncated_to_quadratic(self):
        cost = GeneratorCost(coefficients=(1e-6, 0.2, 3.0, 100.0))
        c2, c1, c0 = cost.as_quadratic()
        assert (c2, c1, c0) == (0.2, 3.0, 100.0)

    def test_piecewise_linear_fit_recovers_line(self):
        # Breakpoints on an exact line y = 10 x + 5 must fit with c2 ~ 0.
        cost = GeneratorCost(model=CostModel.PIECEWISE_LINEAR,
                             coefficients=(0.0, 5.0, 10.0, 105.0, 20.0, 205.0))
        c2, c1, c0 = cost.as_quadratic()
        assert abs(c2) < 1e-9
        assert np.isclose(c1, 10.0)
        assert np.isclose(c0, 5.0)

    def test_piecewise_linear_single_point(self):
        cost = GeneratorCost(model=CostModel.PIECEWISE_LINEAR, coefficients=(5.0, 123.0))
        assert cost.as_quadratic() == (0.0, 0.0, 123.0)

    def test_coefficients_are_floats(self):
        cost = GeneratorCost(coefficients=(1, 2, 3))
        assert all(isinstance(c, float) for c in cost.coefficients)
