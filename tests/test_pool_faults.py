"""Fault-tolerance tests for the resilient DevicePool.

The differential recovery invariant: because scenarios never couple and warm
states live with the parent, a pool run that loses a chunk to a worker
crash, a stall, or a transient exception and *replays* it must return
solutions bitwise identical to the failure-free run — on both executors,
and mid-horizon inside ``track_horizon_batch``.  These tests script every
failure with a deterministic :class:`FaultPlan` and assert exactly that,
plus the budget/accounting semantics around it: aggregated
``PoolExecutionError`` on exhausted budgets, ``"partial"`` reports with
per-scenario failure markers, poison-scenario isolation via chunk
splitting, the late-arriving-result race, and ``_pool_worker`` surviving
non-``Exception`` exits.
"""

from __future__ import annotations

import multiprocessing

import numpy as np
import pytest

import repro
from repro.admm.batch_solver import ShardTask, solve_scenario_shard
from repro.admm.parameters import parameters_for_case
from repro.exceptions import ConfigurationError
from repro.parallel import DevicePool, FaultPlan, FaultSpec, PoolExecutionError
from repro.parallel.faults import FAULT_PLAN_ENV, FaultCommand
from repro.parallel.pool import (
    _Dispatch,
    _ProcessRun,
    _StealScheduler,
    _pool_worker,
)
from repro.scenarios import ScenarioSet, tracking_fleet
from repro.tracking import make_load_profile, track_horizon_batch
from repro.tracking.load_profile import LoadProfile
from repro.tracking.pipeline import WarmStartCache

QUICK = repro.AdmmParameters(max_outer=2, max_inner=15)


def quick_batch(n: int = 4) -> ScenarioSet:
    network = repro.load_case("case9")
    factors = [0.8 + 0.1 * k for k in range(n)]
    return repro.load_scaling_scenarios(network, factors)


def assert_solutions_identical(pooled, batched) -> None:
    assert len(pooled) == len(batched)
    for a, b in zip(pooled, batched):
        assert a.network_name == b.network_name
        assert a.inner_iterations == b.inner_iterations
        assert a.outer_iterations == b.outer_iterations
        assert np.array_equal(a.vm, b.vm)
        assert np.array_equal(a.va, b.va)
        assert np.array_equal(a.pg, b.pg)
        assert np.array_equal(a.qg, b.qg)


def resilient_pool(executor: str, fault_plan=None, **overrides) -> DevicePool:
    options = dict(n_workers=2, executor=executor, chunk_scenarios=1,
                   on_failure="retry", respawn_backoff=0.01,
                   fault_plan=fault_plan)
    options.update(overrides)
    return DevicePool(**options)


# --------------------------------------------------------------------- #
# FaultPlan: specs, parsing, seeding, env knob                            #
# --------------------------------------------------------------------- #
class TestFaultPlan:
    def test_parse_explicit_specs(self):
        plan = FaultPlan.parse("crash(worker=1,chunk=2); "
                               "stall(worker=0,chunk=3,seconds=2); "
                               "raise(scenario=5,times=1)")
        kinds = [spec.kind for spec in plan.specs]
        assert kinds == ["crash", "stall", "raise"]
        assert plan.specs[0].worker == 1 and plan.specs[0].chunk == 2
        assert plan.specs[1].seconds == 2.0
        assert plan.specs[2].scenario == 5 and plan.specs[2].times == 1

    def test_parse_seeded_mode(self):
        plan = FaultPlan.parse("seeded(seed=7,rate=0.25)")
        assert plan.seed == 7 and plan.rate == 0.25 and not plan.specs

    @pytest.mark.parametrize("text", [
        "meltdown(worker=0)",          # unknown kind
        "crash(flavor=3)",             # unknown key
        "crash(worker=soon)",          # non-numeric value
        "crash(worker)",               # not key=value
        "crash(worker=0",              # unbalanced
    ])
    def test_parse_rejects_malformed_specs(self, text):
        with pytest.raises(ConfigurationError):
            FaultPlan.parse(text)

    def test_from_env(self):
        plan = FaultPlan.from_env({FAULT_PLAN_ENV: "crash(worker=0,chunk=1)"})
        assert plan is not None and plan.specs[0].kind == "crash"
        assert FaultPlan.from_env({}) is None
        assert FaultPlan.from_env({FAULT_PLAN_ENV: "  "}) is None

    def test_spec_matching_and_disarm(self):
        plan = FaultPlan([FaultSpec("raise", worker=1, chunk=2, times=1)])
        assert plan.draw(0, 2, (0,)) is None          # wrong worker
        assert plan.draw(1, 1, (0,)) is None          # wrong chunk
        command = plan.draw(1, 2, (0,))
        assert command == FaultCommand(kind="raise", seconds=1.0)
        assert plan.draw(1, 2, (0,)) is None          # fired out
        assert plan.n_fired == 1
        plan.reset()
        assert plan.draw(1, 2, (0,)) is not None      # rearmed

    def test_scenario_matching(self):
        plan = FaultPlan([FaultSpec("raise", scenario=5, times=2)])
        assert plan.draw(0, 1, (1, 2)) is None
        assert plan.draw(0, 2, (4, 5)) is not None
        assert plan.draw(1, 1, (5,)) is not None
        assert plan.draw(1, 2, (5,)) is None          # times exhausted

    def test_seeded_draws_are_reproducible(self):
        a = FaultPlan.seeded(seed=11, rate=0.5, kinds=("raise", "crash"))
        b = FaultPlan.seeded(seed=11, rate=0.5, kinds=("raise", "crash"))
        draws = [(w, c) for w in range(4) for c in range(1, 10)]
        assert [a.draw(w, c, (0,)) for w, c in draws] == \
               [b.draw(w, c, (0,)) for w, c in draws]
        assert any(a.draw(w, c, (0,)) for w, c in draws)
        silent = FaultPlan.seeded(seed=11, rate=0.0)
        assert all(silent.draw(w, c, (0,)) is None for w, c in draws)

    def test_spec_validation(self):
        with pytest.raises(ConfigurationError):
            FaultSpec("meltdown")
        with pytest.raises(ConfigurationError):
            FaultSpec("raise", times=0)
        with pytest.raises(ConfigurationError):
            FaultSpec("stall", seconds=-1.0)
        with pytest.raises(ConfigurationError):
            FaultPlan((), seed=1, rate=1.5)

    def test_pool_picks_up_env_plan(self, monkeypatch):
        monkeypatch.setenv(FAULT_PLAN_ENV, "crash(worker=1,chunk=1)")
        pool = DevicePool(n_workers=2, executor="sequential")
        assert pool.fault_plan is not None
        assert pool.fault_plan.specs[0].kind == "crash"
        explicit = FaultPlan([FaultSpec("raise")])
        assert DevicePool(fault_plan=explicit).fault_plan is explicit
        monkeypatch.delenv(FAULT_PLAN_ENV)
        assert DevicePool().fault_plan is None


# --------------------------------------------------------------------- #
# Scheduler replay machinery                                              #
# --------------------------------------------------------------------- #
class TestSchedulerReplay:
    def test_requeue_splits_multi_scenario_chunks(self):
        sched = _StealScheduler([[0, 1, 2, 3]], [1.0] * 4,
                                chunk_scenarios=4, steal_threshold=1)
        indices, origin, _ = sched.next_chunk(0)
        sched.requeue(indices, origin)
        assert sched.next_chunk(0) == ((0, 1), 0, False)
        assert sched.next_chunk(0) == ((2, 3), 0, False)
        assert sched.next_chunk(0) is None

    def test_requeue_single_scenario_stays_whole(self):
        sched = _StealScheduler([[0]], [1.0], chunk_scenarios=1,
                                steal_threshold=1)
        sched.next_chunk(0)
        sched.requeue((0,), 0)
        assert sched.next_chunk(0) == ((0,), 0, False)

    def test_replay_served_before_own_shard(self):
        sched = _StealScheduler([[0], [1]], [1.0, 1.0],
                                chunk_scenarios=1, steal_threshold=1)
        sched.requeue((1,), 1, split=False)
        assert sched.next_chunk(0) == ((1,), 1, False)
        assert sched.next_chunk(0) == ((0,), 0, False)

    def test_orphan_moves_dead_shard_past_steal_threshold(self):
        # threshold 5 forbids stealing, so without orphaning the dead
        # owner's tail would strand
        sched = _StealScheduler([[0], [1, 2]], [1.0] * 3,
                                chunk_scenarios=1, steal_threshold=5)
        assert sched.next_chunk(0) == ((0,), 0, False)
        assert sched.next_chunk(0) is None
        sched.orphan(1)
        assert sched.next_chunk(0) == ((1,), 1, False)
        assert sched.next_chunk(0) == ((2,), 1, False)

    def test_drain_empties_everything(self):
        sched = _StealScheduler([[0, 1], [2]], [1.0] * 3,
                                chunk_scenarios=1, steal_threshold=1)
        assert sched.next_chunk(1) == ((2,), 1, False)
        sched.requeue((2,), 1, split=False)  # chunk lost: back for replay
        items = sched.drain()
        assert sorted(i for indices, _ in items for i in indices) == [0, 1, 2]
        assert not sched.has_work


# --------------------------------------------------------------------- #
# Differential recovery: sequential executor                              #
# --------------------------------------------------------------------- #
class TestRecoverySequential:
    def test_crash_recovery_bitwise_identical(self):
        scenario_set = quick_batch(4)
        reference = repro.solve_acopf_admm_batch(scenario_set, params=QUICK)
        plan = FaultPlan([FaultSpec("crash", worker=1, chunk=1)])
        report = resilient_pool("sequential", plan).solve(scenario_set,
                                                          params=QUICK)
        assert_solutions_identical(report.solutions, reference)
        assert report.respawns == 1
        assert report.retries >= 1
        assert report.replayed_scenarios
        assert [f.kind for f in report.failures] == ["death"]
        assert report.failed_scenarios == ()

    def test_transient_exception_recovery_bitwise_identical(self):
        scenario_set = quick_batch(4)
        reference = repro.solve_acopf_admm_batch(scenario_set, params=QUICK)
        plan = FaultPlan([FaultSpec("raise", scenario=2, times=1)])
        report = resilient_pool("sequential", plan).solve(scenario_set,
                                                          params=QUICK)
        assert_solutions_identical(report.solutions, reference)
        assert report.retries == 1 and report.respawns == 0
        assert report.replayed_scenarios == (2,)
        assert [f.kind for f in report.failures] == ["error"]

    def test_stall_past_deadline_recovery_bitwise_identical(self):
        scenario_set = quick_batch(4)
        reference = repro.solve_acopf_admm_batch(scenario_set, params=QUICK)
        plan = FaultPlan([FaultSpec("stall", worker=0, chunk=1, seconds=60)])
        report = resilient_pool("sequential", plan, chunk_timeout=1.0).solve(
            scenario_set, params=QUICK)
        assert_solutions_identical(report.solutions, reference)
        assert [f.kind for f in report.failures] == ["timeout"]
        assert report.respawns == 1 and report.retries >= 1

    def test_stall_without_deadline_only_delays(self):
        scenario_set = quick_batch(4)
        reference = repro.solve_acopf_admm_batch(scenario_set, params=QUICK)
        plan = FaultPlan([FaultSpec("stall", worker=0, chunk=1, seconds=60)])
        report = resilient_pool("sequential", plan).solve(scenario_set,
                                                          params=QUICK)
        assert_solutions_identical(report.solutions, reference)
        assert report.failures == [] and report.retries == 0
        # the simulated stall lands in the worker's busy-time accounting
        assert report.makespan_seconds >= 60.0

    def test_seeded_plan_recovery_bitwise_identical(self):
        scenario_set = quick_batch(6)
        reference = repro.solve_acopf_admm_batch(scenario_set, params=QUICK)
        plan = FaultPlan.seeded(seed=3, rate=0.4)  # several transient raises
        report = resilient_pool("sequential", plan, max_retries=20).solve(
            scenario_set, params=QUICK)
        assert_solutions_identical(report.solutions, reference)
        assert plan.n_fired == 0  # seeded draws don't count as spec firings
        assert report.retries >= 1

    def test_poison_chunk_splits_to_isolate_scenario(self):
        scenario_set = quick_batch(4)
        reference = repro.solve_acopf_admm_batch(scenario_set, params=QUICK)
        pool = resilient_pool("sequential", None, chunk_scenarios=2,
                              on_failure="partial", solve_fn=_fail_on_x09)
        report = pool.solve(scenario_set, params=QUICK)
        # only the poison scenario is lost; its chunk-mates solved on replay
        assert report.failed_scenarios == (1,)
        assert report.solutions[1] is None
        for s in (0, 2, 3):
            assert np.array_equal(report.solutions[s].vm, reference[s].vm)
        assert report.retries >= 1

    def test_retry_budget_exhaustion_raises_aggregated_error(self):
        scenario_set = quick_batch(3)
        pool = resilient_pool("sequential", None, max_retries=1,
                              solve_fn=_fail_on_x09)
        with pytest.raises(PoolExecutionError) as excinfo:
            pool.solve(scenario_set, params=QUICK)
        error = excinfo.value
        assert error.indices == (1,)
        assert "case9@x0.9" in error.scenario_names
        assert len(error.failures) == 2  # first try + one replay
        assert all(f.kind == "error" for f in error.failures)

    def test_all_failed_scenarios_are_aggregated(self):
        # the old executor dropped every failure after the first; all poison
        # scenarios must be reported together
        scenario_set = quick_batch(4)
        pool = resilient_pool("sequential", None, max_retries=0,
                              solve_fn=_fail_on_x08_x09)
        with pytest.raises(PoolExecutionError) as excinfo:
            pool.solve(scenario_set, params=QUICK)
        error = excinfo.value
        assert error.indices == (0, 1)
        assert set(error.scenario_names) == {"case9@x0.8", "case9@x0.9"}
        assert "case9@x0.8" in str(error) and "case9@x0.9" in str(error)

    def test_respawn_budget_exhaustion_loses_remaining_work(self):
        scenario_set = quick_batch(3)
        plan = FaultPlan([FaultSpec("crash", times=100)])  # every dispatch dies
        pool = resilient_pool("sequential", plan, max_respawns=1,
                              max_retries=100, on_failure="partial")
        report = pool.solve(scenario_set, params=QUICK)
        assert set(report.failed_scenarios) == {0, 1, 2}
        assert all(solution is None for solution in report.solutions)
        assert report.respawns == 1
        assert any(f.kind == "lost" for f in report.failures)

    def test_default_raise_mode_fails_fast_on_injected_crash(self):
        scenario_set = quick_batch(2)
        plan = FaultPlan([FaultSpec("crash", worker=0, chunk=1)])
        pool = DevicePool(n_workers=2, executor="sequential",
                          chunk_scenarios=1, fault_plan=plan)
        with pytest.raises(PoolExecutionError) as excinfo:
            pool.solve(scenario_set, params=QUICK)
        assert "died" in str(excinfo.value)

    def test_env_plan_recovery_end_to_end(self, monkeypatch):
        monkeypatch.setenv(FAULT_PLAN_ENV, "crash(worker=1,chunk=1)")
        scenario_set = quick_batch(4)
        reference = repro.solve_acopf_admm_batch(scenario_set, params=QUICK)
        report = resilient_pool("sequential").solve(scenario_set, params=QUICK)
        assert_solutions_identical(report.solutions, reference)
        assert report.respawns == 1

    def test_new_options_validated(self):
        with pytest.raises(ConfigurationError):
            DevicePool(on_failure="ignore")
        with pytest.raises(ConfigurationError):
            DevicePool(max_retries=-1)
        with pytest.raises(ConfigurationError):
            DevicePool(max_respawns=-1)
        with pytest.raises(ConfigurationError):
            DevicePool(chunk_timeout=0.0)
        with pytest.raises(ConfigurationError):
            DevicePool(respawn_backoff=-0.1)

    def test_report_dict_carries_recovery_fields(self):
        scenario_set = quick_batch(2)
        plan = FaultPlan([FaultSpec("raise", scenario=0, times=1)])
        report = resilient_pool("sequential", plan).solve(scenario_set,
                                                          params=QUICK)
        snapshot = report.as_dict()
        assert snapshot["retries"] == 1
        assert snapshot["replayed_scenarios"] == [0]
        assert snapshot["failures"][0]["kind"] == "error"
        assert snapshot["chunks"][-1]["attempt"] >= 0


# --------------------------------------------------------------------- #
# Differential recovery: process executor                                 #
# --------------------------------------------------------------------- #
class TestRecoveryProcess:
    def test_crash_recovery_bitwise_identical(self):
        scenario_set = quick_batch(4)
        reference = repro.solve_acopf_admm_batch(scenario_set, params=QUICK)
        plan = FaultPlan([FaultSpec("crash", worker=1, chunk=1)])
        report = resilient_pool("process", plan).solve(scenario_set,
                                                       params=QUICK)
        assert_solutions_identical(report.solutions, reference)
        assert report.respawns == 1
        assert report.retries >= 1
        assert "death" in {f.kind for f in report.failures}

    def test_transient_exception_recovery_bitwise_identical(self):
        scenario_set = quick_batch(4)
        reference = repro.solve_acopf_admm_batch(scenario_set, params=QUICK)
        plan = FaultPlan([FaultSpec("raise", scenario=2, times=1)])
        report = resilient_pool("process", plan).solve(scenario_set,
                                                       params=QUICK)
        assert_solutions_identical(report.solutions, reference)
        assert report.retries == 1 and report.respawns == 0
        assert report.replayed_scenarios == (2,)

    def test_stall_past_deadline_recovery_bitwise_identical(self):
        scenario_set = quick_batch(4)
        reference = repro.solve_acopf_admm_batch(scenario_set, params=QUICK)
        plan = FaultPlan([FaultSpec("stall", worker=0, chunk=1, seconds=60)])
        report = resilient_pool("process", plan, chunk_timeout=2.0).solve(
            scenario_set, params=QUICK)
        assert_solutions_identical(report.solutions, reference)
        assert "timeout" in {f.kind for f in report.failures}
        assert report.respawns == 1

    def test_retry_budget_exhaustion_raises_aggregated_error(self):
        scenario_set = quick_batch(3)
        pool = resilient_pool("process", None, max_retries=0,
                              solve_fn=_fail_on_x09)
        with pytest.raises(PoolExecutionError) as excinfo:
            pool.solve(scenario_set, params=QUICK)
        assert excinfo.value.indices == (1,)
        assert "case9@x0.9" in excinfo.value.scenario_names

    def test_non_exception_worker_exit_is_reported_and_recovered(self):
        # SystemExit escapes the worker loop; the worker reports a "fatal"
        # message first, the parent respawns and finishes the healthy rest
        scenario_set = quick_batch(2)
        pool = resilient_pool("process", None, max_retries=0,
                              solve_fn=_system_exit_on_x09)
        with pytest.raises(PoolExecutionError) as excinfo:
            pool.solve(scenario_set, params=QUICK)
        error = excinfo.value
        assert "case9@x0.9" in error.scenario_names
        assert any("SystemExit" in f.detail for f in error.failures)


# --------------------------------------------------------------------- #
# Late-arriving-result race + worker-loop protocol                        #
# --------------------------------------------------------------------- #
class _FakeProcess:
    """Stand-in for a dead multiprocessing.Process."""

    exitcode = -9

    def is_alive(self) -> bool:
        return False

    def terminate(self) -> None:
        pass


class TestLateResultRace:
    def _make_run(self, scenario_set) -> _ProcessRun:
        pool = DevicePool(n_workers=2, executor="process",
                          chunk_scenarios=1, on_failure="retry")
        scheduler = _StealScheduler([[0], [1]], scenario_set.costs("cost"),
                                    chunk_scenarios=1, steal_threshold=1)
        run = _ProcessRun(pool, scenario_set, QUICK, None, scheduler, 2, None)
        pipes = [multiprocessing.Pipe(duplex=True) for _ in range(2)]
        run.conns = [parent for parent, _ in pipes]
        self.worker_conns = [child for _, child in pipes]
        run.processes = [_FakeProcess(), _FakeProcess()]
        return run

    def test_stale_result_is_dropped(self):
        scenario_set = quick_batch(2)
        run = self._make_run(scenario_set)
        run.outstanding[0] = _Dispatch(tag=7, indices=(0,), origin=0,
                                       stolen=False, attempt=0, deadline=None)
        run._handle_result(0, 3, "ok", object())  # tag mismatch: stale
        assert run.outstanding[0].tag == 7
        assert run.solutions == [None, None]
        assert run.recovery.failures == []

    def test_dead_workers_buffered_result_is_ignored_and_chunk_replayed(self):
        scenario_set = quick_batch(2)
        run = self._make_run(scenario_set)
        run._dispatch(0)
        dispatch = run.outstanding[0]
        tag, task, fault = self.worker_conns[0].recv()
        assert tag == dispatch.tag and fault is None
        result = solve_scenario_shard(task)  # the result the worker buffered

        # the liveness poll declares worker 0 dead before the result drains
        run._check_liveness()
        assert 0 not in run.outstanding
        assert run.recovery.failures[0].kind == "death"
        assert run.recovery.retries == 1

        # ... now the buffered result arrives: it must be dropped
        run._handle_result(0, tag, "ok", result)
        assert run.solutions[0] is None

        # and the replayed chunk is served to a surviving worker, solving
        # to the bitwise-identical solution
        assert run.scheduler.next_chunk(1) == ((0,), 0, False)
        replay = solve_scenario_shard(
            run.pool._make_task(scenario_set, QUICK, None, (0,), 1, None))
        assert np.array_equal(replay.solutions[0].vm, result.solutions[0].vm)
        assert np.array_equal(replay.solutions[0].pg, result.solutions[0].pg)

    def test_pool_worker_reports_non_exception_exit_cleanly(self):
        parent, child = multiprocessing.Pipe(duplex=True)
        task = ShardTask(indices=(1,), scenarios=quick_batch(2).subset([1]),
                         params=QUICK)
        parent.send((5, task, None))
        _pool_worker(0, _system_exit_on_x09, child)  # returns, no raise
        worker, tag, kind, payload = parent.recv()
        assert (worker, tag, kind) == (0, 5, "fatal")
        assert "SystemExit" in payload

    def test_pool_worker_survives_plain_exceptions(self):
        parent, child = multiprocessing.Pipe(duplex=True)
        batch = quick_batch(2)
        parent.send((1, ShardTask(indices=(1,), scenarios=batch.subset([1]),
                                  params=QUICK), None))
        parent.send((2, ShardTask(indices=(0,), scenarios=batch.subset([0]),
                                  params=QUICK), None))
        parent.send(None)
        _pool_worker(0, _fail_on_x09, child)
        first = parent.recv()
        second = parent.recv()
        assert first[1:3] == (1, "error")  # the failure did not kill the loop
        assert second[1:3] == (2, "ok")

    def test_pool_worker_exits_on_closed_pipe(self):
        # the parent vanishing (its end closed) must end the loop, not hang
        parent, child = multiprocessing.Pipe(duplex=True)
        parent.close()
        _pool_worker(0, solve_scenario_shard, child)  # returns immediately

    def test_pool_worker_executes_injected_stall_then_solves(self):
        parent, child = multiprocessing.Pipe(duplex=True)
        task = ShardTask(indices=(0,), scenarios=quick_batch(1),
                         params=QUICK)
        parent.send((1, task, FaultCommand(kind="stall", seconds=0.05)))
        parent.send(None)
        _pool_worker(0, solve_scenario_shard, child)
        worker, tag, kind, payload = parent.recv()
        assert kind == "ok" and payload.indices == (0,)


# --------------------------------------------------------------------- #
# Crash-resumable tracking horizons                                       #
# --------------------------------------------------------------------- #
class TestTrackingRecovery:
    def _horizon_pieces(self, case9):
        params = parameters_for_case(case9, max_outer=2, max_inner=25)
        profile = make_load_profile(n_periods=4, seed=1)
        fleet = tracking_fleet(case9, "load", 4, spread=0.05)
        return params, profile, fleet

    def _assert_horizons_identical(self, reference, periods):
        for ref_period, period in zip(reference.periods, periods):
            for ref_solution, solution in zip(ref_period.solutions,
                                              period.solutions):
                assert ref_solution.inner_iterations == solution.inner_iterations
                assert np.array_equal(ref_solution.pg, solution.pg)
                assert np.array_equal(ref_solution.vm, solution.vm)
                assert np.array_equal(ref_solution.va, solution.va)
                assert ref_solution.objective == solution.objective

    @pytest.mark.parametrize("executor", ["sequential", "process"])
    def test_mid_horizon_crash_recovers_bitwise(self, case9, executor):
        """A worker death after warm states exist replays only the affected
        scenarios — the warm states re-ship with the replayed chunk, and the
        recovered horizon equals the failure-free single-device run."""
        params, profile, fleet = self._horizon_pieces(case9)
        reference = track_horizon_batch(fleet, profile, params=params)

        cache = WarmStartCache()
        clean_pool = resilient_pool(executor)
        first = track_horizon_batch(
            fleet, LoadProfile(profile.multipliers[:2]), params=params,
            pool=clean_pool, cache=cache)
        assert first.total_retries == 0 and first.total_respawns == 0

        # the crash lands on the third period's solve, mid-horizon: every
        # scenario is warm-started from the cache at that point
        plan = FaultPlan([FaultSpec("crash", worker=1, chunk=1)])
        faulty_pool = resilient_pool(executor, plan)
        second = track_horizon_batch(
            fleet, LoadProfile(profile.multipliers[2:]), params=params,
            pool=faulty_pool, cache=cache)
        assert second.total_respawns == 1
        assert second.total_retries >= 1
        assert second.periods[0].replayed

        self._assert_horizons_identical(reference,
                                        first.periods + second.periods)

    def test_mid_horizon_transient_exception_recovers_bitwise(self, case9):
        params, profile, fleet = self._horizon_pieces(case9)
        reference = track_horizon_batch(fleet, profile, params=params)
        # one transient failure somewhere mid-horizon: the plan is shared by
        # every period's solve and fires exactly once across the horizon
        plan = FaultPlan([FaultSpec("raise", scenario=1, times=1)])
        pooled = track_horizon_batch(fleet, profile, params=params,
                                     pool=resilient_pool("sequential", plan),
                                     cache=WarmStartCache())
        assert pooled.total_retries == 1
        self._assert_horizons_identical(reference, pooled.periods)

    def test_partial_pool_failure_stops_the_horizon_clearly(self, case9):
        params, profile, fleet = self._horizon_pieces(case9)
        plan = FaultPlan([FaultSpec("raise", times=1000)])  # every chunk fails
        pool = resilient_pool("sequential", plan, on_failure="partial",
                              max_retries=0)
        with pytest.raises(PoolExecutionError) as excinfo:
            track_horizon_batch(fleet, profile, params=params, pool=pool)
        assert "tracking horizon" in str(excinfo.value)


# --------------------------------------------------------------------- #
# Failure-injection helpers (module level so they pickle across fork)     #
# --------------------------------------------------------------------- #
def _fail_on_x09(task):
    if any(s.name.endswith("x0.9") for s in task.scenarios):
        raise RuntimeError("poison scenario")
    return solve_scenario_shard(task)


def _fail_on_x08_x09(task):
    if any(s.name.endswith(("x0.8", "x0.9")) for s in task.scenarios):
        raise RuntimeError("poison scenario")
    return solve_scenario_shard(task)


def _system_exit_on_x09(task):
    if any(s.name.endswith("x0.9") for s in task.scenarios):
        raise SystemExit(5)
    return solve_scenario_shard(task)
