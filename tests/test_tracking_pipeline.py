"""Tests for the batched rolling-horizon tracking pipeline.

The hardening pass the tracking path was promised: a differential suite
against the sequential driver (down to bitwise identity for the S=1 cold
path — the tracking extension of the repo's bitwise-equivalence
invariant), a seeded property-style sweep over random synthetic grids and
profiles, the warm-start cache and its shard-affinity bookkeeping, and the
in-place period update of stacked solver data.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.admm.batch_solver import BatchAdmmSolver
from repro.admm.parameters import parameters_for_case
from repro.exceptions import ConfigurationError, DataError
from repro.grid.synthetic import make_synthetic_grid
from repro.parallel import DevicePool
from repro.scenarios import (
    ScenarioSet,
    period_scenario_sets,
    tracking_fleet,
)
from repro.tracking import make_load_profile, track_horizon, track_horizon_batch
from repro.tracking.load_profile import LoadProfile
from repro.tracking.pipeline import BatchHorizonResult, WarmStartCache
from repro.tracking.ramping import apply_ramp_limits, ramp_limits, ramp_window

#: Capped budgets: differential tests compare trajectories bit for bit, so
#: convergence is irrelevant and short runs keep the suite fast.
QUICK = dict(max_outer=2, max_inner=25)


def quick_params(network, **overrides):
    return parameters_for_case(network, **{**QUICK, **overrides})


def assert_period_identical(record, solution) -> None:
    """One batched period record entry vs a sequential PeriodRecord."""
    assert record.iterations == solution.inner_iterations
    assert np.array_equal(record.pg, solution.pg)
    assert np.array_equal(record.vm, solution.vm)
    assert np.array_equal(record.va, solution.va)
    assert record.objective == solution.objective
    assert record.max_violation == solution.max_constraint_violation


# --------------------------------------------------------------------- #
# Differential: batched vs the sequential driver                          #
# --------------------------------------------------------------------- #
class TestDifferential:
    def test_cold_s1_bitwise_identical_to_sequential(self, case9):
        """The cold-start S=1 batched path extends the bitwise invariant."""
        params = quick_params(case9)
        profile = make_load_profile(n_periods=3, seed=4)
        sequential = track_horizon(case9, profile, method="admm",
                                   warm_start=False, admm_params=params)
        batched = track_horizon_batch(case9, profile, params=params,
                                      warm_start=False)
        assert batched.n_periods == 3 and batched.n_scenarios == 1
        for seq_record, batch_record in zip(sequential.periods, batched.periods):
            assert_period_identical(seq_record, batch_record.solutions[0])

    def test_warm_s1_matches_sequential(self, case9):
        """Warm-started periods agree with the sequential warm driver.

        The cache's scatter-start replicates ``AdmmSolver.solve(warm_start=)``
        exactly, so the agreement is bitwise — comfortably inside any solver
        tolerance.
        """
        params = quick_params(case9)
        profile = make_load_profile(n_periods=3, seed=4)
        sequential = track_horizon(case9, profile, method="admm",
                                   warm_start=True, admm_params=params)
        batched = track_horizon_batch(case9, profile, params=params,
                                      warm_start=True)
        for seq_record, batch_record in zip(sequential.periods, batched.periods):
            assert_period_identical(seq_record, batch_record.solutions[0])

    def test_scenario_result_projection(self, case9):
        params = quick_params(case9)
        profile = make_load_profile(n_periods=2, seed=1)
        fleet = tracking_fleet(case9, "load", 3, spread=0.04)
        batched = track_horizon_batch(fleet, profile, params=params)
        series = batched.scenario_result(fleet.names[1])
        assert series.network_name == fleet.names[1]
        assert len(series.periods) == 2
        assert np.array_equal(series.objectives, batched.objectives[:, 1])
        assert series.total_iterations == int(batched.iterations[:, 1].sum())
        with pytest.raises(ConfigurationError):
            batched.scenario_result("no-such-scenario")

    def test_single_device_matches_pool_both_executors(self, case9):
        params = quick_params(case9)
        profile = make_load_profile(n_periods=3, seed=2)
        fleet = tracking_fleet(case9, "load", 4, spread=0.05)
        reference = track_horizon_batch(fleet, profile, params=params)
        for executor in ("sequential", "process"):
            pool = DevicePool(n_workers=2, executor=executor,
                              chunk_scenarios=1)
            pooled = track_horizon_batch(fleet, profile, params=params,
                                         pool=pool)
            assert pooled.executor == executor
            for ref_period, pool_period in zip(reference.periods, pooled.periods):
                for ref_solution, pool_solution in zip(ref_period.solutions,
                                                       pool_period.solutions):
                    assert ref_solution.inner_iterations == pool_solution.inner_iterations
                    assert np.array_equal(ref_solution.pg, pool_solution.pg)
                    assert np.array_equal(ref_solution.vm, pool_solution.vm)

    def test_forced_mid_horizon_steal_keeps_batch_order(self, case9):
        """Affinity mode survives a forced steal bit for bit.

        The horizon is split across two calls sharing one cache; before the
        second call every scenario's affinity is pointed at worker 0, so
        with single-scenario chunks worker 1 *must* steal — and the stolen
        scenarios' warm states ship with the chunks.  Every period must
        still re-merge in batch order identical to the single-device run of
        the unsplit horizon.
        """
        params = quick_params(case9)
        profile = make_load_profile(n_periods=4, seed=1)
        fleet = tracking_fleet(case9, "load", 4, spread=0.05)
        reference = track_horizon_batch(fleet, profile, params=params)

        pool = DevicePool(n_workers=2, executor="sequential",
                          chunk_scenarios=1)
        cache = WarmStartCache()
        first = track_horizon_batch(
            fleet, LoadProfile(profile.multipliers[:2]), params=params,
            pool=pool, cache=cache)
        for key in fleet.names:
            cache.get(key).worker = 0  # all warm states "live" on worker 0
        second = track_horizon_batch(
            fleet, LoadProfile(profile.multipliers[2:]), params=params,
            pool=pool, cache=cache)

        assert second.periods[0].steals > 0
        resumed = first.periods + second.periods
        for ref_period, period in zip(reference.periods, resumed):
            for ref_solution, solution in zip(ref_period.solutions,
                                              period.solutions):
                assert ref_solution.inner_iterations == solution.inner_iterations
                assert np.array_equal(ref_solution.pg, solution.pg)
                assert np.array_equal(ref_solution.vm, solution.vm)
                assert np.array_equal(ref_solution.va, solution.va)
                assert ref_solution.objective == solution.objective

    def test_result_records_effective_pool_width(self, case9):
        params = quick_params(case9)
        fleet = tracking_fleet(case9, "load", 2, spread=0.02)
        pool = DevicePool(n_workers=8, executor="sequential")
        result = track_horizon_batch(fleet, make_load_profile(n_periods=2),
                                     params=params, pool=pool)
        assert result.n_workers == 2  # clamped to the scenario count

    def test_affinity_keeps_scenarios_on_their_workers(self, case9):
        params = quick_params(case9)
        profile = make_load_profile(n_periods=3, seed=3)
        fleet = tracking_fleet(case9, "load", 4, spread=0.05)
        pool = DevicePool(n_workers=2, executor="sequential")
        result = track_horizon_batch(fleet, profile, params=params, pool=pool)
        placements = [period.workers for period in result.periods]
        # equal-cost fleet, no steals: period 0's LPT placement persists
        assert placements[1] == placements[0]
        assert placements[2] == placements[0]


# --------------------------------------------------------------------- #
# Property-style sweep: random grids x random profiles                    #
# --------------------------------------------------------------------- #
class TestPropertySweep:
    #: (grid seed, profile seed) pairs — recorded so failures reproduce.
    SEEDS = [(3, 11), (7, 23), (21, 5)]

    @pytest.mark.parametrize("grid_seed,profile_seed", SEEDS)
    def test_warm_never_exceeds_cold_iterations_and_ramps_hold(
            self, grid_seed, profile_seed):
        network = make_synthetic_grid(n_bus=10, n_gen=3, n_branch=13,
                                      style="pegase", seed=grid_seed)
        params = parameters_for_case(network, outer_tol=1e-2,
                                     inner_tol_primal=1e-3,
                                     inner_tol_dual=1e-2, max_outer=4,
                                     max_inner=150)
        rng = np.random.default_rng(profile_seed)
        profile = make_load_profile(n_periods=3,
                                    total_drift=float(rng.uniform(0.01, 0.05)),
                                    seed=profile_seed)
        warm = track_horizon_batch(network, profile, params=params,
                                   warm_start=True)
        cold = track_horizon_batch(network, profile, params=params,
                                   warm_start=False)

        assert warm.total_inner_iterations <= cold.total_inner_iterations, (
            f"seeds {(grid_seed, profile_seed)}: warm run used "
            f"{warm.total_inner_iterations} iterations vs "
            f"{cold.total_inner_iterations} cold")

        limit = ramp_limits(network)
        for result in (warm, cold):
            dispatches = [period.solutions[0].pg for period in result.periods]
            for previous, current in zip(dispatches[:-1], dispatches[1:]):
                assert np.all(np.abs(current - previous) <= limit + 1e-9), (
                    f"seeds {(grid_seed, profile_seed)}: ramp limit violated")


# --------------------------------------------------------------------- #
# Warm-start cache                                                        #
# --------------------------------------------------------------------- #
class TestWarmStartCache:
    def test_empty_cache_answers_none(self):
        cache = WarmStartCache()
        assert len(cache) == 0
        assert "x" not in cache
        assert cache.get("x") is None
        assert cache.states(["x", "y"]) == [None, None]
        assert cache.previous_pg(["x"]) == [None]
        assert cache.affinity(["x"]) == [None]

    def test_store_and_recall_by_identity(self):
        cache = WarmStartCache()
        pg = np.array([1.0, 2.0])
        cache.store("a", state="fake-state", pg=pg, worker=3, period=5)
        assert "a" in cache and len(cache) == 1
        record = cache.get("a")
        assert record.state == "fake-state"
        assert np.array_equal(record.pg, pg)
        assert record.worker == 3 and record.period == 5
        assert cache.states(["a", "b"]) == ["fake-state", None]
        assert cache.affinity(["b", "a"]) == [None, 3]
        cache.clear()
        assert len(cache) == 0

    def test_cache_resume_equals_continuous_horizon(self, case9):
        params = quick_params(case9)
        profile = make_load_profile(n_periods=4, seed=9)
        continuous = track_horizon_batch(case9, profile, params=params)
        cache = WarmStartCache()
        first = track_horizon_batch(case9, LoadProfile(profile.multipliers[:2]),
                                    params=params, cache=cache)
        second = track_horizon_batch(case9, LoadProfile(profile.multipliers[2:]),
                                     params=params, cache=cache)
        resumed = first.periods + second.periods
        for ref_period, period in zip(continuous.periods, resumed):
            a, b = ref_period.solutions[0], period.solutions[0]
            assert a.inner_iterations == b.inner_iterations
            assert np.array_equal(a.pg, b.pg)
            assert np.array_equal(a.vm, b.vm)
            assert a.objective == b.objective


# --------------------------------------------------------------------- #
# In-place period updates of stacked data                                 #
# --------------------------------------------------------------------- #
class TestUpdateScenarioData:
    def test_in_place_update_matches_fresh_stack(self, case9):
        params = quick_params(case9)
        base = tracking_fleet(case9, "load", 2, spread=0.1)
        solver = BatchAdmmSolver(base, params=params)

        # step the loads in place to the ones a fresh stack would carry
        scaled = ScenarioSet.from_networks(
            [scenario.network.with_scaled_loads(1.02) for scenario in base],
            names=base.names)
        solver.update_scenario_data(
            bus_pd=np.concatenate([net.bus_pd for net in scaled.networks]),
            bus_qd=np.concatenate([net.bus_qd for net in scaled.networks]),
            networks=list(scaled.networks))
        fresh = BatchAdmmSolver(scaled, params=params)
        for attr in ("bus_pd", "bus_qd", "gen_pmin", "gen_pmax"):
            assert np.array_equal(getattr(solver.data, attr),
                                  getattr(fresh.data, attr))
        updated = solver.solve()
        reference = fresh.solve()
        for a, b in zip(updated, reference):
            assert a.inner_iterations == b.inner_iterations
            assert np.array_equal(a.pg, b.pg)
            assert np.array_equal(a.vm, b.vm)

    def test_shape_validation(self, case9):
        solver = BatchAdmmSolver(tracking_fleet(case9, "load", 2),
                                 params=quick_params(case9))
        with pytest.raises(ConfigurationError):
            solver.update_scenario_data(bus_pd=np.zeros(3))
        with pytest.raises(ConfigurationError):
            solver.update_scenario_data(gen_pmin=np.zeros(1))
        with pytest.raises(ConfigurationError):
            solver.update_scenario_data(networks=[case9])


# --------------------------------------------------------------------- #
# Vectorised ramp windows and array-override views                        #
# --------------------------------------------------------------------- #
class TestRampWindow:
    def test_bitwise_matches_component_rebuild(self, case9):
        previous = 0.5 * (case9.gen_pmin + case9.gen_pmax)
        lo, hi = ramp_window(case9, previous)
        rebuilt = apply_ramp_limits(case9, previous)
        assert np.array_equal(lo, rebuilt.gen_pmin)
        assert np.array_equal(hi, rebuilt.gen_pmax)

    def test_empty_window_fix_matches(self, case9):
        previous = case9.gen_pmax.copy()  # previous point at the upper bound
        lo, hi = ramp_window(case9, previous)
        rebuilt = apply_ramp_limits(case9, previous)
        assert np.array_equal(lo, rebuilt.gen_pmin)
        assert np.array_equal(hi, rebuilt.gen_pmax)
        assert np.all(lo <= hi)

    def test_out_of_service_generator_keeps_bounds(self):
        from dataclasses import replace

        grid = make_synthetic_grid(n_bus=8, n_gen=3, n_branch=10, seed=2)
        generators = list(grid.generators)
        generators[1] = replace(generators[1], status=0)
        network = repro.Network(name=grid.name, base_mva=grid.base_mva,
                                buses=list(grid.buses),
                                branches=list(grid.branches),
                                generators=generators, costs=list(grid.costs))
        previous = np.zeros(network.n_gen)
        lo, hi = ramp_window(network, previous)
        assert lo[1] == network.gen_pmin[1]
        assert hi[1] == network.gen_pmax[1]


class TestArrayOverrides:
    def test_view_replaces_only_requested_arrays(self, case9):
        new_pd = case9.bus_pd * 1.1
        view = case9.with_array_overrides(bus_pd=new_pd, name="view")
        assert view.name == "view"
        assert np.array_equal(view.bus_pd, new_pd)
        assert view.bus_qd is case9.bus_qd
        assert view.gen_pmax is case9.gen_pmax
        assert view.buses is case9.buses
        # the original is untouched
        assert not np.array_equal(case9.bus_pd, new_pd)

    def test_shape_mismatch_rejected(self, case9):
        with pytest.raises(DataError):
            case9.with_array_overrides(bus_pd=np.zeros(case9.n_bus + 1))
        with pytest.raises(DataError):
            case9.with_array_overrides(gen_pmin=np.zeros(case9.n_gen + 2))

    def test_view_matches_with_scaled_loads_bitwise(self, case9):
        factor = 1.037
        pd_mw = np.array([bus.pd for bus in case9.buses])
        qd_mw = np.array([bus.qd for bus in case9.buses])
        view = case9.with_array_overrides(
            bus_pd=(pd_mw * factor) / case9.base_mva,
            bus_qd=(qd_mw * factor) / case9.base_mva)
        rebuilt = case9.with_scaled_loads(factor)
        assert np.array_equal(view.bus_pd, rebuilt.bus_pd)
        assert np.array_equal(view.bus_qd, rebuilt.bus_qd)


# --------------------------------------------------------------------- #
# Input validation and generators                                         #
# --------------------------------------------------------------------- #
class TestInputs:
    def test_duplicate_scenario_names_rejected(self, case9):
        fleet = ScenarioSet.from_networks([case9, case9], names=["a", "a"])
        with pytest.raises(ConfigurationError):
            track_horizon_batch(fleet, make_load_profile(n_periods=2))

    def test_profile_count_mismatch_rejected(self, case9):
        fleet = tracking_fleet(case9, "load", 2)
        with pytest.raises(ConfigurationError):
            track_horizon_batch(fleet, [make_load_profile(n_periods=2)])

    def test_profile_length_mismatch_rejected(self, case9):
        fleet = tracking_fleet(case9, "load", 2)
        profiles = [make_load_profile(n_periods=2),
                    make_load_profile(n_periods=3)]
        with pytest.raises(ConfigurationError):
            track_horizon_batch(fleet, profiles)

    def test_non_profile_rejected(self, case9):
        with pytest.raises(ConfigurationError):
            track_horizon_batch(case9, [np.arange(3)])

    def test_per_scenario_profiles(self, case9):
        params = quick_params(case9)
        fleet = tracking_fleet(case9, "load", 2, spread=0.02)
        profiles = [make_load_profile(n_periods=2, seed=1),
                    make_load_profile(n_periods=2, seed=2)]
        result = track_horizon_batch(fleet, profiles, params=params)
        assert result.periods[1].multipliers[0] != result.periods[1].multipliers[1]


class TestGenerators:
    def test_tracking_fleet_kinds(self, case9):
        load = tracking_fleet(case9, "load", 3, spread=0.1)
        assert len(load) == 3
        n1 = tracking_fleet(case9, "n-1", 3)
        assert len(n1) == 3
        assert n1.scenarios[0].name.endswith("@base")
        mc = tracking_fleet(case9, "monte-carlo", 3, sigma=0.02, seed=4)
        assert len(mc) == 3
        with pytest.raises(ConfigurationError):
            tracking_fleet(case9, "bogus")
        with pytest.raises(ConfigurationError):
            tracking_fleet(case9, "load", 0)
        with pytest.raises(DataError):
            tracking_fleet(case9, "n-1", 99)

    def test_period_scenario_sets_expand_profile(self, case9):
        fleet = tracking_fleet(case9, "load", 2, spread=0.1)
        profile = make_load_profile(n_periods=3, seed=0)
        sets = period_scenario_sets(fleet, profile)
        assert len(sets) == 3
        assert all(len(s) == 2 for s in sets)
        # period t scales the base scenario loads by the period multiplier
        expected = fleet.scenarios[0].network.bus_pd * profile.multiplier(2)
        assert np.allclose(sets[2].scenarios[0].network.bus_pd, expected)
        with pytest.raises(ConfigurationError):
            period_scenario_sets(fleet, [profile])


# --------------------------------------------------------------------- #
# Result container                                                        #
# --------------------------------------------------------------------- #
class TestBatchHorizonResult:
    def test_empty_result_totals(self):
        result = BatchHorizonResult(scenario_names=["a"], warm_start=True)
        assert result.total_inner_iterations == 0
        assert result.total_seconds == 0.0
        assert result.n_periods == 0

    def test_series_shapes(self, case9):
        params = quick_params(case9)
        fleet = tracking_fleet(case9, "load", 2, spread=0.03)
        result = track_horizon_batch(fleet, make_load_profile(n_periods=2),
                                     params=params)
        assert result.objectives.shape == (2, 2)
        assert result.violations.shape == (2, 2)
        assert result.iterations.shape == (2, 2)
        assert result.cumulative_seconds.shape == (2,)
        assert np.all(np.diff(result.cumulative_seconds) >= 0)
