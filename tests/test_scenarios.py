"""Tests for the scenario subsystem: generators, layout, and stacking."""

import numpy as np
import pytest

from repro.admm.data import COUPLING_GROUPS, ComponentData
from repro.admm.parameters import AdmmParameters
from repro.admm.state import cold_start_state
from repro.exceptions import ConfigurationError, DataError
from repro.scenarios import (
    Scenario,
    ScenarioSet,
    as_scenario_set,
    contingency_scenarios,
    load_scaling_scenarios,
    monte_carlo_load_scenarios,
    penalty_sweep_scenarios,
    segments_from_offsets,
)


class TestScenarioSet:
    def test_from_networks(self, case3, case9):
        scenario_set = ScenarioSet.from_networks([case3, case9])
        assert len(scenario_set) == 2
        assert scenario_set.names == ["case3", "case9"]
        assert scenario_set[1].network is case9

    def test_empty_set_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioSet(scenarios=())

    def test_invalid_penalty_override_rejected(self, case3):
        with pytest.raises(ConfigurationError):
            Scenario(name="bad", network=case3, rho_pq=-1.0)

    def test_as_scenario_set_coercions(self, case3, case9):
        assert len(as_scenario_set(case3)) == 1
        assert len(as_scenario_set([case3, case9])) == 2
        scenario = Scenario(name="s", network=case3)
        assert as_scenario_set([scenario])[0] is scenario
        existing = ScenarioSet.from_networks([case3])
        assert as_scenario_set(existing) is existing

    def test_extended_and_describe(self, case3, case9):
        base = ScenarioSet.from_networks([case3])
        grown = base.extended(ScenarioSet.from_networks([case9]))
        assert len(grown) == 2
        assert "case9" in grown.describe()


class TestGenerators:
    def test_load_scaling(self, case9):
        scenario_set = load_scaling_scenarios(case9, [0.8, 1.0, 1.2])
        assert len(scenario_set) == 3
        assert len(set(scenario_set.names)) == 3
        scaled = scenario_set[0].network
        assert np.allclose(scaled.bus_pd, 0.8 * case9.bus_pd)
        # The base network is untouched.
        assert scenario_set[1].network.bus_pd == pytest.approx(case9.bus_pd)

    def test_monte_carlo_deterministic(self, case9):
        a = monte_carlo_load_scenarios(case9, 3, sigma=0.1, seed=5)
        b = monte_carlo_load_scenarios(case9, 3, sigma=0.1, seed=5)
        for sa, sb in zip(a, b):
            assert np.allclose(sa.network.bus_pd, sb.network.bus_pd)
        assert not np.allclose(a[0].network.bus_pd, a[1].network.bus_pd)

    def test_contingencies_skip_islanding_outages(self, case9):
        scenario_set = contingency_scenarios(case9)
        # case9's three generator step-up transformers are bridges; their
        # outage would island a generator bus and must be skipped.
        assert 0 < len(scenario_set) < case9.n_branch
        for scenario in scenario_set:
            assert scenario.network.n_branch == case9.n_branch - 1

    def test_explicit_islanding_outage_rejected(self, case9):
        kept = {int(name.rsplit(":", 1)[1])
                for name in contingency_scenarios(case9).names}
        bridges = sorted(set(range(case9.n_branch)) - kept)
        assert bridges
        with pytest.raises(DataError):
            contingency_scenarios(case9, branch_indices=[bridges[0]])

    def test_contingency_include_base(self, case9):
        scenario_set = contingency_scenarios(case9, include_base=True)
        assert scenario_set[0].network is case9

    def test_penalty_sweep(self, case9):
        scenario_set = penalty_sweep_scenarios(case9, [(1e2, 1e4), (4e2, 4e4)])
        assert scenario_set[0].rho_pq == 1e2
        assert scenario_set[1].rho_va == 4e4
        assert scenario_set[0].network is case9


class TestBranchOutage:
    def test_outage_reduces_live_branches(self, case9):
        outaged = case9.with_branch_outage(1)
        assert outaged.n_branch == case9.n_branch - 1
        assert case9.n_branch == 9  # original untouched
        assert len(outaged.branches) == len(case9.branches)

    def test_out_of_range_rejected(self, case9):
        with pytest.raises(DataError):
            case9.with_branch_outage(case9.n_branch)

    def test_shared_branch_instance_outages_one_circuit(self, case3):
        # A double circuit modelled as the same Branch instance listed twice:
        # only the requested circuit goes out, not both.
        from repro.grid.network import Network

        circuit = case3.branches[0]
        doubled = Network(name="doubled", base_mva=case3.base_mva,
                          buses=list(case3.buses),
                          branches=[circuit, circuit] + list(case3.branches[1:]),
                          generators=list(case3.generators), costs=list(case3.costs))
        outaged = doubled.with_branch_outage(0)
        assert outaged.n_branch == doubled.n_branch - 1


class TestStacking:
    @pytest.fixture(scope="class")
    def stacked(self, case3, case9):
        params = AdmmParameters()
        data = ComponentData.from_scenarios(
            [case3, case9], params, penalties=[(100.0, 1e4), (400.0, 4e4)])
        return data

    def test_layout_offsets_and_segments(self, stacked, case3, case9):
        layout = stacked.scenario_layout
        assert layout.n_scenarios == 2
        assert list(layout.bus_offsets) == [0, case3.n_bus, case3.n_bus + case9.n_bus]
        assert list(layout.counts("branch")) == [case3.n_branch, case9.n_branch]
        assert np.array_equal(layout.segments("bus"),
                              np.repeat([0, 1], [case3.n_bus, case9.n_bus]))

    def test_bus_indices_offset_into_own_block(self, stacked, case3):
        second = stacked.scenario_layout.block("branch", 1)
        assert stacked.branch_from[second].min() >= case3.n_bus
        first = stacked.scenario_layout.block("branch", 0)
        assert stacked.branch_from[first].max() < case3.n_bus

    def test_rho_piecewise_constant(self, stacked, case3):
        rho = stacked.rho["gp"]
        n3 = case3.n_gen
        assert np.allclose(rho[:n3], 100.0)
        assert np.allclose(rho[n3:], 400.0)
        assert np.allclose(stacked.rho["wi"][:case3.n_branch], 1e4)

    def test_blocks_match_standalone_layout(self, stacked, case9):
        standalone = ComponentData.from_network(
            case9, AdmmParameters(rho_pq=400.0, rho_va=4e4))
        block = stacked.scenario_layout.block("gen", 1)
        assert np.array_equal(stacked.gen_pmax[block], standalone.gen_pmax)
        branch_block = stacked.scenario_layout.block("branch", 1)
        assert np.array_equal(stacked.branch_rate_sq[branch_block],
                              standalone.branch_rate_sq)

    def test_cold_start_blocks_match_standalone(self, stacked, case9):
        standalone = ComponentData.from_network(
            case9, AdmmParameters(rho_pq=400.0, rho_va=4e4))
        stacked_state = cold_start_state(stacked)
        single_state = cold_start_state(standalone)
        branch_block = stacked.scenario_layout.block("branch", 1)
        assert np.array_equal(stacked_state.pij[branch_block], single_state.pij)
        bus_block = stacked.scenario_layout.block("bus", 1)
        assert np.array_equal(stacked_state.w[bus_block], single_state.w)
        for group in COUPLING_GROUPS:
            block = stacked.group_block(group, 1)
            assert np.array_equal(stacked_state.y[group][block], single_state.y[group])

    def test_per_element_broadcast(self, stacked):
        values = np.array([1.0, 2.0])
        expanded = stacked.per_element(values, "wi")
        layout = stacked.scenario_layout
        assert expanded.shape[0] == stacked.n_branch
        assert np.all(expanded[layout.segments("branch") == 1] == 2.0)
        assert stacked.per_element(3.0, "wi") == 3.0

    def test_single_scenario_layout_is_trivial(self, case9):
        data = ComponentData.from_network(case9, AdmmParameters())
        layout = data.scenario_layout
        assert layout.n_scenarios == 1
        assert layout.network(0) is case9
        assert np.all(layout.segments("gen") == 0)


class TestSegmentsFromOffsets:
    def test_basic(self):
        assert np.array_equal(segments_from_offsets(np.array([0, 2, 2, 5])),
                              [0, 0, 2, 2, 2])

    def test_empty(self):
        assert segments_from_offsets(np.array([0])).size == 0
