"""Tests for Ybus assembly, Newton power flow, DC power flow, and flow metrics."""

import numpy as np
import pytest

from repro.exceptions import ConvergenceError
from repro.grid.components import BusType
from repro.powerflow import branch_flows, build_ybus, dc_power_flow, solve_power_flow
from repro.powerflow.flows import line_limit_violation, power_balance_residual
from repro.powerflow.ybus import bus_injections


class TestYbus:
    def test_shapes(self, case9):
        ybus, yf, yt = build_ybus(case9)
        assert ybus.shape == (9, 9)
        assert yf.shape == (9, 9)
        assert yt.shape == (9, 9)

    def test_symmetric_for_untapped_network(self, case9):
        # case9 has no transformers, so Ybus is structurally symmetric.
        ybus, _, _ = build_ybus(case9)
        dense = ybus.toarray()
        assert np.allclose(dense, dense.T)

    def test_row_sums_equal_shunt_for_lossy_lines(self, case3):
        # Injecting a flat voltage profile of 1 pu gives the total shunt
        # (charging) generation at each bus as the only net injection.
        p, q = bus_injections(case3, np.ones(3), np.zeros(3))
        # case3 has charging susceptance, so q < 0 (capacitive generation)
        assert np.all(q < 0)
        assert np.allclose(p, 0.0, atol=1e-6) or np.all(p >= 0)

    def test_bus_injections_match_branch_flow_sums(self, case9, rng):
        vm = rng.uniform(0.95, 1.05, 9)
        va = rng.uniform(-0.2, 0.2, 9)
        p_inj, q_inj = bus_injections(case9, vm, va)
        flows = branch_flows(case9, vm, va)
        p_sum = np.zeros(9)
        q_sum = np.zeros(9)
        np.add.at(p_sum, case9.branch_from, flows.pij)
        np.add.at(q_sum, case9.branch_from, flows.qij)
        np.add.at(p_sum, case9.branch_to, flows.pji)
        np.add.at(q_sum, case9.branch_to, flows.qji)
        # case9 has no bus shunts, so injections equal the branch-flow sums.
        assert np.allclose(p_inj, p_sum, atol=1e-10)
        assert np.allclose(q_inj, q_sum, atol=1e-10)


class TestNewtonPowerFlow:
    def test_case9_converges(self, case9):
        result = solve_power_flow(case9)
        assert result.converged
        assert result.max_mismatch < 1e-8
        assert result.iterations <= 10

    def test_case5_converges(self, case5):
        result = solve_power_flow(case5)
        assert result.converged

    def test_synthetic_converges(self, small_synthetic):
        result = solve_power_flow(small_synthetic)
        assert result.converged

    def test_pq_balance_at_solution(self, case9):
        result = solve_power_flow(case9)
        p_res, q_res = power_balance_residual(case9, result.vm, result.va,
                                              case9.gen_pg0, case9.gen_qg0)
        pq = np.flatnonzero(case9.bus_type == int(BusType.PQ))
        assert np.max(np.abs(p_res[pq])) < 1e-8
        assert np.max(np.abs(q_res[pq])) < 1e-8

    def test_voltage_in_reasonable_range(self, case9):
        result = solve_power_flow(case9)
        assert np.all(result.vm > 0.8) and np.all(result.vm < 1.2)

    def test_no_load_gives_near_flat_profile(self, case9):
        unloaded = case9.with_scaled_loads(0.0)
        zero_pg = np.zeros(case9.n_gen)
        result = solve_power_flow(unloaded, pg=zero_pg, qg=zero_pg)
        assert result.converged
        # Without load or dispatch, angles stay tiny (only charging flows).
        assert np.max(np.abs(result.va)) < 0.05

    def test_failure_raises_when_requested(self, case9):
        hopeless = case9.with_scaled_loads(200.0)  # infeasible loading
        with pytest.raises(ConvergenceError):
            solve_power_flow(hopeless, raise_on_failure=True, max_iter=5)


class TestDcPowerFlow:
    def test_reference_angle_is_zero(self, case9):
        result = dc_power_flow(case9)
        assert result.va[case9.ref_bus] == 0.0

    def test_flow_balance_at_each_bus(self, case9):
        result = dc_power_flow(case9)
        balance = result.injections.copy()
        np.subtract.at(balance, case9.branch_from, result.flows)
        np.add.at(balance, case9.branch_to, result.flows)
        assert np.allclose(balance, 0.0, atol=1e-9)

    def test_explicit_dispatch(self, case9):
        pg = case9.gen_pg0
        result = dc_power_flow(case9, pg=pg)
        assert result.flows.shape == (case9.n_branch,)


class TestFlowMetrics:
    def test_no_violation_for_tiny_flows(self, case9):
        flows = branch_flows(case9, np.ones(9), np.zeros(9))
        violation = line_limit_violation(case9, flows)
        assert np.all(violation >= 0)
        assert violation.max() < 0.1

    def test_violation_detected_for_large_angle_spread(self, case9):
        va = np.linspace(0.0, 2.0, 9)
        flows = branch_flows(case9, np.ones(9), va)
        violation = line_limit_violation(case9, flows)
        assert violation.max() > 0.0

    def test_capacity_fraction_tightens(self, case9):
        va = np.linspace(0.0, 0.7, 9)
        flows = branch_flows(case9, np.ones(9), va)
        loose = line_limit_violation(case9, flows, capacity_fraction=1.0)
        tight = line_limit_violation(case9, flows, capacity_fraction=0.5)
        assert tight.max() >= loose.max()

    def test_unlimited_branch_never_violates(self, small_synthetic):
        net = small_synthetic
        va = np.linspace(0.0, 1.0, net.n_bus)
        flows = branch_flows(net, np.ones(net.n_bus), va)
        violation = line_limit_violation(net, flows)
        assert np.all(violation[~net.branch_has_limit] == 0.0)
