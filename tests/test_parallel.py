"""Tests for the simulated device layer and kernel helpers."""

import numpy as np
import pytest

from repro.exceptions import DimensionError
from repro.parallel import SimulatedDevice, elementwise_kernel, launch_over_elements
from repro.parallel.kernels import scatter_add, segment_max, segment_sum


class TestSimulatedDevice:
    def test_launch_returns_value(self):
        device = SimulatedDevice()
        assert device.launch("add", lambda a, b: a + b, 2, 3) == 5

    def test_timings_accumulate(self):
        device = SimulatedDevice()
        for _ in range(4):
            device.launch("noop", lambda: None)
        assert device.kernels["noop"].launches == 4
        assert device.kernels["noop"].total_seconds >= 0.0
        assert device.total_kernel_seconds() >= device.kernels["noop"].total_seconds

    def test_exception_still_recorded(self):
        device = SimulatedDevice()
        with pytest.raises(ValueError):
            device.launch("boom", lambda: (_ for _ in ()).throw(ValueError("x")).__next__())
        assert device.kernels["boom"].launches == 1

    def test_reset(self):
        device = SimulatedDevice()
        device.launch("k", lambda: 1)
        device.reset()
        assert device.total_kernel_seconds() == 0.0
        assert not device.kernels

    def test_report_lists_kernels(self):
        device = SimulatedDevice(name="test-dev")
        device.launch("alpha", lambda: 1)
        device.launch("beta", lambda: 2)
        report = device.report()
        assert "alpha" in report and "beta" in report and "test-dev" in report

    def test_mean_seconds(self):
        device = SimulatedDevice()
        device.launch("k", lambda: sum(range(1000)))
        rec = device.kernels["k"]
        assert rec.mean_seconds == pytest.approx(rec.total_seconds)

    def test_element_throughput_tracked(self):
        device = SimulatedDevice()
        device.launch("k", lambda: sum(range(10000)), elements=64)
        device.launch("k", lambda: sum(range(10000)), elements=64)
        rec = device.kernels["k"]
        assert rec.total_elements == 128
        assert rec.elements_per_second > 0
        assert "elem/s" in device.report()

    def test_throughput_zero_without_elements(self):
        device = SimulatedDevice()
        device.launch("k", lambda: None)
        assert device.kernels["k"].elements_per_second == 0.0
        assert "elem/s" not in device.report()

    def test_as_dict_round_trip(self):
        device = SimulatedDevice(name="dev")
        device.launch("a", lambda: None, elements=8)
        snapshot = device.as_dict()
        assert snapshot["device"] == "dev"
        assert snapshot["kernels"]["a"]["launches"] == 1
        assert snapshot["kernels"]["a"]["total_elements"] == 8
        assert snapshot["total_seconds"] == pytest.approx(device.total_kernel_seconds())


class TestKernels:
    def test_elementwise_decorator_marks_function(self):
        @elementwise_kernel
        def double(x):
            return 2 * x

        assert double.__elementwise__ is True
        assert np.array_equal(double(np.arange(3)), np.array([0, 2, 4]))

    def test_launch_over_elements_matches_python_loop(self, rng):
        def kernel(a, b):
            return np.clip(a * b + 1.0, 0.0, 5.0)

        a = rng.normal(size=50)
        b = rng.normal(size=50)
        vectorised = launch_over_elements(kernel, a, b)
        looped = launch_over_elements(kernel, a, b, python_loop=True)
        assert np.allclose(vectorised, looped)

    def test_launch_over_elements_tuple_outputs(self, rng):
        def kernel(a):
            return np.sin(a), np.cos(a)

        a = rng.normal(size=20)
        vec = launch_over_elements(kernel, a)
        loop = launch_over_elements(kernel, a, python_loop=True)
        assert np.allclose(vec[0], loop[0])
        assert np.allclose(vec[1], loop[1])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(DimensionError):
            launch_over_elements(lambda a, b: a + b, np.zeros(3), np.zeros(4))

    def test_no_arrays_rejected(self):
        with pytest.raises(DimensionError):
            launch_over_elements(lambda: np.zeros(1))

    def test_segment_sum(self):
        values = np.array([1.0, 2.0, 3.0, 4.0])
        ids = np.array([0, 1, 0, 2])
        assert np.allclose(segment_sum(values, ids, 3), [4.0, 2.0, 4.0])

    def test_segment_sum_empty_segment(self):
        out = segment_sum(np.array([1.0]), np.array([2]), 4)
        assert np.allclose(out, [0, 0, 1.0, 0])

    def test_scatter_add_accumulates_duplicates(self):
        target = np.zeros(3)
        scatter_add(target, np.array([0, 0, 2]), np.array([1.0, 2.0, 5.0]))
        assert np.allclose(target, [3.0, 0.0, 5.0])

    def test_segment_sum_single_segment_matches_global_sum(self, rng):
        values = rng.normal(size=17)
        out = segment_sum(values, np.zeros(17, dtype=int), 1)
        assert out.shape == (1,)
        assert out[0] == pytest.approx(values.sum())

    def test_segment_sum_all_segments_empty(self):
        out = segment_sum(np.zeros(0), np.zeros(0, dtype=int), 3)
        assert np.array_equal(out, np.zeros(3))

    def test_segment_max(self):
        values = np.array([1.0, -2.0, 3.0, 0.5])
        ids = np.array([0, 1, 0, 1])
        assert np.allclose(segment_max(values, ids, 2), [3.0, 0.5])

    def test_segment_max_empty_segment_gets_initial(self):
        out = segment_max(np.array([-5.0]), np.array([1]), 3, initial=0.0)
        assert np.allclose(out, [0.0, -5.0, 0.0])

    def test_segment_max_no_values(self):
        out = segment_max(np.zeros(0), np.zeros(0, dtype=int), 2, initial=7.0)
        assert np.allclose(out, [7.0, 7.0])

    def test_segment_max_single_scenario_matches_global_max(self, rng):
        values = np.abs(rng.normal(size=23))
        out = segment_max(values, np.zeros(23, dtype=int), 1)
        assert out[0] == values.max()
