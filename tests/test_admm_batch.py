"""Batched-vs-sequential ADMM equivalence and batch-driver mechanics.

The scenario-batched solver is designed so that every scenario's iteration
trajectory is *bit for bit* the one a standalone solve would produce:
scenario blocks are contiguous, all kernels are component-separable, and
every reduction (residual norms, ``β`` / ``λ`` updates, convergence masks)
is per-scenario.  The equivalence tests therefore assert exact agreement of
iteration counts and near-exact agreement of objectives — far tighter than
the 1e-6 acceptance tolerance.
"""

import numpy as np
import pytest

from repro.admm import (
    AdmmParameters,
    BatchAdmmSolver,
    scenario_parameters,
    solve_acopf_admm,
    solve_acopf_admm_batch,
)
from repro.admm.batch_solver import extract_scenario_state
from repro.parallel.device import SimulatedDevice
from repro.scenarios import Scenario, ScenarioSet, load_scaling_scenarios, penalty_sweep_scenarios

#: Budget small enough for unit-test latency; equivalence holds regardless.
FAST = dict(max_outer=2, max_inner=15)


def assert_solutions_match(batched, sequential, tol=1e-6):
    assert batched.converged == sequential.converged
    assert batched.inner_iterations == sequential.inner_iterations
    assert batched.outer_iterations == sequential.outer_iterations
    assert abs(batched.objective - sequential.objective) <= tol
    assert abs(batched.max_constraint_violation
               - sequential.max_constraint_violation) <= tol
    assert np.allclose(batched.vm, sequential.vm, atol=tol)
    assert np.allclose(batched.va, sequential.va, atol=tol)
    assert np.allclose(batched.pg, sequential.pg, atol=tol)


class TestEquivalenceFast:
    def test_single_scenario_batch_matches_plain_solver(self, case3):
        params = AdmmParameters(**FAST)
        batched = solve_acopf_admm_batch([case3], params=params)
        sequential = solve_acopf_admm(case3, params=params)
        assert len(batched) == 1
        assert_solutions_match(batched[0], sequential, tol=1e-12)

    def test_mixed_networks_batch(self, case3, case5, case9):
        params = AdmmParameters(**FAST)
        scenario_set = ScenarioSet.from_networks([case3, case9, case5])
        batched = solve_acopf_admm_batch(scenario_set, params=params)
        for scenario, solution in zip(scenario_set, batched):
            sequential = solve_acopf_admm(
                scenario.network, params=scenario_parameters(scenario, params))
            assert_solutions_match(solution, sequential, tol=1e-9)

    def test_penalty_sweep_batch(self, case3):
        scenario_set = penalty_sweep_scenarios(case3, [(1e2, 1e4), (4e2, 4e4)])
        params = AdmmParameters(**FAST)
        batched = solve_acopf_admm_batch(scenario_set, params=params)
        for scenario, solution in zip(scenario_set, batched):
            sequential = solve_acopf_admm(
                scenario.network, params=scenario_parameters(scenario, params))
            assert_solutions_match(solution, sequential, tol=1e-9)
        # Different penalties really were applied per scenario.
        assert batched[0].iteration_log[0].primal_residual \
            != batched[1].iteration_log[0].primal_residual

    def test_iteration_logs_match(self, case3, case5):
        params = AdmmParameters(**FAST)
        scenario_set = ScenarioSet.from_networks([case3, case5])
        batched = solve_acopf_admm_batch(scenario_set, params=params)
        for scenario, solution in zip(scenario_set, batched):
            sequential = solve_acopf_admm(
                scenario.network, params=scenario_parameters(scenario, params))
            assert len(solution.iteration_log) == len(sequential.iteration_log)
            for b_entry, s_entry in zip(solution.iteration_log,
                                        sequential.iteration_log):
                assert b_entry.inner_iterations == s_entry.inner_iterations
                assert b_entry.beta == s_entry.beta
                assert b_entry.z_norm == pytest.approx(s_entry.z_norm, abs=1e-12)


class TestEquivalenceCase9:
    """The acceptance-criterion configuration: ≥4 scenarios of case9."""

    @pytest.fixture(scope="class")
    def params(self):
        # A budget where the light-load scenario converges a full outer
        # round before the others (exercising the freeze path) while the
        # test stays fast.
        return AdmmParameters(max_outer=5, max_inner=120, outer_tol=2e-2)

    @pytest.fixture(scope="class")
    def scenario_set(self, case9):
        return load_scaling_scenarios(case9, [0.4, 0.9, 1.0, 1.1])

    @pytest.fixture(scope="class")
    def batched(self, scenario_set, params):
        return solve_acopf_admm_batch(scenario_set, params=params)

    def test_matches_sequential_solves(self, scenario_set, params, batched):
        for scenario, solution in zip(scenario_set, batched):
            sequential = solve_acopf_admm(
                scenario.network, params=scenario_parameters(scenario, params))
            assert_solutions_match(solution, sequential, tol=1e-6)

    def test_all_converged(self, batched):
        assert all(solution.converged for solution in batched)

    def test_one_scenario_converges_early(self, batched):
        # The lightly loaded scenario freezes before the others; the shared
        # kernels keep running on the full arrays without disturbing it.
        inner = [solution.inner_iterations for solution in batched]
        outer = [solution.outer_iterations for solution in batched]
        assert min(outer) < max(outer)
        assert inner[0] == min(inner)
        assert batched[0].solve_seconds < batched[-1].solve_seconds


class TestBatchDriverMechanics:
    def test_time_limit_returns_all_solutions(self, case9):
        scenario_set = load_scaling_scenarios(case9, [0.9, 1.0])
        solutions = solve_acopf_admm_batch(
            scenario_set, params=AdmmParameters(max_outer=20, max_inner=1000),
            time_limit=0.3)
        assert len(solutions) == 2
        assert all(solution is not None for solution in solutions)

    def test_device_records_stacked_throughput(self, case3):
        device = SimulatedDevice()
        scenario_set = ScenarioSet.from_networks([case3, case3])
        solve_acopf_admm_batch(scenario_set, params=AdmmParameters(**FAST),
                               device=device)
        record = device.kernels["branch_update"]
        n_branch = 2 * case3.n_branch
        assert record.total_elements == record.launches * n_branch
        assert device.as_dict()["kernels"]["branch_update"]["total_elements"] > 0

    def test_extracted_state_warm_starts_plain_solver(self, case3, case5):
        params = AdmmParameters(**FAST)
        solver = BatchAdmmSolver(ScenarioSet.from_networks([case3, case5]),
                                 params=params)
        solutions = solver.solve()
        state = extract_scenario_state(solver.data, solver.last_state, 1)
        assert state.w.shape == (case5.n_bus,)
        warm = solve_acopf_admm(case5, params=params, warm_start=state)
        assert np.isfinite(warm.objective)
        # The snapshot in the returned solution is detached from the batch.
        assert solutions[1].state.pg.shape[0] == solver.data.scenario_layout.counts("gen")[1]

    def test_scenario_parameters_resolution(self, case3):
        scenario = Scenario(name="s", network=case3, rho_pq=123.0)
        params = AdmmParameters(rho_pq=1.0, rho_va=2.0, max_outer=7)
        resolved = scenario_parameters(scenario, params)
        assert resolved.rho_pq == 123.0   # scenario override wins
        assert resolved.rho_va == 2.0     # falls back to shared params
        assert resolved.max_outer == 7
        default = scenario_parameters(Scenario(name="d", network=case3))
        assert default.rho_pq > 0  # Table-I heuristic fallback

    def test_scenario_parameters_partial_override_uses_heuristic(self):
        from repro.admm.parameters import suggest_penalties
        from repro.grid.cases import load_case

        # 1354pegase's Table-I penalties differ from the dataclass defaults,
        # so this distinguishes heuristic fallback from default fallback.
        network = load_case("1354pegase_like")
        scenario = Scenario(name="s", network=network, rho_pq=123.0)
        resolved = scenario_parameters(scenario)  # no shared params
        assert resolved.rho_va == suggest_penalties(network)[1]
        assert resolved.rho_va != AdmmParameters().rho_va
        assert resolved.rho_pq == 123.0

    def test_equivalence_with_multiple_auglag_iterations(self, case3, case9):
        # auglag_max_iter > 1 re-solves branch subproblems; a scenario whose
        # own line-limit loop has finished must stay frozen through the
        # re-solves other scenarios trigger.
        params = AdmmParameters(max_outer=1, max_inner=8, auglag_max_iter=3)
        scenario_set = ScenarioSet.from_networks([case3, case9])
        batched = solve_acopf_admm_batch(scenario_set, params=params)
        for scenario, solution in zip(scenario_set, batched):
            sequential = solve_acopf_admm(
                scenario.network, params=scenario_parameters(scenario, params))
            assert_solutions_match(solution, sequential, tol=1e-9)
