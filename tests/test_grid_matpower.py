"""Tests for the MATPOWER case parser and writer."""

import numpy as np
import pytest

from repro.exceptions import DataError
from repro.grid.cases import CASE9_TEXT
from repro.grid.components import CostModel
from repro.grid.matpower import case_to_text, parse_case_text, read_case, write_case


class TestParsing:
    def test_case9_counts(self):
        net = parse_case_text(CASE9_TEXT, name="case9")
        assert net.n_bus == 9
        assert net.n_branch == 9
        assert net.n_gen == 3
        assert net.base_mva == 100.0

    def test_case9_loads(self):
        net = parse_case_text(CASE9_TEXT)
        loads = {bus.index: bus.pd for bus in net.buses}
        assert loads[5] == 90.0 and loads[7] == 100.0 and loads[9] == 125.0

    def test_case9_costs(self):
        net = parse_case_text(CASE9_TEXT)
        assert net.costs[0].model == CostModel.POLYNOMIAL
        assert net.costs[0].as_quadratic() == (0.11, 5.0, 150.0)

    def test_comments_are_ignored(self):
        text = CASE9_TEXT.replace("mpc.baseMVA = 100;",
                                  "% a comment line\nmpc.baseMVA = 100; % trailing")
        net = parse_case_text(text)
        assert net.base_mva == 100.0

    def test_missing_matrix_raises(self):
        with pytest.raises(DataError, match="missing"):
            parse_case_text("function mpc = x\nmpc.baseMVA = 100;\nmpc.bus = [1 3 0 0 0 0 1 1 0 345 1 1.1 0.9;];")

    def test_commas_as_separators(self):
        text = CASE9_TEXT.replace("\t1\t3\t0\t0\t0\t0\t1\t1\t0\t345\t1\t1.1\t0.9;",
                                  "1, 3, 0, 0, 0, 0, 1, 1, 0, 345, 1, 1.1, 0.9;")
        net = parse_case_text(text)
        assert net.n_bus == 9

    def test_gencost_defaults_when_absent(self):
        import re
        text = re.sub(r"mpc\.gencost = \[.*?\];", "", CASE9_TEXT, flags=re.DOTALL)
        net = parse_case_text(text)
        assert len(net.costs) == net.n_gen
        assert net.costs[0].as_quadratic() == (0.0, 0.0, 0.0)


class TestRoundTrip:
    def test_text_round_trip(self, case9):
        text = case_to_text(case9)
        reparsed = parse_case_text(text, name="case9rt")
        assert np.allclose(reparsed.bus_pd, case9.bus_pd)
        assert np.allclose(reparsed.bus_qd, case9.bus_qd)
        assert np.allclose(reparsed.branch_g_ii, case9.branch_g_ii)
        assert np.allclose(reparsed.branch_b_ij, case9.branch_b_ij)
        assert np.allclose(reparsed.gen_pmax, case9.gen_pmax)
        assert np.allclose(reparsed.gen_cost_c2, case9.gen_cost_c2)

    def test_synthetic_round_trip(self, small_synthetic):
        text = case_to_text(small_synthetic)
        reparsed = parse_case_text(text, name="rt")
        assert reparsed.n_bus == small_synthetic.n_bus
        assert reparsed.n_branch == small_synthetic.n_branch
        assert np.allclose(reparsed.branch_rate_a, small_synthetic.branch_rate_a)
        assert np.allclose(reparsed.gen_cost_c1, small_synthetic.gen_cost_c1, rtol=1e-6)

    def test_file_round_trip(self, tmp_path, case9):
        path = write_case(case9, tmp_path / "case9_copy.m")
        reloaded = read_case(path)
        assert reloaded.name == "case9_copy"
        assert reloaded.n_bus == 9
        assert np.allclose(reloaded.bus_pd, case9.bus_pd)

    def test_read_missing_file(self, tmp_path):
        with pytest.raises(DataError, match="does not exist"):
            read_case(tmp_path / "nope.m")
