"""Tests for the shared per-branch flow derivatives.

These derivatives feed three different solvers, so they get the heaviest
property-based scrutiny in the suite: values must agree with a complex-power
reference computation, and gradients/Hessians must match finite differences
for arbitrary voltage states.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.grid.cases import load_case
from repro.powerflow.branch_derivatives import (
    all_flow_values,
    branch_quantities,
    quantity_value,
    quantity_value_grad,
    quantity_value_grad_hess,
)

CASE9 = load_case("case9")
QUANTITIES = branch_quantities(CASE9)

voltage_state = st.tuples(
    st.floats(min_value=0.9, max_value=1.1),
    st.floats(min_value=0.9, max_value=1.1),
    st.floats(min_value=-0.5, max_value=0.5),
    st.floats(min_value=-0.5, max_value=0.5),
)


def _reference_flows(network, vi, vj, ti, tj):
    """Complex-power reference: S_from = V_f conj(Yff V_f + Yft V_t)."""
    vf = vi * np.exp(1j * ti)
    vt = vj * np.exp(1j * tj)
    yff = network.branch_g_ii + 1j * network.branch_b_ii
    yft = network.branch_g_ij + 1j * network.branch_b_ij
    ytf = network.branch_g_ji + 1j * network.branch_b_ji
    ytt = network.branch_g_jj + 1j * network.branch_b_jj
    s_from = vf * np.conj(yff * vf + yft * vt)
    s_to = vt * np.conj(ytf * vf + ytt * vt)
    return s_from.real, s_from.imag, s_to.real, s_to.imag


class TestValues:
    def test_matches_complex_power_reference(self, rng):
        nl = CASE9.n_branch
        vi = rng.uniform(0.9, 1.1, nl)
        vj = rng.uniform(0.9, 1.1, nl)
        ti = rng.uniform(-0.4, 0.4, nl)
        tj = rng.uniform(-0.4, 0.4, nl)
        pij, qij, pji, qji = all_flow_values(QUANTITIES, vi, vj, ti, tj)
        rp, rq, rpj, rqj = _reference_flows(CASE9, vi, vj, ti, tj)
        assert np.allclose(pij, rp)
        assert np.allclose(qij, rq)
        assert np.allclose(pji, rpj)
        assert np.allclose(qji, rqj)

    def test_zero_angle_symmetric_voltage(self):
        # With equal voltages and zero angle difference, the series branch
        # carries only the charging/shunt reactive component.
        nl = CASE9.n_branch
        ones = np.ones(nl)
        zeros = np.zeros(nl)
        pij, _, pji, _ = all_flow_values(QUANTITIES, ones, ones, zeros, zeros)
        # Lossless (r=0) untapped lines carry no real power at zero angle.
        lossless = np.isclose(CASE9.branch_g_ij, 0.0)
        untapped = np.array([br.tap in (0, 0.0) for br in CASE9.live_branches])
        sel = lossless & untapped
        assert np.allclose(pij[sel], 0.0, atol=1e-12)
        assert np.allclose(pji[sel], 0.0, atol=1e-12)

    def test_take_subsets_branches(self):
        idx = np.array([0, 3, 5])
        sub = QUANTITIES.take(idx)
        assert len(sub) == 3
        assert np.allclose(sub.pij.k_i, QUANTITIES.pij.k_i[idx])


class TestDerivatives:
    @pytest.mark.parametrize("name", ["pij", "qij", "pji", "qji"])
    def test_gradient_matches_finite_differences(self, name, rng):
        coeff = getattr(QUANTITIES, name)
        nl = len(coeff)
        state = [rng.uniform(0.9, 1.1, nl), rng.uniform(0.9, 1.1, nl),
                 rng.uniform(-0.4, 0.4, nl), rng.uniform(-0.4, 0.4, nl)]
        _, grad = quantity_value_grad(coeff, *state)
        eps = 1e-6
        for k in range(4):
            plus = [s.copy() for s in state]
            minus = [s.copy() for s in state]
            plus[k] += eps
            minus[k] -= eps
            fd = (quantity_value(coeff, *plus) - quantity_value(coeff, *minus)) / (2 * eps)
            assert np.allclose(grad[:, k], fd, atol=1e-6)

    @pytest.mark.parametrize("name", ["pij", "qij", "pji", "qji"])
    def test_hessian_matches_finite_differences(self, name, rng):
        coeff = getattr(QUANTITIES, name)
        nl = len(coeff)
        state = [rng.uniform(0.9, 1.1, nl), rng.uniform(0.9, 1.1, nl),
                 rng.uniform(-0.4, 0.4, nl), rng.uniform(-0.4, 0.4, nl)]
        _, _, hess = quantity_value_grad_hess(coeff, *state)
        eps = 1e-6
        for k in range(4):
            plus = [s.copy() for s in state]
            minus = [s.copy() for s in state]
            plus[k] += eps
            minus[k] -= eps
            _, gp = quantity_value_grad(coeff, *plus)
            _, gm = quantity_value_grad(coeff, *minus)
            fd = (gp - gm) / (2 * eps)
            assert np.allclose(hess[:, k, :], fd, atol=1e-5)

    def test_hessian_symmetry(self, rng):
        nl = CASE9.n_branch
        state = [rng.uniform(0.9, 1.1, nl), rng.uniform(0.9, 1.1, nl),
                 rng.uniform(-0.4, 0.4, nl), rng.uniform(-0.4, 0.4, nl)]
        for coeff in QUANTITIES.as_tuple():
            _, _, hess = quantity_value_grad_hess(coeff, *state)
            assert np.allclose(hess, np.transpose(hess, (0, 2, 1)))

    @settings(max_examples=30, deadline=None)
    @given(voltage_state)
    def test_consistency_between_value_functions(self, state):
        vi, vj, ti, tj = (np.full(CASE9.n_branch, s) for s in state)
        for coeff in QUANTITIES.as_tuple():
            val0 = quantity_value(coeff, vi, vj, ti, tj)
            val1, _ = quantity_value_grad(coeff, vi, vj, ti, tj)
            val2, _, _ = quantity_value_grad_hess(coeff, vi, vj, ti, tj)
            assert np.allclose(val0, val1)
            assert np.allclose(val0, val2)

    @settings(max_examples=30, deadline=None)
    @given(voltage_state)
    def test_global_angle_shift_invariance(self, state):
        vi, vj, ti, tj = (np.full(CASE9.n_branch, s) for s in state)
        shift = 0.7
        for coeff in QUANTITIES.as_tuple():
            base = quantity_value(coeff, vi, vj, ti, tj)
            shifted = quantity_value(coeff, vi, vj, ti + shift, tj + shift)
            assert np.allclose(base, shifted, atol=1e-12)
