"""Tests for the batched TRON driver against SciPy references."""

import numpy as np
import pytest
from scipy.optimize import minimize

from repro.exceptions import ConfigurationError, DimensionError
from repro.tron import TronOptions, tron_solve, tron_solve_batch
from repro.tron.batch import QuadraticBatchProblem, solve_batch


def random_convex_qp_batch(rng, batch, n):
    mats = []
    for _ in range(batch):
        a = rng.normal(size=(n, n))
        mats.append(a @ a.T + 0.5 * np.eye(n))
    q = np.stack(mats)
    c = rng.normal(size=(batch, n))
    lb = np.full((batch, n), -1.0)
    ub = np.full((batch, n), 1.0)
    return QuadraticBatchProblem(q, c, lb, ub)


class TestConvexProblems:
    def test_matches_scipy_on_box_qps(self, rng):
        batch, n = 30, 6
        problem = random_convex_qp_batch(rng, batch, n)
        result = solve_batch(problem, np.zeros((batch, n)))
        assert result.all_converged
        for b in range(batch):
            ref = minimize(lambda x, b=b: 0.5 * x @ problem.q[b] @ x - problem.c[b] @ x,
                           np.zeros(n), jac=lambda x, b=b: problem.q[b] @ x - problem.c[b],
                           method="L-BFGS-B", bounds=[(-1, 1)] * n)
            assert result.f[b] <= ref.fun + 1e-5 * (1 + abs(ref.fun))

    def test_unconstrained_quadratic_reaches_newton_point(self, rng):
        n = 5
        a = rng.normal(size=(n, n))
        q = a @ a.T + np.eye(n)
        c = rng.normal(size=n)
        problem = QuadraticBatchProblem(q[None], c[None],
                                        np.full((1, n), -1e6), np.full((1, n), 1e6))
        result = solve_batch(problem, np.zeros((1, n)))
        assert np.allclose(result.x[0], np.linalg.solve(q, c), atol=1e-5)

    def test_solution_respects_bounds(self, rng):
        batch, n = 25, 4
        problem = random_convex_qp_batch(rng, batch, n)
        result = solve_batch(problem, rng.uniform(-1, 1, (batch, n)))
        assert np.all(result.x >= problem.lb - 1e-12)
        assert np.all(result.x <= problem.ub + 1e-12)

    def test_projected_gradient_small_at_solution(self, rng):
        problem = random_convex_qp_batch(rng, 10, 5)
        result = solve_batch(problem, np.zeros((10, 5)))
        assert np.all(result.projected_gradient_norm <= 1e-5)


class TestNonconvexProblems:
    def test_rosenbrock_unbounded(self):
        def f(x):
            return 100 * (x[1] - x[0] ** 2) ** 2 + (1 - x[0]) ** 2

        def g(x):
            return np.array([-400 * x[0] * (x[1] - x[0] ** 2) - 2 * (1 - x[0]),
                             200 * (x[1] - x[0] ** 2)])

        def h(x):
            return np.array([[1200 * x[0] ** 2 - 400 * x[1] + 2, -400 * x[0]],
                             [-400 * x[0], 200.0]])

        result = tron_solve(f, g, h, np.array([-1.2, 1.0]),
                            np.array([-5.0, -5.0]), np.array([5.0, 5.0]),
                            TronOptions(max_iter=500))
        assert result.converged
        assert np.allclose(result.x, [1.0, 1.0], atol=1e-4)

    def test_rosenbrock_active_bound(self):
        def f(x):
            return 100 * (x[1] - x[0] ** 2) ** 2 + (1 - x[0]) ** 2

        def g(x):
            return np.array([-400 * x[0] * (x[1] - x[0] ** 2) - 2 * (1 - x[0]),
                             200 * (x[1] - x[0] ** 2)])

        def h(x):
            return np.array([[1200 * x[0] ** 2 - 400 * x[1] + 2, -400 * x[0]],
                             [-400 * x[0], 200.0]])

        result = tron_solve(f, g, h, np.zeros(2), np.array([-0.5, -0.5]),
                            np.array([0.5, 0.5]), TronOptions(max_iter=500))
        ref = minimize(f, np.zeros(2), jac=g, method="L-BFGS-B",
                       bounds=[(-0.5, 0.5)] * 2)
        assert result.f <= ref.fun + 1e-6

    def test_indefinite_qp_reaches_local_minimum(self, rng):
        batch, n = 20, 6
        mats = []
        for _ in range(batch):
            a = rng.normal(size=(n, n))
            mats.append(0.5 * (a + a.T))
        q = np.stack(mats)
        c = rng.normal(size=(batch, n))
        problem = QuadraticBatchProblem(q, c, np.full((batch, n), -1.0),
                                        np.full((batch, n), 1.0))
        result = solve_batch(problem, rng.uniform(-1, 1, (batch, n)))
        # Polishing each solution with scipy must not find anything better
        # (i.e. we are at a local minimum / stationary point).
        for b in range(batch):
            ref = minimize(lambda x, b=b: 0.5 * x @ q[b] @ x - c[b] @ x, result.x[b],
                           jac=lambda x, b=b: q[b] @ x - c[b], method="L-BFGS-B",
                           bounds=[(-1, 1)] * n)
            assert ref.fun >= result.f[b] - 1e-6 * (1 + abs(result.f[b]))


class TestBackendsAndOptions:
    def test_loop_and_batched_backends_agree(self, rng):
        problem = random_convex_qp_batch(rng, 8, 5)
        x0 = rng.uniform(-1, 1, (8, 5))
        batched = solve_batch(problem, x0, backend="batched")
        loop = solve_batch(problem, x0, backend="loop")
        assert np.allclose(batched.f, loop.f, atol=1e-6)
        assert np.allclose(batched.x, loop.x, atol=1e-4)

    def test_loop_backend_single_row_evaluation(self, rng):
        """With ``select``, loop callbacks see (1, n) points, not tiled batches."""
        problem = random_convex_qp_batch(rng, 6, 4)
        x0 = rng.uniform(-1, 1, (6, 4))
        seen_shapes = []

        class Spy:
            def __init__(self, single):
                self.single = single
                self.lb, self.ub = single.lb, single.ub

            def objective(self, x):
                seen_shapes.append(x.shape[0])
                return self.single.objective(x)

            def gradient(self, x):
                return self.single.gradient(x)

            def hessian(self, x):
                return self.single.hessian(x)

        class Wrapper:
            lb, ub = problem.lb, problem.ub
            objective = staticmethod(problem.objective)
            gradient = staticmethod(problem.gradient)
            hessian = staticmethod(problem.hessian)

            @staticmethod
            def select(index):
                return Spy(problem.select(index))

        result = solve_batch(Wrapper(), x0, backend="loop")
        reference = solve_batch(problem, x0, backend="batched")
        assert seen_shapes and all(shape == 1 for shape in seen_shapes)
        assert np.allclose(result.f, reference.f, atol=1e-6)

    def test_loop_backend_tiling_fallback_without_select(self, rng):
        """Problems without ``select`` still work through the tiled fallback."""
        problem = random_convex_qp_batch(rng, 5, 3)

        class NoSelect:
            lb, ub = problem.lb, problem.ub
            objective = staticmethod(problem.objective)
            gradient = staticmethod(problem.gradient)
            hessian = staticmethod(problem.hessian)

        x0 = rng.uniform(-1, 1, (5, 3))
        fallback = solve_batch(NoSelect(), x0, backend="loop")
        sliced = solve_batch(problem, x0, backend="loop")
        assert np.allclose(fallback.x, sliced.x, atol=1e-10)
        assert np.allclose(fallback.f, sliced.f, atol=1e-10)

    def test_unknown_backend_rejected(self, rng):
        problem = random_convex_qp_batch(rng, 2, 3)
        with pytest.raises(ConfigurationError):
            solve_batch(problem, np.zeros((2, 3)), backend="cuda")

    def test_invalid_bounds_rejected(self):
        with pytest.raises(DimensionError):
            tron_solve_batch(lambda x: np.zeros(1), lambda x: np.zeros((1, 2)),
                             lambda x: np.zeros((1, 2, 2)), np.zeros((1, 2)),
                             np.array([1.0, 1.0]), np.array([0.0, 0.0]))

    def test_options_validation(self):
        with pytest.raises(ConfigurationError):
            TronOptions(max_iter=0).validate()
        with pytest.raises(ConfigurationError):
            TronOptions(gtol=-1.0).validate()
        with pytest.raises(ConfigurationError):
            TronOptions(eta0=0.5, eta1=0.4).validate()
        with pytest.raises(ConfigurationError):
            TronOptions(cg_tol=2.0).validate()
        TronOptions().validate()  # defaults are valid

    def test_starting_point_outside_box_is_projected(self, rng):
        problem = random_convex_qp_batch(rng, 5, 4)
        result = solve_batch(problem, np.full((5, 4), 100.0))
        assert np.all(result.x <= problem.ub + 1e-12)
        assert result.all_converged

    def test_fixed_variables_via_equal_bounds(self, rng):
        n = 4
        a = rng.normal(size=(n, n))
        q = (a @ a.T + np.eye(n))[None]
        c = rng.normal(size=(1, n))
        lb = np.full((1, n), -1.0)
        ub = np.full((1, n), 1.0)
        lb[0, 1] = ub[0, 1] = 0.25  # pin variable 1
        problem = QuadraticBatchProblem(q, c, lb, ub)
        result = solve_batch(problem, np.zeros((1, n)))
        assert np.isclose(result.x[0, 1], 0.25)

    def test_iteration_counts_reported(self, rng):
        problem = random_convex_qp_batch(rng, 6, 4)
        result = solve_batch(problem, np.zeros((6, 4)))
        assert result.iterations.shape == (6,)
        assert np.all(result.iterations >= 1)
        assert result.function_evaluations > 0
