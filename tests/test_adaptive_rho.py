"""Adaptive per-scenario penalty (ρ) tuning and the penalty plumbing.

Covers the residual-balancing policy (``repro.admm.penalty``), the knob
validation added alongside it, the ``parameters_for_case`` override fix,
the within-scenario-constancy guard of ``_scenario_rho``, and the
differential guarantees the feature ships with: the fixed-ρ path is
untouched, an S=1 batched adaptive solve is bitwise the sequential one,
compaction and pooling do not perturb adaptive trajectories, and the
tracking pipeline's ρ-cache makes a resumed horizon bitwise identical to a
continuous one.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.admm import (
    AdmmParameters,
    AdmmSolver,
    BatchAdmmSolver,
    balanced_penalties,
    parameters_for_case,
    scenario_penalties,
    solve_acopf_admm,
    solve_acopf_admm_batch,
)
from repro.admm.residuals import _scenario_rho
from repro.exceptions import ConfigurationError
from repro.grid.synthetic import make_synthetic_grid
from repro.parallel import DevicePool
from repro.scenarios import load_scaling_scenarios, tracking_fleet
from repro.tracking import make_load_profile, track_horizon_batch
from repro.tracking.horizon import relative_gap_series
from repro.tracking.load_profile import LoadProfile
from repro.tracking.pipeline import WarmStartCache

#: Capped budgets for the bitwise differential tests (convergence is
#: irrelevant when trajectories are compared bit for bit).
QUICK = dict(max_outer=2, max_inner=25)
#: Loose-but-converging budgets for the objective-agreement tests.
LOOSE = dict(outer_tol=1e-2, inner_tol_primal=1e-3, inner_tol_dual=1e-2)


def quick_params(network, **overrides):
    return parameters_for_case(network, **{**QUICK, **overrides})


def assert_bitwise_equal(a, b) -> None:
    assert a.inner_iterations == b.inner_iterations
    assert a.outer_iterations == b.outer_iterations
    assert a.converged == b.converged
    assert a.rho_pq == b.rho_pq and a.rho_va == b.rho_va
    assert np.array_equal(a.pg, b.pg)
    assert np.array_equal(a.vm, b.vm)
    assert np.array_equal(a.va, b.va)
    assert a.objective == b.objective


# --------------------------------------------------------------------- #
# parameters_for_case override regression                                 #
# --------------------------------------------------------------------- #
class TestParametersForCase:
    def test_explicit_penalty_overrides_win(self, case9):
        """Regression: ``rho_pq=``/``rho_va=`` used to raise TypeError."""
        params = parameters_for_case(case9, rho_pq=7.0, rho_va=9.0)
        assert params.rho_pq == 7.0
        assert params.rho_va == 9.0

    def test_single_override_keeps_other_suggestion(self, case9):
        suggested = parameters_for_case(case9)
        params = parameters_for_case(case9, rho_va=9.0)
        assert params.rho_pq == suggested.rho_pq
        assert params.rho_va == 9.0

    def test_defaults_still_suggested(self, case9):
        params = parameters_for_case(case9)
        assert (params.rho_pq, params.rho_va) == (4e2, 4e4)


# --------------------------------------------------------------------- #
# Parameter validation sweep                                              #
# --------------------------------------------------------------------- #
class TestValidation:
    @pytest.mark.parametrize("bad", [
        dict(inner_tol_primal=0.0),
        dict(inner_tol_dual=-1.0),
        dict(inner_tol_initial=0.0),
        dict(inner_tol_decay=0.0),
        dict(inner_tol_decay=1.5),
        dict(min_inner_iterations=-1),
        dict(auglag_penalty_init=0.0),
        dict(auglag_penalty_factor=0.0),
        dict(auglag_penalty_max=0.0),
        dict(objective_scale=0.0),
        dict(adaptive_rho_ratio=0.5),
        dict(adaptive_rho_factor=1.0),
        dict(adaptive_rho_interval=0),
        dict(adaptive_rho_min=0.0),
        dict(adaptive_rho_min=2.0, adaptive_rho_max=1.0),
    ])
    def test_bad_knobs_raise(self, bad):
        with pytest.raises(ConfigurationError):
            AdmmParameters(**bad).validate()

    def test_boundary_values_pass(self):
        AdmmParameters(inner_tol_decay=1.0, min_inner_iterations=0,
                       adaptive_rho_ratio=1.0, adaptive_rho_interval=1,
                       adaptive_rho_min=1.0, adaptive_rho_max=1.0).validate()


# --------------------------------------------------------------------- #
# Within-scenario penalty constancy                                       #
# --------------------------------------------------------------------- #
class TestScenarioRho:
    def test_constant_block_and_scalar_pass(self, case9):
        batch = BatchAdmmSolver(load_scaling_scenarios(case9, [0.98, 1.02]),
                                params=quick_params(case9))
        for scenario in range(2):
            rho_pq, rho_va = scenario_penalties(batch.data, scenario)
            assert rho_pq > 0 and rho_va > 0
        single = AdmmSolver(case9, params=quick_params(case9))
        assert _scenario_rho(single.data, "gp", 0) == single.params.rho_pq

    def test_non_constant_block_raises(self, case9):
        batch = BatchAdmmSolver(load_scaling_scenarios(case9, [0.98, 1.02]),
                                params=quick_params(case9))
        block = batch.data.group_block("gp", 1)
        batch.data.rho["gp"][block.stop - 1] *= 2  # tamper one element
        with pytest.raises(ConfigurationError, match="not constant"):
            scenario_penalties(batch.data, 1)
        # the untampered scenario still reads fine
        scenario_penalties(batch.data, 0)


# --------------------------------------------------------------------- #
# The balancing policy itself                                             #
# --------------------------------------------------------------------- #
class TestBalancedPenalties:
    PARAMS = AdmmParameters(adaptive_rho_ratio=5.0, adaptive_rho_factor=2.0,
                            adaptive_rho_min=1e-2, adaptive_rho_max=1e3)

    def test_primal_dominant_grows(self):
        assert balanced_penalties(10.0, 1.0, 4.0, 40.0, self.PARAMS) == (8.0, 80.0)

    def test_dual_dominant_shrinks(self):
        assert balanced_penalties(1.0, 10.0, 4.0, 40.0, self.PARAMS) == (2.0, 20.0)

    def test_balanced_is_a_noop(self):
        assert balanced_penalties(2.0, 1.0, 4.0, 40.0, self.PARAMS) == (4.0, 40.0)

    def test_clamped_to_bounds(self):
        grown = balanced_penalties(10.0, 1.0, 900.0, 900.0, self.PARAMS)
        assert grown == (1e3, 1e3)
        shrunk = balanced_penalties(1.0, 10.0, 0.015, 0.015, self.PARAMS)
        assert shrunk == (1e-2, 1e-2)


# --------------------------------------------------------------------- #
# Differential guarantees                                                 #
# --------------------------------------------------------------------- #
class TestAdaptiveDifferential:
    def test_fixed_path_never_touches_rho(self, case9):
        solver = AdmmSolver(case9, params=quick_params(case9))
        before = dict(solver.data.rho)
        solution = solver.solve()
        assert dict(solver.data.rho) == before
        assert (solution.rho_pq, solution.rho_va) == \
            (solver.params.rho_pq, solver.params.rho_va)

    def test_s1_batched_matches_sequential(self, case9):
        params = quick_params(case9, adaptive_rho=True, adaptive_rho_interval=4)
        sequential = solve_acopf_admm(case9, params=params)
        batched = solve_acopf_admm_batch([case9], params=params)
        assert len(batched) == 1
        assert_bitwise_equal(batched[0], sequential)
        # the short capped run really adapted (the differential is not vacuous)
        assert (sequential.rho_pq, sequential.rho_va) != \
            (params.rho_pq, params.rho_va)

    def test_reused_solver_restarts_from_initial_penalties(self, case9):
        params = quick_params(case9, adaptive_rho=True, adaptive_rho_interval=4)
        solver = AdmmSolver(case9, params=params)
        first = solver.solve()
        second = solver.solve()
        assert_bitwise_equal(first, second)

    def test_compaction_does_not_perturb_adaptive(self, case9):
        params = quick_params(case9, adaptive_rho=True, adaptive_rho_interval=4,
                              max_inner=40)
        scenarios = load_scaling_scenarios(case9, [0.96, 1.0, 1.04])
        compacting = BatchAdmmSolver(scenarios, params=params).solve()
        never = BatchAdmmSolver(
            scenarios, params=replace(params, compaction_threshold=0.0)).solve()
        for a, b in zip(compacting, never):
            assert_bitwise_equal(a, b)

    def test_staggered_freezes_keep_adaptations_across_compactions(self, case9):
        """Regression: ρ steps taken after a second compaction were lost.

        Warm-started periods freeze scenarios at staggered iterations, so
        the stream compacts more than once per solve; the packed data's
        adapted rho blocks must flush back before each re-selection, or the
        compacting run silently reverts to the penalties of the previous
        compaction point and diverges from the uncompacted ground truth.
        """
        fleet = tracking_fleet(case9, kind="load", n_scenarios=3, spread=0.05)
        profile = make_load_profile(n_periods=2, seed=7)
        params = quick_params(case9, adaptive_rho=True, adaptive_rho_interval=4,
                              max_inner=40)
        compacting = track_horizon_batch(fleet, profile, params=params,
                                         warm_start=True)
        never = track_horizon_batch(
            fleet, profile,
            params=replace(params, compaction_threshold=0.0), warm_start=True)
        for period_a, period_b in zip(compacting.periods, never.periods):
            for a, b in zip(period_a.solutions, period_b.solutions):
                assert_bitwise_equal(a, b)

    def test_penalty_seeds_pin_a_fixed_solve(self, case9):
        seeded = BatchAdmmSolver([case9], params=quick_params(case9))
        [seeded_solution] = seeded.solve(penalties=[(50.0, 5000.0)])
        fresh = solve_acopf_admm(
            case9, params=quick_params(case9, rho_pq=50.0, rho_va=5000.0))
        assert_bitwise_equal(seeded_solution, fresh)
        assert (seeded_solution.rho_pq, seeded_solution.rho_va) == (50.0, 5000.0)

    def test_penalty_seed_length_and_sign_checked(self, case9):
        solver = BatchAdmmSolver([case9], params=quick_params(case9))
        with pytest.raises(ConfigurationError):
            solver.solve(penalties=[(50.0, 5000.0), (1.0, 1.0)])
        with pytest.raises(ConfigurationError):
            solver.solve(penalties=[(-1.0, 5000.0)])

    def test_adaptive_objective_agrees_with_fixed(self, case9):
        """Adaptation buys iterations, not a different answer."""
        fixed = solve_acopf_admm(case9, params=parameters_for_case(case9, **LOOSE))
        adaptive = solve_acopf_admm(
            case9, params=parameters_for_case(case9, **LOOSE, adaptive_rho=True))
        assert fixed.converged and adaptive.converged
        gap = abs(adaptive.objective - fixed.objective) / max(abs(fixed.objective), 1.0)
        assert gap <= 10 * 1e-2
        assert adaptive.inner_iterations <= fixed.inner_iterations

    def test_adaptive_objective_agrees_on_synthetic_grid(self):
        network = make_synthetic_grid(n_bus=10, n_gen=3, n_branch=13, seed=3)
        fixed = solve_acopf_admm(network,
                                 params=parameters_for_case(network, **LOOSE))
        adaptive = solve_acopf_admm(
            network,
            params=parameters_for_case(network, **LOOSE, adaptive_rho=True))
        assert fixed.converged and adaptive.converged
        gap = abs(adaptive.objective - fixed.objective) / max(abs(fixed.objective), 1.0)
        assert gap <= 10 * 1e-2


# --------------------------------------------------------------------- #
# Tracking pipeline: the ρ-cache                                          #
# --------------------------------------------------------------------- #
class TestWarmCachePenalties:
    def test_round_trip_and_unknown_keys(self, case9):
        cache = WarmStartCache()
        solver = AdmmSolver(case9, params=quick_params(case9))
        solution = solver.solve()
        cache.store("a", solution.state, solution.pg,
                    rho_pq=12.0, rho_va=34.0)
        cache.store("b", solution.state, solution.pg)  # no penalties recorded
        assert cache.penalties(["a", "b", "missing"]) == \
            [(12.0, 34.0), None, None]


class TestTrackingAdaptive:
    def _fleet_profile(self, case9, n_periods=4):
        fleet = tracking_fleet(case9, kind="load", n_scenarios=2, spread=0.05)
        profile = make_load_profile(n_periods=n_periods, seed=0)
        return fleet, profile

    def _assert_horizons_equal(self, periods_a, periods_b):
        assert len(periods_a) == len(periods_b)
        for period_a, period_b in zip(periods_a, periods_b):
            for a, b in zip(period_a.solutions, period_b.solutions):
                assert_bitwise_equal(a, b)

    def test_rho_cache_resume_matches_continuous(self, case9):
        fleet, profile = self._fleet_profile(case9)
        params = quick_params(case9, adaptive_rho=True, adaptive_rho_interval=4)
        continuous = track_horizon_batch(fleet, profile, params=params,
                                         warm_start=True)
        cache = WarmStartCache()
        first = track_horizon_batch(fleet, LoadProfile(profile.multipliers[:2]),
                                    params=params, warm_start=True, cache=cache)
        second = track_horizon_batch(fleet, LoadProfile(profile.multipliers[2:]),
                                     params=params, warm_start=True, cache=cache)
        self._assert_horizons_equal(first.periods + second.periods,
                                    continuous.periods)
        # the cache really carried adapted penalties across the seam
        assert any(pair is not None for pair in cache.penalties(fleet.names))

    def test_pooled_adaptive_matches_single_device(self, case9):
        fleet, profile = self._fleet_profile(case9, n_periods=3)
        params = quick_params(case9, adaptive_rho=True, adaptive_rho_interval=4)
        reference = track_horizon_batch(fleet, profile, params=params,
                                        warm_start=True)
        pool = DevicePool(n_workers=2, executor="sequential", chunk_scenarios=1)
        pooled = track_horizon_batch(fleet, profile, params=params,
                                     warm_start=True, pool=pool)
        self._assert_horizons_equal(pooled.periods, reference.periods)

    def test_adaptive_tracking_gap_and_iterations(self, case9):
        fleet, profile = self._fleet_profile(case9, n_periods=3)
        fixed_params = parameters_for_case(case9, **LOOSE)
        adaptive_params = replace(fixed_params, adaptive_rho=True)
        fixed = track_horizon_batch(fleet, profile, params=fixed_params,
                                    warm_start=True)
        adaptive = track_horizon_batch(fleet, profile, params=adaptive_params,
                                       warm_start=True)
        assert all(p.converged.all() for p in fixed.periods)
        assert all(p.converged.all() for p in adaptive.periods)
        gaps = relative_gap_series(adaptive.objectives, fixed.objectives)
        assert gaps.max() <= 10 * fixed_params.outer_tol
        assert adaptive.total_inner_iterations <= fixed.total_inner_iterations
