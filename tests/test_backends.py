"""Conformance suite for the pluggable kernel-backend registry.

Every registered backend is differential-tested against the reference
:class:`~repro.parallel.backends.numpy_backend.NumpyBackend` oracle: exact
backends (``exact = True``) must reproduce it **bitwise**, JIT backends get
:data:`~repro.parallel.backends.base.JIT_TOLERANCE`.  The suite covers the
primitive set itself, the end-to-end solvers (single network, scenario batch
of one, compaction-active TRON), and the registry/selection machinery
(``REPRO_BACKEND``, solver options, graceful numba degradation).
"""

from __future__ import annotations

import builtins
import sys

import numpy as np
import pytest

import repro
from repro.admm.parameters import AdmmParameters, parameters_for_case
from repro.exceptions import ConfigurationError, DimensionError
from repro.parallel.backends import (
    BACKEND_ENV_VAR,
    JIT_TOLERANCE,
    KernelBackend,
    LoopBackend,
    NumbaBackend,
    NumpyBackend,
    available_backends,
    default_backend_name,
    get_backend,
    register_backend,
    unregister_backend,
)
from repro.tron.batch import QuadraticBatchProblem, solve_batch
from repro.tron.options import TronOptions

ORACLE = NumpyBackend()

try:
    import numba  # noqa: F401
    HAVE_NUMBA = True
except ImportError:
    HAVE_NUMBA = False


def assert_conforms(backend, got, expected) -> None:
    """Bitwise for exact backends, JIT_TOLERANCE otherwise."""
    got = np.asarray(got)
    expected = np.asarray(expected)
    assert got.shape == expected.shape
    if backend.exact:
        assert np.array_equal(got, expected), (
            f"backend {backend.name!r} declares exact=True but differs "
            "from the NumPy oracle")
    else:
        np.testing.assert_allclose(got, expected, rtol=JIT_TOLERANCE, atol=0.0)


@pytest.fixture(params=sorted(available_backends()))
def backend(request):
    return get_backend(request.param)


# --------------------------------------------------------------------- #
# Primitive conformance vs the NumPy oracle                              #
# --------------------------------------------------------------------- #
class TestPrimitiveConformance:
    def test_protocol(self, backend):
        assert isinstance(backend, KernelBackend)
        assert isinstance(backend.name, str) and backend.name
        assert isinstance(backend.exact, bool)

    def test_launch_single_output(self, backend, rng):
        def kernel(a, b):
            return np.clip(a * b + 1.0, 0.0, 5.0)

        a, b = rng.normal(size=40), rng.normal(size=40)
        assert_conforms(backend, backend.launch_over_elements(kernel, a, b),
                        ORACLE.launch_over_elements(kernel, a, b))

    def test_launch_tuple_output(self, backend, rng):
        def kernel(a):
            return np.sin(a), np.cos(a) ** 2

        a = rng.normal(size=25)
        got = backend.launch_over_elements(kernel, a)
        expected = ORACLE.launch_over_elements(kernel, a)
        assert isinstance(got, tuple) and len(got) == 2
        for g, e in zip(got, expected):
            assert_conforms(backend, g, e)

    def test_launch_validates_arguments(self, backend):
        with pytest.raises(DimensionError):
            backend.launch_over_elements(lambda: np.zeros(1))
        with pytest.raises(DimensionError):
            backend.launch_over_elements(lambda a, b: a + b,
                                         np.zeros(3), np.zeros(4))

    def test_scatter_add_duplicate_indices(self, backend, rng):
        indices = rng.integers(0, 7, size=30)
        values = rng.normal(size=30)
        got = backend.scatter_add(np.zeros(7), indices, values)
        expected = ORACLE.scatter_add(np.zeros(7), indices, values)
        assert_conforms(backend, got, expected)

    def test_segment_sum(self, backend, rng):
        values = rng.normal(size=50)
        ids = rng.integers(0, 6, size=50)
        assert_conforms(backend, backend.segment_sum(values, ids, 6),
                        ORACLE.segment_sum(values, ids, 6))

    def test_segment_sum_empty_input(self, backend):
        got = backend.segment_sum(np.zeros(0), np.zeros(0, dtype=int), 3)
        assert np.array_equal(got, np.zeros(3))

    def test_segment_max_empty_segments_get_initial(self, backend, rng):
        values = -np.abs(rng.normal(size=10))  # all negative: initial wins
        ids = np.repeat(np.array([0, 2]), 5)   # segments 1 and 3 empty
        got = backend.segment_max(values, ids, 4, initial=0.5)
        expected = ORACLE.segment_max(values, ids, 4, initial=0.5)
        assert_conforms(backend, got, expected)
        assert got[1] == 0.5 and got[3] == 0.5

    def test_batched_matvec(self, backend, rng):
        m = rng.normal(size=(9, 6, 6))
        v = rng.normal(size=(9, 6))
        assert_conforms(backend, backend.batched_matvec(m, v),
                        ORACLE.batched_matvec(m, v))

    def test_batched_matvec_broadcast_matrices(self, backend, rng):
        # the QuadraticBatchProblem hands the driver a broadcast Hessian view
        m = np.broadcast_to(rng.normal(size=(6, 6)), (9, 6, 6))
        v = rng.normal(size=(9, 6))
        assert_conforms(backend, backend.batched_matvec(m, v),
                        ORACLE.batched_matvec(m, v))

    def test_batched_dot(self, backend, rng):
        a = rng.normal(size=(12, 8))
        b = rng.normal(size=(12, 8))
        assert_conforms(backend, backend.batched_dot(a, b),
                        ORACLE.batched_dot(a, b))

    def test_batched_outer(self, backend, rng):
        a = rng.normal(size=(7, 4))
        b = rng.normal(size=(7, 5))
        assert_conforms(backend, backend.batched_outer(a, b),
                        ORACLE.batched_outer(a, b))

    def test_batched_outer_into_out(self, backend, rng):
        a = rng.normal(size=(7, 4))
        b = rng.normal(size=(7, 5))
        out = np.empty((7, 4, 5))
        result = backend.batched_outer(a, b, out=out)
        assert result is out
        assert_conforms(backend, out, ORACLE.batched_outer(a, b))

    def test_gather_scatter_round_trip(self, backend, rng):
        array = rng.normal(size=(10, 3))
        indices = np.array([7, 2, 2, 0])
        packed = backend.gather(array, indices)
        assert_conforms(backend, packed, ORACLE.gather(array, indices))

        out = np.empty_like(packed)
        assert backend.gather(array, indices, out=out) is out
        assert_conforms(backend, out, packed)

        target = np.zeros((10, 3))
        backend.scatter(target, np.array([7, 2, 0]), packed[:3])
        expected = np.zeros((10, 3))
        ORACLE.scatter(expected, np.array([7, 2, 0]), packed[:3])
        assert_conforms(backend, target, expected)


# --------------------------------------------------------------------- #
# Zero-length launches (the python_loop fallback regression)             #
# --------------------------------------------------------------------- #
class TestZeroLengthLaunch:
    def test_empty_launch_has_empty_result(self, backend):
        def kernel(a, b):
            return a * b + 1.0

        got = backend.launch_over_elements(kernel, np.zeros(0), np.zeros(0))
        assert isinstance(got, np.ndarray)
        assert got.shape == (0,)

    def test_empty_launch_tuple_outputs(self, backend):
        def kernel(a):
            return np.sin(a), np.stack([a, a], axis=-1)

        got = backend.launch_over_elements(kernel, np.zeros(0))
        assert isinstance(got, tuple)
        assert got[0].shape == (0,)
        assert got[1].shape == (0, 2)

    def test_empty_launch_preserves_dtype(self, backend):
        got = backend.launch_over_elements(
            lambda a: (a > 0), np.zeros(0))
        assert got.dtype == bool and got.shape == (0,)

    def test_loop_backend_rejects_non_elementwise_kernel(self):
        # A kernel reducing to a scalar is not element-wise; the old
        # ``python_loop=True`` path silently handed back ``fn(*arrays)``
        # for length-0 launches, hiding the contract violation.
        with pytest.raises(DimensionError):
            LoopBackend().launch_over_elements(
                lambda a: np.float64(a.sum()), np.zeros(0))

    def test_deprecated_python_loop_alias_fixed_too(self):
        from repro.parallel.kernels import launch_over_elements

        got = launch_over_elements(lambda a: 2 * a, np.zeros(0),
                                   python_loop=True)
        assert got.shape == (0,)


# --------------------------------------------------------------------- #
# End-to-end solver conformance                                          #
# --------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def case9():
    return repro.load_case("case9")


def small_budget_params(network) -> AdmmParameters:
    params = parameters_for_case(network)
    params.max_outer = 2
    params.max_inner = 25
    return params


@pytest.fixture(scope="module")
def oracle_solution(case9):
    params = small_budget_params(case9)
    params.kernel_backend = "numpy"
    return repro.solve_acopf_admm(case9, params=params)


class TestEndToEnd:
    def test_admm_solve_matches_oracle(self, backend, case9, oracle_solution):
        params = small_budget_params(case9)
        params.kernel_backend = backend.name
        solution = repro.solve_acopf_admm(case9, params=params)
        if backend.exact:
            assert solution.objective == oracle_solution.objective
            assert np.array_equal(solution.vm, oracle_solution.vm)
            assert np.array_equal(solution.va, oracle_solution.va)
            assert np.array_equal(solution.pg, oracle_solution.pg)
        else:
            np.testing.assert_allclose(solution.vm, oracle_solution.vm,
                                       rtol=1e-8)

    def test_device_stamped_with_backend(self, backend, case9):
        from repro.parallel import SimulatedDevice

        params = small_budget_params(case9)
        params.max_inner = 3
        params.kernel_backend = backend.name
        device = SimulatedDevice()
        repro.solve_acopf_admm(case9, params=params, device=device)
        assert device.as_dict()["backend"] == backend.name
        assert f"backend {backend.name}" in device.report()

    def test_single_scenario_batch_matches_oracle(self, backend, case9,
                                                  oracle_solution):
        # S=1: the stacked solver on one scenario is the classic solve.
        params = small_budget_params(case9)
        params.kernel_backend = backend.name
        solutions = repro.solve_acopf_admm_batch([case9], params=params)
        assert len(solutions) == 1
        if backend.exact:
            assert np.array_equal(solutions[0].vm, oracle_solution.vm)
        else:
            np.testing.assert_allclose(solutions[0].vm, oracle_solution.vm,
                                       rtol=1e-8)

    def test_compacted_tron_solve_matches_oracle(self, backend, rng,
                                                 monkeypatch):
        # Batch is large enough to clear compaction_min_batch, and the
        # spread of condition numbers guarantees staggered convergence, so
        # the compaction window engages and its gathers/scatters run
        # through the backend under test.
        monkeypatch.delenv("REPRO_COMPACTION", raising=False)
        batch, n = 24, 4
        basis = rng.normal(size=(batch, n, n))
        q = np.einsum("bij,bkj->bik", basis, basis) + \
            np.eye(n) * np.linspace(0.1, 10.0, batch)[:, None, None]
        problem = QuadraticBatchProblem(
            q=q, c=rng.normal(size=(batch, n)),
            lb=np.full((batch, n), -1.5), ub=np.full((batch, n), 1.5))
        x0 = np.zeros((batch, n))
        options = TronOptions(compaction_threshold=0.75, compaction_min_batch=8)

        expected = solve_batch(problem, x0, options, kernel_backend="numpy")
        got = solve_batch(problem, x0, options, kernel_backend=backend.name)
        if backend.exact:
            assert np.array_equal(got.x, expected.x)
            assert np.array_equal(got.f, expected.f)
            assert np.array_equal(got.iterations, expected.iterations)
        else:
            np.testing.assert_allclose(got.x, expected.x, rtol=1e-8)
        assert got.converged.all()


# --------------------------------------------------------------------- #
# Registry and selection                                                 #
# --------------------------------------------------------------------- #
class TestRegistry:
    def test_builtins_registered(self):
        names = available_backends()
        assert {"numpy", "loop", "numba"} <= set(names)
        assert names == tuple(sorted(names))

    def test_get_backend_by_name_is_cached(self):
        assert get_backend("numpy") is get_backend("numpy")

    def test_instance_passthrough(self):
        instance = NumpyBackend()
        assert get_backend(instance) is instance

    def test_unknown_name_error_lists_alternatives(self):
        with pytest.raises(ConfigurationError, match="bogus.*registered backends.*numpy"):
            get_backend("bogus")

    def test_unknown_env_backend_fails_with_clear_error(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "not-a-backend")
        with pytest.raises(ConfigurationError,
                           match=f"not-a-backend.*{BACKEND_ENV_VAR}"):
            get_backend()

    def test_env_selects_default(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "loop")
        assert get_backend().name == "loop"
        assert default_backend_name() == "loop"

    def test_explicit_name_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "loop")
        assert get_backend("numpy").name == "numpy"

    def test_default_without_env(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert get_backend().name == "numpy"

    def test_parameters_validate_rejects_unknown_backend(self):
        with pytest.raises(ConfigurationError, match="bogus"):
            AdmmParameters(kernel_backend="bogus").validate()

    def test_parameters_accept_registered_backend(self):
        AdmmParameters(kernel_backend="loop").validate()

    def test_register_duplicate_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_backend("numpy", NumpyBackend)

    def test_register_unregister_third_party(self):
        class Custom(NumpyBackend):
            name = "custom-test"

        register_backend("custom-test", Custom)
        try:
            assert "custom-test" in available_backends()
            assert isinstance(get_backend("custom-test"), Custom)
            register_backend("custom-test", Custom, overwrite=True)
        finally:
            unregister_backend("custom-test")
        assert "custom-test" not in available_backends()
        with pytest.raises(ConfigurationError):
            get_backend("custom-test")

    def test_register_empty_name_rejected(self):
        with pytest.raises(ConfigurationError):
            register_backend("  ", NumpyBackend)


# --------------------------------------------------------------------- #
# Numba degradation                                                      #
# --------------------------------------------------------------------- #
class TestNumbaDegradation:
    def test_degrades_when_numba_hidden(self, monkeypatch, rng):
        """``REPRO_BACKEND=numba`` on a numba-less host must not error."""
        monkeypatch.delitem(sys.modules, "numba", raising=False)
        real_import = builtins.__import__

        def hiding_import(name, *args, **kwargs):
            if name == "numba" or name.startswith("numba."):
                raise ImportError("numba hidden for test")
            return real_import(name, *args, **kwargs)

        monkeypatch.setattr(builtins, "__import__", hiding_import)
        backend = NumbaBackend()
        assert backend.jit_active is False
        assert backend.exact is True

        values = rng.normal(size=30)
        ids = rng.integers(0, 5, size=30)
        assert np.array_equal(backend.segment_sum(values, ids, 5),
                              ORACLE.segment_sum(values, ids, 5))
        m, v = rng.normal(size=(6, 3, 3)), rng.normal(size=(6, 3))
        assert np.array_equal(backend.batched_matvec(m, v),
                              ORACLE.batched_matvec(m, v))

    @pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")
    def test_jit_active_with_numba_present(self, rng):
        backend = NumbaBackend()
        assert backend.jit_active is True
        assert backend.exact is False
        m, v = rng.normal(size=(6, 5, 5)), rng.normal(size=(6, 5))
        np.testing.assert_allclose(backend.batched_matvec(m, v),
                                   ORACLE.batched_matvec(m, v),
                                   rtol=JIT_TOLERANCE, atol=0.0)
