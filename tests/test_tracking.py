"""Tests for load profiles, ramp limits, and the tracking driver."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.tracking import apply_ramp_limits, make_load_profile, track_horizon
from repro.tracking.horizon import HorizonResult, PeriodRecord, relative_gaps
from repro.tracking.ramping import ramp_limits


class TestLoadProfile:
    def test_length_and_start_value(self):
        profile = make_load_profile(n_periods=30, seed=1)
        assert profile.n_periods == 30
        assert np.isclose(profile.multipliers[0], 1.0)

    def test_drift_bounded(self):
        profile = make_load_profile(n_periods=30, total_drift=0.05, seed=2)
        assert profile.max_drift <= 0.08  # 5% drift plus small fluctuation

    def test_deterministic_in_seed(self):
        a = make_load_profile(seed=7)
        b = make_load_profile(seed=7)
        assert np.array_equal(a.multipliers, b.multipliers)
        c = make_load_profile(seed=8)
        assert not np.array_equal(a.multipliers, c.multipliers)

    def test_multiplier_accessor(self):
        profile = make_load_profile(n_periods=5, seed=3)
        assert profile.multiplier(0) == profile.multipliers[0]

    def test_invalid_periods(self):
        with pytest.raises(ConfigurationError):
            make_load_profile(n_periods=0)

    def test_invalid_drift(self):
        with pytest.raises(ConfigurationError):
            make_load_profile(total_drift=0.9)


class TestRamping:
    def test_ramp_limits_default_fraction(self, case9):
        limits = ramp_limits(case9)
        assert np.allclose(limits, 0.02 * case9.gen_pmax)

    def test_window_tightened_around_previous_point(self, case9):
        previous = 0.5 * (case9.gen_pmin + case9.gen_pmax)
        limited = apply_ramp_limits(case9, previous)
        assert np.all(limited.gen_pmax <= previous + 0.02 * case9.gen_pmax + 1e-9)
        assert np.all(limited.gen_pmin >= previous - 0.02 * case9.gen_pmax - 1e-9)

    def test_window_never_empty(self, case9):
        # Previous point at the original upper bound: window must stay valid.
        previous = case9.gen_pmax.copy()
        limited = apply_ramp_limits(case9, previous)
        assert np.all(limited.gen_pmin <= limited.gen_pmax + 1e-12)

    def test_explicit_ramp_rate_respected(self, small_synthetic):
        previous = 0.5 * (small_synthetic.gen_pmin + small_synthetic.gen_pmax)
        limited = apply_ramp_limits(small_synthetic, previous)
        window = limited.gen_pmax - limited.gen_pmin
        assert np.all(window <= 2 * 0.02 * small_synthetic.gen_pmax + 1e-9)

    def test_loads_untouched(self, case9):
        previous = case9.gen_pg0
        limited = apply_ramp_limits(case9, previous)
        assert np.allclose(limited.bus_pd, case9.bus_pd)


class TestHorizonDriver:
    def test_ipm_tracking_three_periods(self, case9):
        profile = make_load_profile(n_periods=3, seed=4)
        result = track_horizon(case9, profile, method="ipm")
        assert len(result.periods) == 3
        assert all(p.converged for p in result.periods)
        # Loads only drift by <1% over 3 periods, so objectives stay close.
        objectives = result.objectives
        assert np.all(np.abs(np.diff(objectives)) / objectives[:-1] < 0.05)
        assert result.cumulative_seconds.shape == (3,)
        assert np.all(np.diff(result.cumulative_seconds) >= 0)

    def test_dispatch_respects_ramp_between_periods(self, case9):
        profile = make_load_profile(n_periods=3, seed=5)
        result = track_horizon(case9, profile, method="ipm")
        for a, b in zip(result.periods[:-1], result.periods[1:]):
            delta = np.abs(b.pg - a.pg)
            assert np.all(delta <= 0.02 * case9.gen_pmax + 1e-5)

    def test_unknown_method_rejected(self, case9):
        profile = make_load_profile(n_periods=2)
        with pytest.raises(ConfigurationError):
            track_horizon(case9, profile, method="magic")

    def test_relative_gaps_requires_same_length(self, case9):
        profile2 = make_load_profile(n_periods=2, seed=1)
        profile3 = make_load_profile(n_periods=3, seed=1)
        run2 = track_horizon(case9, profile2, method="ipm")
        run3 = track_horizon(case9, profile3, method="ipm")
        with pytest.raises(ConfigurationError):
            relative_gaps(run2, run3)
        gaps = relative_gaps(run2, run2)
        assert np.allclose(gaps, 0.0)

    def test_cold_start_mode(self, case9):
        profile = make_load_profile(n_periods=2, seed=6)
        result = track_horizon(case9, profile, method="ipm", warm_start=False)
        assert not result.warm_start
        assert len(result.periods) == 2

    def test_single_period_horizon(self, case9):
        """A one-period horizon: cumulative series and totals degenerate cleanly."""
        profile = make_load_profile(n_periods=1, seed=2)
        result = track_horizon(case9, profile, method="ipm")
        assert len(result.periods) == 1
        assert result.cumulative_seconds.shape == (1,)
        assert result.cumulative_seconds[0] == result.periods[0].solve_seconds
        assert result.total_seconds == result.periods[0].solve_seconds
        assert result.total_iterations == result.periods[0].iterations
        gaps = relative_gaps(result, result)
        assert gaps.shape == (1,) and gaps[0] == 0.0

    def test_solve_seconds_use_monotonic_clock(self, case9):
        """Wall-clock per period comes from ``time.perf_counter`` (monotonic,
        unaffected by system clock adjustments), so it can never go negative."""
        profile = make_load_profile(n_periods=2, seed=3)
        result = track_horizon(case9, profile, method="ipm")
        assert all(p.solve_seconds >= 0.0 for p in result.periods)
        assert np.all(np.diff(result.cumulative_seconds) >= 0)

    def test_iterations_series(self, case9):
        profile = make_load_profile(n_periods=3, seed=7)
        result = track_horizon(case9, profile, method="ipm")
        assert result.iterations.shape == (3,)
        assert result.iterations.dtype.kind == "i"
        assert result.total_iterations == int(result.iterations.sum())


class TestRelativeGaps:
    @staticmethod
    def _horizon_with_objectives(objectives):
        result = HorizonResult(method="ipm", network_name="synthetic",
                               warm_start=True)
        for t, objective in enumerate(objectives):
            result.periods.append(PeriodRecord(
                period=t, load_multiplier=1.0, objective=float(objective),
                max_violation=0.0, solve_seconds=0.0, iterations=1,
                converged=True, pg=np.zeros(1), vm=np.ones(1), va=np.zeros(1)))
        return result

    def test_zero_objective_reference_reports_absolute_gap(self):
        """A zero reference objective must not divide by zero — the gap for
        that period degrades to the absolute difference."""
        candidate = self._horizon_with_objectives([1.5, 10.0])
        reference = self._horizon_with_objectives([0.0, 8.0])
        gaps = relative_gaps(candidate, reference)
        assert np.all(np.isfinite(gaps))
        assert gaps[0] == 1.5           # absolute: |1.5 - 0| / 1
        assert gaps[1] == 0.25          # relative: |10 - 8| / 8

    def test_negative_reference_uses_magnitude(self):
        candidate = self._horizon_with_objectives([-9.0])
        reference = self._horizon_with_objectives([-10.0])
        gaps = relative_gaps(candidate, reference)
        assert np.isclose(gaps[0], 0.1)

    def test_single_period_gap(self):
        candidate = self._horizon_with_objectives([2.0])
        reference = self._horizon_with_objectives([2.0])
        assert np.array_equal(relative_gaps(candidate, reference), [0.0])
