"""Tests for solution metrics, reporting, and the experiment registry."""

import numpy as np
import pytest

from repro.analysis import constraint_violation, evaluate_solution, relative_objective_gap
from repro.analysis.experiments import render_table1, table1
from repro.analysis.reporting import render_series, render_table, summarize_speedup
from repro.baseline import solve_acopf_ipm


class TestMetrics:
    def test_zero_violation_at_baseline_solution(self, case9):
        solution = solve_acopf_ipm(case9)
        metrics = constraint_violation(case9, solution.vm, solution.va,
                                       solution.pg, solution.qg,
                                       capacity_fraction=1.0)
        assert metrics.max_violation < 1e-5
        assert metrics.objective == pytest.approx(solution.objective)

    def test_power_balance_violation_detected(self, case9):
        # A flat profile with no generation cannot satisfy the power balance.
        metrics = constraint_violation(case9, np.ones(9), np.zeros(9),
                                       np.zeros(3), np.zeros(3))
        assert metrics.power_balance > 0.1

    def test_voltage_violation_detected(self, case9):
        vm = np.full(9, 1.5)
        metrics = constraint_violation(case9, vm, np.zeros(9), case9.gen_pg0, case9.gen_qg0)
        assert metrics.voltage_bound >= 0.4 - 1e-9

    def test_generator_violation_detected(self, case9):
        pg = case9.gen_pmax + 1.0
        metrics = constraint_violation(case9, np.ones(9), np.zeros(9), pg, case9.gen_qg0)
        assert metrics.generator_bound >= 1.0 - 1e-9

    def test_capacity_tightening_increases_line_violation(self, case9):
        solution = solve_acopf_ipm(case9)
        loose = constraint_violation(case9, solution.vm, solution.va, solution.pg,
                                     solution.qg, capacity_fraction=1.0)
        tight = constraint_violation(case9, solution.vm, solution.va, solution.pg,
                                     solution.qg, capacity_fraction=0.5)
        assert tight.line_limit >= loose.line_limit

    def test_relative_gap(self):
        assert relative_objective_gap(101.0, 100.0) == pytest.approx(0.01)
        assert relative_objective_gap(99.0, 100.0) == pytest.approx(0.01)
        assert np.isnan(relative_objective_gap(5.0, 0.0))

    def test_evaluate_solution_dictionary(self, case9):
        solution = solve_acopf_ipm(case9)
        out = evaluate_solution(case9, solution.vm, solution.va, solution.pg,
                                solution.qg, reference_objective=solution.objective)
        assert out["relative_gap"] == pytest.approx(0.0)
        assert "max_violation" in out and "objective" in out


class TestReporting:
    def test_render_table_aligns_columns(self):
        text = render_table(["name", "value"], [["a", 1.0], ["long-name", 123456.0]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines[1:])) == 1  # consistent width

    def test_render_table_with_title(self):
        text = render_table(["x"], [[1]], title="My table")
        assert text.startswith("My table")

    def test_render_series(self):
        text = render_series("Figure", {"a": np.array([1.0, 2.0]), "b": np.array([3.0, 4.0])})
        assert "period" in text
        assert "Figure" in text
        assert len(text.splitlines()) == 5

    def test_speedup_summary(self):
        text = summarize_speedup(2.0, 8.0)
        assert "x4.00" in text
        assert "n/a" in summarize_speedup(0.0, 1.0)


class TestExperimentRegistry:
    def test_table1_rows_match_case_sizes(self):
        rows = table1(["case9", "case3"])
        by_name = {r["case"]: r for r in rows}
        assert by_name["case9"]["buses"] == 9
        assert by_name["case9"]["branches"] == 9
        assert by_name["case9"]["generators"] == 3
        assert by_name["case3"]["buses"] == 3
        assert by_name["case9"]["rho_pq"] > 0

    def test_render_table1(self):
        text = render_table1(["case9"])
        assert "case9" in text and "Table I" in text

    def test_paper_sized_registry_entries_exist(self):
        from repro.grid.cases import PAPER_SYSTEM_SIZES, available_cases
        names = available_cases()
        for paper_name in PAPER_SYSTEM_SIZES:
            assert f"{paper_name}_like" in names
