"""Unit tests for the CI performance-regression gate itself.

``benchmarks/check_regression.py`` guards every PR; until now it was the
one piece of CI infrastructure with no tests of its own.  Covered here:
missing baselines / missing fresh artifacts (with and without
``--require-all``), malformed JSON, the exact-threshold boundary, metric
keys missing from an artifact, smoke/worker provenance mismatches, and the
process exit codes.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).resolve().parent.parent / "benchmarks" / "check_regression.py"
_spec = importlib.util.spec_from_file_location("check_regression", _SCRIPT)
check_regression = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_regression)

NAME = "BENCH_pool.json"  # any gated artifact name works


def write(directory: Path, name: str, payload) -> Path:
    path = directory / name
    path.write_text(payload if isinstance(payload, str)
                    else json.dumps(payload))
    return path


def artifact(speedup, metric="speedup", **extra) -> dict:
    payload = {metric: speedup, "smoke_mode": True, "worker_count": 2,
               "git_sha": "deadbeef"}
    payload.update(extra)
    return payload


def gated_artifact(name: str, value, **extra) -> dict:
    """An artifact carrying *every* metric the gate checks for ``name``."""
    payload = {metric: value for metric, _ in check_regression.GATED_METRICS[name]}
    payload.update({"smoke_mode": True, "worker_count": 2,
                    "git_sha": "deadbeef"})
    payload.update(extra)
    return payload


@pytest.fixture()
def dirs(tmp_path):
    results = tmp_path / "results"
    baselines = tmp_path / "baselines"
    results.mkdir()
    baselines.mkdir()
    return results, baselines


def check(results, baselines, name=NAME, tolerance=0.25, require_all=False):
    return check_regression.check_file(name, results, baselines,
                                       tolerance, require_all)


class TestCheckFile:
    def test_missing_baseline_skips(self, dirs):
        results, baselines = dirs
        write(results, NAME, artifact(2.0))
        ok, message = check(results, baselines)
        assert ok and message.startswith("SKIP")

    def test_missing_fresh_artifact_skips_unless_required(self, dirs):
        results, baselines = dirs
        write(baselines, NAME, artifact(2.0))
        ok, message = check(results, baselines, require_all=False)
        assert ok and message.startswith("SKIP")
        ok, message = check(results, baselines, require_all=True)
        assert not ok and message.startswith("FAIL")

    def test_malformed_fresh_json_fails_cleanly(self, dirs):
        results, baselines = dirs
        write(baselines, NAME, artifact(2.0))
        write(results, NAME, '{"speedup": 2.0')  # truncated
        ok, message = check(results, baselines)
        assert not ok and "malformed JSON" in message

    def test_malformed_baseline_json_fails_cleanly(self, dirs):
        results, baselines = dirs
        write(baselines, NAME, "not json at all")
        write(results, NAME, artifact(2.0))
        ok, message = check(results, baselines)
        assert not ok and "malformed JSON" in message

    def test_non_object_artifact_fails(self, dirs):
        results, baselines = dirs
        write(baselines, NAME, artifact(2.0))
        write(results, NAME, json.dumps([1, 2, 3]))
        ok, message = check(results, baselines)
        assert not ok and "not a JSON object" in message

    def test_ratio_exactly_at_threshold_passes(self, dirs):
        # floor = baseline * (1 - tolerance); "dropped by MORE than the
        # tolerance" fails, landing exactly on the floor does not.
        results, baselines = dirs
        write(baselines, NAME, artifact(2.0))
        write(results, NAME, artifact(2.0 * (1.0 - 0.25)))
        ok, message = check(results, baselines, tolerance=0.25)
        assert ok and message.startswith("OK")

    def test_drop_below_threshold_fails(self, dirs):
        results, baselines = dirs
        write(baselines, NAME, artifact(2.0))
        write(results, NAME, artifact(1.4999))
        ok, message = check(results, baselines, tolerance=0.25)
        assert not ok and message.startswith("FAIL")

    def test_improvement_passes(self, dirs):
        results, baselines = dirs
        write(baselines, NAME, artifact(2.0))
        write(results, NAME, artifact(3.5))
        ok, _ = check(results, baselines)
        assert ok

    def test_metric_key_missing_from_fresh_fails(self, dirs):
        # e.g. a benchmark renames its payload key without updating the
        # gate: that must fail, not silently disarm the comparison
        results, baselines = dirs
        write(baselines, NAME, artifact(2.0))
        write(results, NAME, artifact(2.0, metric="new_speedup_key"))
        ok, message = check(results, baselines)
        assert not ok and "missing" in message

    def test_non_numeric_metric_fails(self, dirs):
        results, baselines = dirs
        write(baselines, NAME, artifact(2.0))
        write(results, NAME, artifact("fast!"))
        ok, message = check(results, baselines)
        assert not ok and "not numeric" in message

    def test_smoke_mode_mismatch_skips(self, dirs):
        results, baselines = dirs
        write(baselines, NAME, artifact(2.0))
        write(results, NAME, artifact(0.1, smoke_mode=False))
        ok, message = check(results, baselines)
        assert ok and "smoke_mode mismatch" in message

    def test_worker_count_mismatch_skips(self, dirs):
        results, baselines = dirs
        write(baselines, NAME, artifact(2.0))
        write(results, NAME, artifact(0.1, worker_count=1))
        ok, message = check(results, baselines)
        assert ok and "worker_count mismatch" in message

    def test_kernel_backend_mismatch_skips(self, dirs):
        # a REPRO_BACKEND=numba run must never be gated against the
        # committed NumPy baseline (different kernels, different machine)
        results, baselines = dirs
        write(baselines, NAME, artifact(2.0, backend="numpy"))
        write(results, NAME, artifact(0.1, backend="numba"))
        ok, message = check(results, baselines)
        assert ok and "kernel-backend mismatch" in message

    def test_missing_backend_stamp_means_numpy(self, dirs):
        # artifacts from before the stamp existed were all NumPy-produced,
        # so they stay comparable to freshly stamped NumPy runs
        results, baselines = dirs
        write(baselines, NAME, artifact(2.0))  # no "backend" key
        write(results, NAME, artifact(2.1, backend="numpy"))
        ok, message = check(results, baselines)
        assert ok and message.startswith("OK")

    def test_tracking_artifact_is_gated_on_iteration_speedups(self, dirs):
        results, baselines = dirs
        name = "BENCH_tracking.json"
        assert name in check_regression.GATED_METRICS
        metrics = [metric for metric, _ in check_regression.GATED_METRICS[name]]
        assert metrics == ["iteration_speedup", "adaptive_iteration_speedup"]
        for metric in metrics:
            baseline = gated_artifact(name, 9.0)
            fresh = gated_artifact(name, 9.0)
            fresh[metric] = 2.0  # only this metric regresses
            write(baselines, name, baseline)
            write(results, name, fresh)
            ok, message = check(results, baselines, name=name)
            assert not ok and message.startswith("FAIL"), metric

    def test_metric_absent_from_baseline_skips_that_metric(self, dirs):
        # staged rollout: a brand-new gated metric has no blessed baseline
        # value yet — it must be noted and skipped while the established
        # metric keeps gating
        results, baselines = dirs
        name = "BENCH_tracking.json"
        baseline = gated_artifact(name, 9.0)
        del baseline["adaptive_iteration_speedup"]
        write(baselines, name, baseline)
        write(results, name, gated_artifact(name, 9.0))
        ok, message = check(results, baselines, name=name)
        assert ok and message.startswith("OK")
        assert "not in baseline" in message
        # ... and the established metric still fails on a regression
        fresh = gated_artifact(name, 9.0)
        fresh["iteration_speedup"] = 2.0
        write(results, name, fresh)
        ok, message = check(results, baselines, name=name)
        assert not ok and message.startswith("FAIL")

    def test_no_comparable_metric_skips_file(self, dirs):
        # a baseline blessed before any of the file's gated metrics existed
        # compares nothing — the file is a SKIP, not a silent OK
        results, baselines = dirs
        name = "BENCH_tracking.json"
        baseline = gated_artifact(name, 9.0)
        for metric, _ in check_regression.GATED_METRICS[name]:
            del baseline[metric]
        write(baselines, name, baseline)
        write(results, name, gated_artifact(name, 9.0))
        ok, message = check(results, baselines, name=name)
        assert ok and message.startswith("SKIP")

    def test_metric_in_baseline_missing_from_fresh_fails(self, dirs):
        # the CI job runs both tracking legs; losing one must not disarm
        # its gate
        results, baselines = dirs
        name = "BENCH_tracking.json"
        write(baselines, name, gated_artifact(name, 9.0))
        fresh = gated_artifact(name, 9.0)
        del fresh["adaptive_iteration_speedup"]
        write(results, name, fresh)
        ok, message = check(results, baselines, name=name)
        assert not ok and "missing" in message


class TestMain:
    def test_all_ok_returns_zero(self, dirs, capsys):
        results, baselines = dirs
        for name in check_regression.GATED_METRICS:
            write(baselines, name, gated_artifact(name, 2.0))
            write(results, name, gated_artifact(name, 2.1))
        code = check_regression.main(["--results-dir", str(results),
                                      "--baseline-dir", str(baselines)])
        assert code == 0
        assert "gate passed" in capsys.readouterr().out

    def test_one_regression_returns_one(self, dirs, capsys):
        results, baselines = dirs
        for name in check_regression.GATED_METRICS:
            write(baselines, name, gated_artifact(name, 2.0))
            write(results, name, gated_artifact(name, 2.1))
        write(results, NAME, gated_artifact(NAME, 0.5))
        code = check_regression.main(["--results-dir", str(results),
                                      "--baseline-dir", str(baselines)])
        assert code == 1
        assert "FAILED" in capsys.readouterr().out

    def test_ungated_fresh_artifact_is_ignored(self, dirs):
        # a brand-new BENCH_*.json with no gate entry must not break main()
        results, baselines = dirs
        write(results, "BENCH_shiny_new_thing.json", artifact(1.0))
        code = check_regression.main(["--results-dir", str(results),
                                      "--baseline-dir", str(baselines)])
        assert code == 0

    def test_require_all_fails_on_missing_fresh(self, dirs):
        results, baselines = dirs
        write(baselines, NAME, gated_artifact(NAME, 2.0))
        code = check_regression.main(["--results-dir", str(results),
                                      "--baseline-dir", str(baselines),
                                      "--require-all"])
        assert code == 1
