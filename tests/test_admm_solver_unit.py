"""Unit-level tests of the ADMM driver (cheap configurations only).

The heavier end-to-end checks live in ``test_integration_admm.py``; these
tests exercise driver mechanics — solution extraction, iteration accounting,
time limits, residual reporting — with iteration budgets small enough to run
in well under a second each.
"""

import numpy as np
import pytest

from repro.admm import AdmmParameters, AdmmSolver, solve_acopf_admm
from repro.admm.data import ComponentData
from repro.admm.residuals import ResidualInfo, compute_residuals
from repro.admm.state import cold_start_state
from repro.admm.artificial import update_multipliers
from repro.exceptions import ConfigurationError

TINY = dict(max_outer=2, max_inner=15)


class TestSolverMechanics:
    def test_solution_arrays_have_network_shapes(self, case3):
        solution = solve_acopf_admm(case3, params=AdmmParameters(**TINY))
        assert solution.vm.shape == (case3.n_bus,)
        assert solution.va.shape == (case3.n_bus,)
        assert solution.pg.shape == (case3.n_gen,)
        assert solution.qg.shape == (case3.n_gen,)

    def test_objective_matches_network_cost_of_reported_dispatch(self, case3):
        solution = solve_acopf_admm(case3, params=AdmmParameters(**TINY))
        assert solution.objective == pytest.approx(case3.generation_cost(solution.pg))

    def test_iteration_accounting(self, case3):
        params = AdmmParameters(**TINY)
        solution = solve_acopf_admm(case3, params=params)
        assert solution.outer_iterations <= params.max_outer
        assert solution.inner_iterations <= params.max_outer * params.max_inner
        assert solution.inner_iterations == sum(
            log.inner_iterations for log in solution.iteration_log)

    def test_time_limit_stops_early(self, case9):
        params = AdmmParameters(max_outer=20, max_inner=1000)
        solution = solve_acopf_admm(case9, params=params, time_limit=0.5)
        assert solution.solve_seconds < 5.0
        assert not solution.converged or solution.solve_seconds <= 5.0

    def test_invalid_parameters_rejected_at_construction(self, case3):
        with pytest.raises(ConfigurationError):
            AdmmSolver(case3, params=AdmmParameters(rho_pq=-1.0))

    def test_solver_reusable_and_keeps_last_state(self, case3):
        solver = AdmmSolver(case3, params=AdmmParameters(**TINY))
        first = solver.solve()
        assert solver.last_state is first.state
        second = solver.solve(warm_start=first.state)
        assert second.state is not first.state

    def test_objective_scale_does_not_change_reported_objective_units(self, case3):
        plain = solve_acopf_admm(case3, params=AdmmParameters(**TINY))
        scaled = solve_acopf_admm(case3, params=AdmmParameters(objective_scale=2.0, **TINY))
        # Reported objectives are always in unscaled $/h.
        assert np.isclose(plain.objective, scaled.objective, rtol=0.2)

    def test_vm_is_sqrt_of_bus_w(self, case3):
        solution = solve_acopf_admm(case3, params=AdmmParameters(**TINY))
        assert np.allclose(solution.vm ** 2, np.maximum(solution.state.w, 1e-12))


class TestResidualReporting:
    def test_residual_info_convergence_test(self):
        info = ResidualInfo(primal_norm=1e-5, dual_norm=1e-5, primal_max=1e-4)
        assert info.converged(1e-4, 1e-4)
        assert not info.converged(1e-6, 1e-4)
        assert not info.converged(1e-4, 1e-6)

    def test_compute_residuals_zero_at_consistent_state(self, case3):
        params = AdmmParameters()
        data = ComponentData.from_network(case3, params)
        state = cold_start_state(data)
        # At cold start component and bus copies coincide, so the primal
        # residual after a multiplier update is exactly the raw residual.
        primal = update_multipliers(data, state)
        info = compute_residuals(data, state, primal)
        assert info.primal_norm >= 0.0
        assert info.dual_norm >= 0.0
        # Copies equal component values at cold start for gens and flows.
        assert np.allclose(primal["gp"], 0.0)
        assert np.allclose(primal["pij"], 0.0)

    def test_residuals_shrink_over_inner_iterations(self, case3):
        params = AdmmParameters(max_outer=1, max_inner=60)
        solution = solve_acopf_admm(case3, params=params)
        log = solution.iteration_log[0]
        assert log.primal_residual < 1e-2


class TestIterationLog:
    def test_log_fields(self, case3):
        solution = solve_acopf_admm(case3, params=AdmmParameters(**TINY))
        entry = solution.iteration_log[0]
        assert entry.outer_iteration == 1
        assert entry.inner_iterations >= 1
        assert entry.beta >= AdmmParameters().beta_init

    def test_beta_never_exceeds_cap(self, case3):
        params = AdmmParameters(max_outer=6, max_inner=10, beta_factor=100.0, beta_max=5e4)
        solution = solve_acopf_admm(case3, params=params)
        assert all(entry.beta <= 5e4 for entry in solution.iteration_log)
