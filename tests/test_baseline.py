"""Tests for the centralized interior-point baseline and the ACOPF NLP."""

import numpy as np
import pytest
from scipy.optimize import minimize

from repro.baseline import InteriorPointOptions, solve_acopf_ipm, solve_nlp
from repro.baseline.acopf_nlp import AcopfNlp
from repro.baseline.nlp import QuadraticProgram
from repro.baseline.scipy_solver import solve_acopf_scipy
from repro.grid.cases import load_case


def simple_qp(n=4, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(n, n))
    q = a @ a.T + np.eye(n)
    c = rng.normal(size=n)
    a_eq = np.ones((1, n))
    b_eq = np.array([1.0])
    g_ineq = np.vstack([np.eye(n)[0]])
    d_ineq = np.array([0.8])
    xl = np.full(n, -2.0)
    xu = np.full(n, 2.0)
    return QuadraticProgram(q=q, c=c, a_eq=a_eq, b_eq=b_eq, g_ineq=g_ineq,
                            d_ineq=d_ineq, xl=xl, xu=xu)


class TestInteriorPointOnQps:
    def test_matches_scipy_on_equality_constrained_qp(self):
        qp = simple_qp()
        result = solve_nlp(qp)
        assert result.converged

        ref = minimize(qp.objective, qp.initial_point(), jac=qp.gradient,
                       method="SLSQP",
                       bounds=list(zip(qp.xl, qp.xu)),
                       constraints=[{"type": "eq", "fun": qp.equality_constraints},
                                    {"type": "ineq",
                                     "fun": lambda x: -(qp.inequality_constraints(x))}])
        assert np.isclose(result.objective, ref.fun, rtol=1e-4, atol=1e-5)
        assert np.allclose(result.x, ref.x, atol=1e-3)

    def test_feasibility_at_solution(self):
        qp = simple_qp(seed=3)
        result = solve_nlp(qp)
        assert abs(qp.equality_constraints(result.x)[0]) < 1e-6
        assert np.all(qp.inequality_constraints(result.x) < 1e-6)
        assert np.all(result.x >= qp.xl - 1e-8)
        assert np.all(result.x <= qp.xu + 1e-8)

    def test_iteration_limit_reported(self):
        qp = simple_qp(seed=5)
        result = solve_nlp(qp, options=InteriorPointOptions(max_iter=2))
        assert result.iterations <= 2
        assert not result.converged

    def test_history_recorded(self):
        result = solve_nlp(simple_qp())
        assert len(result.history) == result.iterations
        assert {"objective", "feasibility"} <= set(result.history[0])


class TestAcopfNlp:
    @pytest.fixture(scope="class")
    def nlp(self):
        return AcopfNlp(load_case("case9"))

    def test_dimensions(self, nlp):
        assert nlp.n == 2 * 9 + 2 * 3
        assert nlp.equality_constraints(nlp.initial_point()).shape == (18,)
        assert nlp.inequality_constraints(nlp.initial_point()).shape == (18,)

    def test_reference_angle_pinned(self, nlp):
        lb, ub = nlp.bounds()
        ref = nlp.network.ref_bus
        assert lb[ref] == 0.0 and ub[ref] == 0.0

    def test_objective_and_gradient(self, nlp, rng):
        x = nlp.initial_point() + rng.normal(scale=0.01, size=nlp.n)
        grad = nlp.gradient(x)
        eps = 1e-7
        for k in rng.choice(nlp.n, size=8, replace=False):
            xp = x.copy()
            xm = x.copy()
            xp[k] += eps
            xm[k] -= eps
            fd = (nlp.objective(xp) - nlp.objective(xm)) / (2 * eps)
            assert np.isclose(grad[k], fd, rtol=1e-5, atol=1e-6)

    def test_equality_jacobian_matches_finite_differences(self, nlp, rng):
        x = nlp.initial_point() + rng.normal(scale=0.02, size=nlp.n)
        jac = nlp.equality_jacobian(x).toarray()
        eps = 1e-6
        for k in rng.choice(nlp.n, size=10, replace=False):
            xp = x.copy()
            xm = x.copy()
            xp[k] += eps
            xm[k] -= eps
            fd = (nlp.equality_constraints(xp) - nlp.equality_constraints(xm)) / (2 * eps)
            assert np.allclose(jac[:, k], fd, atol=1e-5)

    def test_inequality_jacobian_matches_finite_differences(self, nlp, rng):
        x = nlp.initial_point() + rng.normal(scale=0.02, size=nlp.n)
        jac = nlp.inequality_jacobian(x).toarray()
        eps = 1e-6
        for k in rng.choice(nlp.n, size=10, replace=False):
            xp = x.copy()
            xm = x.copy()
            xp[k] += eps
            xm[k] -= eps
            fd = (nlp.inequality_constraints(xp) - nlp.inequality_constraints(xm)) / (2 * eps)
            assert np.allclose(jac[:, k], fd, atol=1e-5)

    def test_lagrangian_hessian_matches_finite_differences(self, nlp, rng):
        x = nlp.initial_point() + rng.normal(scale=0.02, size=nlp.n)
        lam = rng.normal(size=18)
        mu = np.abs(rng.normal(size=18))
        hess = nlp.lagrangian_hessian(x, lam, mu).toarray()
        assert np.allclose(hess, hess.T, atol=1e-10)

        def lagrangian_grad(xv):
            return (nlp.gradient(xv) + nlp.equality_jacobian(xv).T @ lam
                    + nlp.inequality_jacobian(xv).T @ mu)

        eps = 1e-6
        for k in rng.choice(nlp.n, size=8, replace=False):
            xp = x.copy()
            xm = x.copy()
            xp[k] += eps
            xm[k] -= eps
            fd = (lagrangian_grad(xp) - lagrangian_grad(xm)) / (2 * eps)
            assert np.allclose(hess[:, k], fd, rtol=1e-4, atol=1e-4)

    def test_unpack_shapes(self, nlp):
        parts = nlp.unpack(nlp.initial_point())
        assert parts["vm"].shape == (9,)
        assert parts["pg"].shape == (3,)

    def test_line_limits_can_be_disabled(self):
        nlp = AcopfNlp(load_case("case9"), enforce_line_limits=False)
        assert nlp.inequality_constraints(nlp.initial_point()).size == 0
        assert nlp.inequality_jacobian(nlp.initial_point()).shape[0] == 0


class TestAcopfSolves:
    def test_case9_matches_known_optimum(self):
        solution = solve_acopf_ipm(load_case("case9"))
        assert solution.converged
        # The MATPOWER-published ACOPF objective for case9 is 5296.69 $/h.
        assert np.isclose(solution.objective, 5296.69, rtol=2e-3)
        assert solution.max_constraint_violation < 1e-5

    def test_case3_feasible_and_cheap(self, case3):
        solution = solve_acopf_ipm(case3)
        assert solution.converged
        assert solution.max_constraint_violation < 1e-5
        assert solution.objective > 0

    def test_synthetic_case_solves(self, small_synthetic):
        solution = solve_acopf_ipm(small_synthetic)
        assert solution.converged
        assert solution.max_constraint_violation < 1e-4

    def test_voltage_bounds_respected(self, case9):
        solution = solve_acopf_ipm(case9)
        assert np.all(solution.vm <= case9.bus_vmax + 1e-6)
        assert np.all(solution.vm >= case9.bus_vmin - 1e-6)

    def test_warm_start_accepts_previous_point(self, case3):
        first = solve_acopf_ipm(case3)
        second = solve_acopf_ipm(case3, x0=first.as_warm_start())
        assert second.converged
        assert np.isclose(second.objective, first.objective, rtol=1e-4)

    def test_scipy_cross_check_agrees(self, case3):
        ipm = solve_acopf_ipm(case3)
        ref = solve_acopf_scipy(case3, max_iter=200)
        assert np.isclose(ipm.objective, ref.objective, rtol=5e-3)
