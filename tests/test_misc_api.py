"""Tests for the package surface: case registry, exceptions, logging, CLI."""

import logging

import numpy as np
import pytest

import repro
from repro.analysis.experiments import bench_cases, bench_tracking_periods, main
from repro.exceptions import CaseNotFoundError, ConvergenceError, ReproError
from repro.grid.cases import available_cases, load_case, register_case
from repro.logging_utils import enable_console_logging, format_table_header, format_table_row, get_logger


class TestCaseRegistry:
    def test_available_cases_contains_embedded_and_synthetic(self):
        names = available_cases()
        assert {"case3", "case5", "case9"} <= set(names)
        assert "pegase118_like" in names

    def test_unknown_case_raises(self):
        with pytest.raises(CaseNotFoundError):
            load_case("case_of_beer")

    def test_register_custom_case(self, case3):
        register_case("my_custom_case", lambda: case3)
        assert load_case("my_custom_case").n_bus == 3

    def test_load_case_from_path(self, tmp_path, case9):
        from repro.grid.matpower import write_case

        path = write_case(case9, tmp_path / "c9.m")
        net = load_case(path)
        assert net.n_bus == 9


class TestPublicApi:
    def test_version_and_all(self):
        assert repro.__version__
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_top_level_solvers_exposed(self, case3):
        solution = repro.solve_acopf_ipm(case3)
        assert solution.objective > 0


class TestExceptions:
    def test_hierarchy(self):
        assert issubclass(CaseNotFoundError, ReproError)
        assert issubclass(ConvergenceError, ReproError)

    def test_convergence_error_carries_context(self):
        err = ConvergenceError("nope", iterations=7, residual=0.5)
        assert err.iterations == 7
        assert err.residual == 0.5


class TestLoggingUtils:
    def test_get_logger_namespacing(self):
        assert get_logger("admm").name == "repro.admm"
        assert get_logger().name == "repro"

    def test_enable_console_logging_idempotent(self):
        enable_console_logging(logging.WARNING)
        handlers_before = len(get_logger().handlers)
        enable_console_logging(logging.WARNING)
        assert len(get_logger().handlers) == handlers_before

    def test_table_formatting(self):
        header = format_table_header(["a", "b"], [6, 10])
        row = format_table_row([1, 2.5], [6, 10])
        assert len(header.split()) == 2
        assert "2.500e+00" in row


class TestBenchmarkConfiguration:
    def test_bench_cases_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_CASES", "case3,case9")
        assert bench_cases() == ["case3", "case9"]

    def test_bench_periods_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_PERIODS", "4")
        assert bench_tracking_periods() == 4

    def test_cli_table1(self, capsys):
        assert main(["table1", "--cases", "case9"]) == 0
        out = capsys.readouterr().out
        assert "case9" in out and "Table I" in out
