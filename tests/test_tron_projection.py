"""Property-based tests for the TRON projection utilities."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.tron.projection import (
    free_variable_mask,
    max_feasible_step,
    project,
    projected_gradient,
    projected_gradient_norm,
)

vectors = hnp.arrays(np.float64, shape=st.integers(1, 8),
                     elements=st.floats(-10, 10, allow_nan=False))


@st.composite
def box_and_point(draw):
    n = draw(st.integers(1, 8))
    lb = draw(hnp.arrays(np.float64, n, elements=st.floats(-5, 0)))
    width = draw(hnp.arrays(np.float64, n, elements=st.floats(0, 5)))
    ub = lb + width
    x = draw(hnp.arrays(np.float64, n, elements=st.floats(-10, 10)))
    g = draw(hnp.arrays(np.float64, n, elements=st.floats(-10, 10)))
    return lb, ub, x, g


class TestProject:
    @settings(max_examples=100, deadline=None)
    @given(box_and_point())
    def test_projection_is_inside_box(self, data):
        lb, ub, x, _ = data
        p = project(x, lb, ub)
        assert np.all(p >= lb - 1e-12)
        assert np.all(p <= ub + 1e-12)

    @settings(max_examples=100, deadline=None)
    @given(box_and_point())
    def test_projection_is_idempotent(self, data):
        lb, ub, x, _ = data
        p = project(x, lb, ub)
        assert np.allclose(project(p, lb, ub), p)

    @settings(max_examples=100, deadline=None)
    @given(box_and_point())
    def test_interior_points_unchanged(self, data):
        lb, ub, x, _ = data
        inside = np.clip(x, lb, ub)
        assert np.allclose(project(inside, lb, ub), inside)

    def test_batched_shape(self):
        x = np.zeros((5, 3))
        out = project(x + 2.0, np.full((5, 3), -1.0), np.full((5, 3), 1.0))
        assert out.shape == (5, 3)
        assert np.all(out == 1.0)


class TestProjectedGradient:
    @settings(max_examples=100, deadline=None)
    @given(box_and_point())
    def test_zero_at_unconstrained_stationary_point(self, data):
        lb, ub, x, _ = data
        x_in = np.clip(x, lb, ub)
        pg = projected_gradient(x_in, np.zeros_like(x_in), lb, ub)
        assert np.allclose(pg, 0.0)

    def test_zero_at_bound_with_outward_gradient(self):
        lb = np.array([0.0])
        ub = np.array([1.0])
        # x at upper bound and gradient pushes further up -> stationary.
        pg = projected_gradient(np.array([1.0]), np.array([-3.0]), lb, ub)
        assert np.allclose(pg, 0.0)

    def test_nonzero_in_interior_with_gradient(self):
        pg = projected_gradient(np.array([0.5]), np.array([0.2]),
                                np.array([0.0]), np.array([1.0]))
        assert np.allclose(pg, 0.2)

    def test_norm_is_inf_norm(self):
        x = np.array([[0.5, 0.5]])
        g = np.array([[0.1, -0.4]])
        lb = np.full((1, 2), 0.0)
        ub = np.full((1, 2), 1.0)
        assert np.isclose(projected_gradient_norm(x, g, lb, ub), 0.4)


class TestFreeVariables:
    def test_interior_is_free(self):
        mask = free_variable_mask(np.array([0.5]), np.array([1.0]),
                                  np.array([0.0]), np.array([1.0]))
        assert mask.all()

    def test_lower_bound_with_positive_gradient_is_fixed(self):
        mask = free_variable_mask(np.array([0.0]), np.array([1.0]),
                                  np.array([0.0]), np.array([1.0]))
        assert not mask.any()

    def test_lower_bound_with_negative_gradient_is_free(self):
        mask = free_variable_mask(np.array([0.0]), np.array([-1.0]),
                                  np.array([0.0]), np.array([1.0]))
        assert mask.all()


class TestMaxFeasibleStep:
    def test_step_respects_bounds(self):
        x = np.array([[0.5, 0.5]])
        d = np.array([[1.0, -2.0]])
        t = max_feasible_step(x, d, np.zeros((1, 2)), np.ones((1, 2)))
        assert np.isclose(t[0], 0.25)

    def test_zero_direction_gives_cap(self):
        x = np.array([[0.5]])
        d = np.array([[0.0]])
        t = max_feasible_step(x, d, np.zeros((1, 1)), np.ones((1, 1)), cap=1.0)
        assert np.isclose(t[0], 1.0)

    @settings(max_examples=100, deadline=None)
    @given(box_and_point())
    def test_resulting_point_feasible(self, data):
        lb, ub, x, g = data
        x_in = np.clip(x, lb, ub)
        t = max_feasible_step(x_in, g, lb, ub)
        moved = x_in + t * g
        assert np.all(moved >= lb - 1e-9)
        assert np.all(moved <= ub + 1e-9)
