"""Tests for multi-device scenario sharding (DevicePool) and its APIs.

Covers the partition/split bookkeeping, the stable re-merge of per-scenario
results, the edge cases the pool must survive (S=1, fewer scenarios than
workers, heterogeneous element counts, a worker raising mid-shard), the
process executor, and the resumable shard entry point.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.admm.batch_solver import (
    BatchAdmmSolver,
    ShardTask,
    solve_scenario_shard,
)
from repro.exceptions import ConfigurationError
from repro.parallel import DevicePool, PoolExecutionError, merge_device_dicts
from repro.parallel.pool import _StealScheduler
from repro.scenarios import ScenarioSet, partition_costs, scenario_cost

QUICK = repro.AdmmParameters(max_outer=2, max_inner=15)


def quick_batch(n: int = 4) -> ScenarioSet:
    network = repro.load_case("case9")
    factors = [0.8 + 0.1 * k for k in range(n)]
    return repro.load_scaling_scenarios(network, factors)


def heterogeneous_batch() -> ScenarioSet:
    """Scenarios of very different sizes (case9 vs pegase30_like)."""
    small = repro.load_case("case9")
    large = repro.load_case("pegase30_like")
    return ScenarioSet.from_networks([small, large, small, large, small],
                                     names=["s0", "L1", "s2", "L3", "s4"])


def assert_solutions_identical(pooled, batched) -> None:
    assert len(pooled) == len(batched)
    for a, b in zip(pooled, batched):
        assert a.network_name == b.network_name
        assert a.inner_iterations == b.inner_iterations
        assert a.outer_iterations == b.outer_iterations
        assert np.array_equal(a.vm, b.vm)
        assert np.array_equal(a.va, b.va)
        assert np.array_equal(a.pg, b.pg)
        assert np.array_equal(a.qg, b.qg)


# --------------------------------------------------------------------- #
# Partition / split                                                      #
# --------------------------------------------------------------------- #
class TestPartition:
    def test_lpt_balances_costs(self):
        parts = partition_costs([5.0, 4.0, 3.0, 3.0, 2.0, 1.0], 2)
        loads = [sum([5.0, 4.0, 3.0, 3.0, 2.0, 1.0][i] for i in part)
                 for part in parts]
        assert sorted(loads) == [9.0, 9.0]

    def test_parts_are_sorted_and_cover_all_items(self):
        parts = partition_costs([3.0, 1.0, 4.0, 1.0, 5.0], 3)
        assert sorted(i for part in parts for i in part) == [0, 1, 2, 3, 4]
        for part in parts:
            assert part == sorted(part)

    def test_more_parts_than_items_leaves_empties(self):
        parts = partition_costs([1.0, 2.0], 4)
        assert len(parts) == 4
        assert sum(1 for part in parts if part) == 2

    def test_layout_partition_uses_element_counts(self):
        scenario_set = heterogeneous_batch()
        solver = BatchAdmmSolver(scenario_set, params=QUICK)
        layout = solver.data.scenario_layout
        costs = layout.scenario_costs()
        # pegase30_like scenarios must cost more than case9 scenarios.
        assert costs[1] > costs[0] and costs[3] > costs[2]
        parts = layout.partition(2)
        loads = [sum(costs[i] for i in part) for part in parts]
        # cost-aware split: neither shard carries both large scenarios
        # alongside a majority of the small ones.
        assert max(loads) < 0.75 * sum(loads)

    def test_scenario_set_split_stable_remerge(self):
        scenario_set = heterogeneous_batch()
        shards = scenario_set.split(2)
        seen = sorted(i for indices, _ in shards for i in indices)
        assert seen == list(range(len(scenario_set)))
        for indices, subset in shards:
            assert list(indices) == sorted(indices)
            assert [s.name for s in subset] == [scenario_set[i].name
                                                for i in indices]

    def test_split_count_policy_balances_counts(self):
        scenario_set = heterogeneous_batch()
        shards = scenario_set.split(2, placement="count")
        sizes = sorted(len(indices) for indices, _ in shards)
        assert sizes == [2, 3]

    def test_split_drops_empty_parts(self):
        scenario_set = quick_batch(2)
        shards = scenario_set.split(5)
        assert len(shards) == 2

    def test_split_rejects_unknown_policy(self):
        with pytest.raises(ConfigurationError):
            quick_batch(2).split(2, placement="alphabetical")

    def test_subset_preserves_order_and_names(self):
        scenario_set = quick_batch(4)
        subset = scenario_set.subset([3, 1])
        assert [s.name for s in subset] == [scenario_set[3].name,
                                            scenario_set[1].name]

    def test_scenario_cost_scales_with_network_size(self):
        small = repro.load_case("case9")
        large = repro.load_case("pegase30_like")
        assert scenario_cost(large) > scenario_cost(small)


# --------------------------------------------------------------------- #
# Steal scheduler                                                        #
# --------------------------------------------------------------------- #
class TestStealScheduler:
    def test_serves_own_shard_first(self):
        sched = _StealScheduler([[0, 1], [2, 3]], [1.0] * 4,
                                chunk_scenarios=1, steal_threshold=1)
        assert sched.next_chunk(0) == ((0,), 0, False)
        assert sched.next_chunk(1) == ((2,), 1, False)

    def test_idle_worker_steals_from_most_loaded(self):
        sched = _StealScheduler([[], [1], [2, 3]], [1.0, 1.0, 5.0, 5.0],
                                chunk_scenarios=1, steal_threshold=1)
        indices, origin, stolen = sched.next_chunk(0)
        assert stolen and origin == 2 and indices == (3,)

    def test_steal_threshold_blocks_small_victims(self):
        sched = _StealScheduler([[], [1]], [1.0, 1.0],
                                chunk_scenarios=1, steal_threshold=2)
        assert sched.next_chunk(0) is None
        # the owner still drains its own tail
        assert sched.next_chunk(1) == ((1,), 1, False)

    def test_chunking_takes_runs_of_scenarios(self):
        sched = _StealScheduler([[0, 1, 2]], [1.0] * 3,
                                chunk_scenarios=2, steal_threshold=1)
        assert sched.next_chunk(0) == ((0, 1), 0, False)
        assert sched.next_chunk(0) == ((2,), 0, False)
        assert sched.next_chunk(0) is None


# --------------------------------------------------------------------- #
# DevicePool                                                             #
# --------------------------------------------------------------------- #
class TestDevicePoolSequential:
    def test_matches_single_device_batched_solve(self):
        scenario_set = quick_batch(4)
        reference = repro.solve_acopf_admm_batch(scenario_set, params=QUICK)
        pool = DevicePool(n_workers=2, executor="sequential", chunk_scenarios=1)
        report = pool.solve(scenario_set, params=QUICK)
        assert_solutions_identical(report.solutions, reference)

    def test_single_scenario(self):
        scenario_set = quick_batch(1)
        reference = repro.solve_acopf_admm_batch(scenario_set, params=QUICK)
        report = DevicePool(n_workers=4, executor="sequential").solve(
            scenario_set, params=QUICK)
        assert report.n_workers == 1  # never more workers than scenarios
        assert_solutions_identical(report.solutions, reference)

    def test_fewer_scenarios_than_workers(self):
        scenario_set = quick_batch(2)
        reference = repro.solve_acopf_admm_batch(scenario_set, params=QUICK)
        report = DevicePool(n_workers=8, executor="sequential").solve(
            scenario_set, params=QUICK)
        assert report.n_workers == 2
        assert_solutions_identical(report.solutions, reference)

    def test_heterogeneous_element_counts(self):
        scenario_set = heterogeneous_batch()
        reference = repro.solve_acopf_admm_batch(scenario_set, params=QUICK)
        pool = DevicePool(n_workers=2, executor="sequential", chunk_scenarios=1)
        report = pool.solve(scenario_set, params=QUICK)
        assert_solutions_identical(report.solutions, reference)
        assert report.makespan_seconds <= report.total_busy_seconds

    def test_report_accounting(self):
        scenario_set = quick_batch(4)
        pool = DevicePool(n_workers=2, executor="sequential", chunk_scenarios=1)
        report = pool.solve(scenario_set, params=QUICK)
        assert sum(len(c.indices) for c in report.chunks) == 4
        assert report.total_busy_seconds == pytest.approx(
            sum(w.busy_seconds for w in report.workers))
        assert report.makespan_seconds == pytest.approx(
            max(w.busy_seconds for w in report.workers))
        assert report.parallel_speedup > 1.0
        # fleet-wide device metrics cover every scenario's kernels
        assert report.device["kernels"]["branch_update"]["launches"] > 0

    def test_worker_error_surfaces_scenario_id(self):
        scenario_set = quick_batch(3)
        pool = DevicePool(n_workers=2, executor="sequential",
                          chunk_scenarios=1, solve_fn=_fail_on_x09)
        with pytest.raises(PoolExecutionError) as excinfo:
            pool.solve(scenario_set, params=QUICK)
        assert "case9@x0.9" in str(excinfo.value)
        assert "case9@x0.9" in excinfo.value.scenario_names

    def test_invalid_options_rejected(self):
        with pytest.raises(ConfigurationError):
            DevicePool(executor="threads")
        with pytest.raises(ConfigurationError):
            DevicePool(placement="random")
        with pytest.raises(ConfigurationError):
            DevicePool(n_workers=0)
        with pytest.raises(ConfigurationError):
            DevicePool(chunk_scenarios=0)


class TestDevicePoolProcess:
    def test_matches_single_device_batched_solve(self):
        scenario_set = quick_batch(4)
        reference = repro.solve_acopf_admm_batch(scenario_set, params=QUICK)
        pool = DevicePool(n_workers=2, executor="process", chunk_scenarios=1)
        report = pool.solve(scenario_set, params=QUICK)
        assert_solutions_identical(report.solutions, reference)
        assert report.device["kernels"]["branch_update"]["launches"] > 0

    def test_worker_error_does_not_hang(self):
        scenario_set = quick_batch(3)
        pool = DevicePool(n_workers=2, executor="process",
                          chunk_scenarios=1, solve_fn=_fail_on_x09)
        with pytest.raises(PoolExecutionError) as excinfo:
            pool.solve(scenario_set, params=QUICK)
        assert "case9@x0.9" in str(excinfo.value)

    def test_worker_death_is_detected(self):
        scenario_set = quick_batch(2)
        pool = DevicePool(n_workers=2, executor="process",
                          chunk_scenarios=1, solve_fn=_die_on_x09)
        with pytest.raises(PoolExecutionError) as excinfo:
            pool.solve(scenario_set, params=QUICK)
        assert "died" in str(excinfo.value)


# --------------------------------------------------------------------- #
# Shard affinity (persistent placement) and warm-state transfer          #
# --------------------------------------------------------------------- #
class TestAffinity:
    def test_affinity_partition_places_preferences(self):
        shards = DevicePool._affinity_partition([1, 0, None, 1],
                                                [1.0, 1.0, 5.0, 1.0], 2)
        assert shards[0] == [1, 2]  # preference 0, then the costly orphan
        assert shards[1] == [0, 3]

    def test_affinity_mapping_form_and_wraparound(self):
        # dict form; worker ids recorded on a wider pool wrap into range
        shards = DevicePool._affinity_partition({0: 3, 2: 1},
                                                [1.0, 1.0, 1.0], 2)
        assert shards[1] == [0, 2]  # 0 -> 3 % 2 = 1; 2 -> 1
        assert shards[0] == [1]     # the unpreferred orphan fills the gap

    def test_affinity_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            DevicePool._affinity_partition([0, 1], [1.0, 1.0, 1.0], 2)

    def test_affinity_solve_matches_single_device(self):
        scenario_set = quick_batch(4)
        reference = repro.solve_acopf_admm_batch(scenario_set, params=QUICK)
        pool = DevicePool(n_workers=2, executor="sequential", chunk_scenarios=1)
        report = pool.solve(scenario_set, params=QUICK, affinity=[1, 1, 0, 0])
        assert report.placement == "affinity"
        assert_solutions_identical(report.solutions, reference)
        # every scenario started on (or was stolen from) its preferred worker
        assert set(report.scenario_workers) == {0, 1, 2, 3}

    def test_forced_steal_preserves_batch_order(self):
        """All scenarios pinned to worker 0: worker 1 must steal, and the
        re-merged results stay identical to the single-device solve."""
        scenario_set = quick_batch(4)
        reference = repro.solve_acopf_admm_batch(scenario_set, params=QUICK)
        pool = DevicePool(n_workers=2, executor="sequential", chunk_scenarios=1)
        report = pool.solve(scenario_set, params=QUICK, affinity=[0, 0, 0, 0])
        assert report.n_steals > 0
        assert_solutions_identical(report.solutions, reference)

    def test_warm_states_ship_with_chunks(self):
        """A pooled warm-started solve equals the batched warm-started solve
        — including for scenarios a steal moved across workers."""
        scenario_set = quick_batch(4)
        cold = BatchAdmmSolver(scenario_set, params=QUICK).solve()
        states = [s.state for s in cold]
        reference = BatchAdmmSolver(scenario_set, params=QUICK).solve(
            warm_start=states)
        pool = DevicePool(n_workers=2, executor="sequential", chunk_scenarios=1)
        report = pool.solve(scenario_set, params=QUICK, warm_states=states,
                            affinity=[0, 0, 0, 0])  # forces worker 1 to steal
        assert report.n_steals > 0
        assert_solutions_identical(report.solutions, reference)

    def test_warm_states_through_process_executor(self):
        scenario_set = quick_batch(3)
        cold = BatchAdmmSolver(scenario_set, params=QUICK).solve()
        states = [s.state for s in cold]
        reference = BatchAdmmSolver(scenario_set, params=QUICK).solve(
            warm_start=states)
        pool = DevicePool(n_workers=2, executor="process", chunk_scenarios=1)
        report = pool.solve(scenario_set, params=QUICK, warm_states=states,
                            affinity=[0, 1, 0])
        assert_solutions_identical(report.solutions, reference)

    def test_warm_states_length_mismatch_rejected(self):
        pool = DevicePool(n_workers=2, executor="sequential")
        with pytest.raises(ConfigurationError):
            pool.solve(quick_batch(3), params=QUICK, warm_states=[None])

    def test_scenario_workers_property(self):
        scenario_set = quick_batch(3)
        pool = DevicePool(n_workers=2, executor="sequential", chunk_scenarios=1)
        report = pool.solve(scenario_set, params=QUICK)
        workers = report.scenario_workers
        assert sorted(workers) == [0, 1, 2]
        assert all(0 <= w < report.n_workers for w in workers.values())


# --------------------------------------------------------------------- #
# Shard entry point                                                      #
# --------------------------------------------------------------------- #
class TestShardEntryPoint:
    def test_shard_task_validates_lengths(self):
        scenario_set = quick_batch(2)
        with pytest.raises(ConfigurationError):
            ShardTask(indices=(0,), scenarios=scenario_set)

    def test_solve_scenario_shard_round_trip(self):
        scenario_set = quick_batch(2)
        task = ShardTask(indices=(5, 7), scenarios=scenario_set, params=QUICK)
        result = solve_scenario_shard(task)
        assert result.indices == (5, 7)
        assert len(result.solutions) == 2
        assert result.seconds > 0.0
        assert result.device["kernels"]["branch_update"]["launches"] > 0

    def test_shard_task_is_picklable(self):
        import pickle

        task = ShardTask(indices=(0, 1), scenarios=quick_batch(2), params=QUICK)
        clone = pickle.loads(pickle.dumps(task))
        result = solve_scenario_shard(clone)
        assert [s.network_name for s in result.solutions] == clone.scenarios.names

    def test_warm_start_resume(self):
        scenario_set = quick_batch(2)
        first = BatchAdmmSolver(scenario_set, params=QUICK).solve()
        states = [s.state for s in first]
        resumed = BatchAdmmSolver(scenario_set, params=QUICK).solve(
            warm_start=states)
        assert len(resumed) == 2
        # warm-started runs re-enter the loop from the previous iterate, so
        # they must not reproduce the cold-start trajectory
        assert any(not np.array_equal(a.vm, b.vm)
                   for a, b in zip(first, resumed))

    def test_warm_start_length_mismatch(self):
        scenario_set = quick_batch(2)
        solver = BatchAdmmSolver(scenario_set, params=QUICK)
        with pytest.raises(ConfigurationError):
            solver.solve(warm_start=[None])


# --------------------------------------------------------------------- #
# Device metric merging                                                  #
# --------------------------------------------------------------------- #
class TestMergeDeviceDicts:
    def test_sums_counters_and_recomputes_ratios(self):
        snapshots = [
            {"total_seconds": 1.0,
             "kernels": {"k": {"launches": 2, "total_seconds": 1.0,
                               "total_elements": 10,
                               "total_active_elements": 5}}},
            {"total_seconds": 3.0,
             "kernels": {"k": {"launches": 4, "total_seconds": 3.0,
                               "total_elements": 30,
                               "total_active_elements": 15}}},
        ]
        merged = merge_device_dicts(snapshots, name="fleet")
        assert merged["device"] == "fleet"
        assert merged["total_seconds"] == pytest.approx(4.0)
        kernel = merged["kernels"]["k"]
        assert kernel["launches"] == 6
        assert kernel["total_elements"] == 40
        assert kernel["occupancy"] == pytest.approx(0.5)
        assert kernel["elements_per_second"] == pytest.approx(10.0)

    def test_empty_iterable(self):
        merged = merge_device_dicts([])
        assert merged["kernels"] == {} and merged["total_seconds"] == 0.0


# --------------------------------------------------------------------- #
# Failure-injection helpers (module level so they pickle across fork)    #
# --------------------------------------------------------------------- #
def _fail_on_x09(task):
    if any(s.name.endswith("x0.9") for s in task.scenarios):
        raise RuntimeError("injected shard failure")
    return solve_scenario_shard(task)


def _die_on_x09(task):
    if any(s.name.endswith("x0.9") for s in task.scenarios):
        import os

        os._exit(17)  # simulate a hard worker crash (segfault analogue)
    return solve_scenario_shard(task)
