"""Unit tests for the ADMM component layout, state, and closed-form updates."""

import numpy as np
import pytest
from scipy.optimize import minimize

from repro.admm.artificial import (
    update_artificial_variables,
    update_multipliers,
    update_outer_level,
)
from repro.admm.branch_update import build_branch_objective, update_branches
from repro.admm.bus_update import update_buses
from repro.admm.data import COUPLING_GROUPS, ComponentData
from repro.admm.generator_update import update_generators
from repro.admm.parameters import AdmmParameters, parameters_for_case, suggest_penalties
from repro.admm.state import cold_start_state
from repro.exceptions import ConfigurationError
from repro.grid.cases import load_case
from repro.powerflow.branch_derivatives import all_flow_values


@pytest.fixture(scope="module")
def case9_data():
    network = load_case("case9")
    return ComponentData.from_network(network, AdmmParameters())


@pytest.fixture()
def case9_state(case9_data):
    return cold_start_state(case9_data)


class TestParameters:
    def test_defaults_validate(self):
        AdmmParameters().validate()

    def test_invalid_penalty(self):
        with pytest.raises(ConfigurationError):
            AdmmParameters(rho_pq=-1.0).validate()

    def test_invalid_beta(self):
        with pytest.raises(ConfigurationError):
            AdmmParameters(beta_factor=0.5).validate()

    def test_invalid_backend(self):
        with pytest.raises(ConfigurationError):
            AdmmParameters(tron_backend="gpu").validate()

    def test_inner_tolerance_decreases_with_outer_iteration(self):
        params = AdmmParameters()
        assert params.inner_tolerance(1) >= params.inner_tolerance(3)
        assert params.inner_tolerance(10) >= min(params.inner_tol_primal,
                                                 params.inner_tol_dual)

    def test_paper_penalties_returned_for_published_names(self):
        net = load_case("1354pegase_like")
        assert suggest_penalties(net) == (1e1, 1e3)

    def test_small_case_penalties(self, case9):
        rho_pq, rho_va = suggest_penalties(case9)
        assert rho_pq > 0 and rho_va > rho_pq

    def test_parameters_for_case(self, case9):
        params = parameters_for_case(case9, max_outer=5)
        assert params.max_outer == 5
        assert params.rho_pq == suggest_penalties(case9)[0]


class TestComponentData:
    def test_counts(self, case9_data):
        assert case9_data.n_gen == 3
        assert case9_data.n_branch == 9
        assert case9_data.n_bus == 9
        assert case9_data.n_coupling == 2 * 3 + 8 * 9

    def test_group_lengths(self, case9_data):
        assert case9_data.group_length("gp") == 3
        assert case9_data.group_length("wi") == 9

    def test_rho_assignment(self, case9_data):
        assert case9_data.rho["gp"] == case9_data.params.rho_pq
        assert case9_data.rho["wi"] == case9_data.params.rho_va

    def test_objective_scale_applied_and_undone(self, case9):
        params = AdmmParameters(objective_scale=2.0)
        data = ComponentData.from_network(case9, params)
        pg = np.array([0.5, 0.5, 0.5])
        assert np.isclose(data.generation_cost(pg), case9.generation_cost(pg))
        assert np.allclose(data.gen_c2, 2.0 * case9.gen_cost_c2)

    def test_inactive_generators_excluded(self, case9):
        case = load_case("case9")
        case.generators[2].status = 0
        modified = type(case)(name="mod", base_mva=case.base_mva, buses=case.buses,
                              branches=case.branches, generators=case.generators,
                              costs=case.costs)
        data = ComponentData.from_network(modified, AdmmParameters())
        assert data.n_gen == 2


class TestColdStart:
    def test_midpoint_initialisation(self, case9_data, case9_state):
        assert np.allclose(case9_state.pg,
                           0.5 * (case9_data.gen_pmin + case9_data.gen_pmax))
        assert np.allclose(case9_state.w, case9_data.bus_vm_mid ** 2)
        assert np.allclose(case9_state.theta, 0.0)

    def test_flows_consistent_with_branch_variables(self, case9_data, case9_state):
        flows = all_flow_values(case9_data.quantities, case9_state.vi, case9_state.vj,
                                case9_state.ti, case9_state.tj)
        assert np.allclose(flows[0], case9_state.pij)
        assert np.allclose(flows[3], case9_state.qji)

    def test_multipliers_start_at_zero(self, case9_state):
        for group in COUPLING_GROUPS:
            assert np.allclose(case9_state.y[group], 0.0)
            assert np.allclose(case9_state.z[group], 0.0)
            assert np.allclose(case9_state.lz[group], 0.0)

    def test_copy_is_independent(self, case9_state):
        clone = case9_state.copy()
        clone.pg[:] = 99.0
        clone.y["gp"][:] = 1.0
        assert not np.allclose(case9_state.pg, 99.0)
        assert np.allclose(case9_state.y["gp"], 0.0)

    def test_z_norm_zero_at_cold_start(self, case9_state):
        assert case9_state.z_norm() == 0.0

    def test_slacks_within_bounds(self, case9_data, case9_state):
        rate_sq = np.where(np.isfinite(case9_data.branch_rate_sq),
                           case9_data.branch_rate_sq, 0.0)
        assert np.all(case9_state.sij <= 0.0)
        assert np.all(case9_state.sij >= -rate_sq - 1e-12)


class TestGeneratorUpdate:
    def test_matches_scipy_per_generator(self, case9_data, case9_state, rng):
        state = case9_state
        # Randomise the coupling context so the test is not trivial.
        state.pg_copy = rng.uniform(0.2, 2.0, case9_data.n_gen)
        state.qg_copy = rng.uniform(-0.5, 0.5, case9_data.n_gen)
        state.y["gp"] = rng.normal(size=case9_data.n_gen)
        state.y["gq"] = rng.normal(size=case9_data.n_gen)
        state.z["gp"] = rng.normal(size=case9_data.n_gen) * 0.01
        state.z["gq"] = rng.normal(size=case9_data.n_gen) * 0.01
        update_generators(case9_data, state)

        rho_p = case9_data.rho["gp"]
        rho_q = case9_data.rho["gq"]
        for g in range(case9_data.n_gen):
            def obj(v, g=g):
                pg, qg = v
                cost = case9_data.gen_c2[g] * pg ** 2 + case9_data.gen_c1[g] * pg
                rp = pg - state.pg_copy[g] + state.z["gp"][g]
                rq = qg - state.qg_copy[g] + state.z["gq"][g]
                return (cost + state.y["gp"][g] * rp + 0.5 * rho_p * rp ** 2
                        + state.y["gq"][g] * rq + 0.5 * rho_q * rq ** 2)

            ref = minimize(obj, np.array([1.0, 0.0]), method="L-BFGS-B",
                           bounds=[(case9_data.gen_pmin[g], case9_data.gen_pmax[g]),
                                   (case9_data.gen_qmin[g], case9_data.gen_qmax[g])])
            assert np.isclose(state.pg[g], ref.x[0], atol=1e-6)
            assert np.isclose(state.qg[g], ref.x[1], atol=1e-6)

    def test_respects_bounds(self, case9_data, case9_state):
        case9_state.y["gp"][:] = 1e6  # push hard toward the lower bound
        update_generators(case9_data, case9_state)
        assert np.all(case9_state.pg >= case9_data.gen_pmin - 1e-12)
        assert np.all(case9_state.pg <= case9_data.gen_pmax + 1e-12)


class TestBusUpdate:
    def test_power_balance_satisfied_exactly(self, case9_data, case9_state, rng):
        state = case9_state
        # Random component-side values to make the QP non-trivial.
        state.pg = rng.uniform(0.2, 2.0, case9_data.n_gen)
        state.qg = rng.uniform(-0.5, 0.5, case9_data.n_gen)
        state.pij = rng.normal(size=case9_data.n_branch)
        state.qij = rng.normal(size=case9_data.n_branch)
        state.pji = rng.normal(size=case9_data.n_branch)
        state.qji = rng.normal(size=case9_data.n_branch)
        for group in COUPLING_GROUPS:
            state.y[group] = rng.normal(size=case9_data.group_length(group)) * 0.1
        update_buses(case9_data, state)

        # The bus subproblem enforces (1b)-(1c) exactly at its solution.
        nb = case9_data.n_bus
        p_balance = -case9_data.bus_pd - case9_data.bus_gs * state.w
        q_balance = -case9_data.bus_qd + case9_data.bus_bs * state.w
        np.add.at(p_balance, case9_data.gen_bus, state.pg_copy)
        np.add.at(q_balance, case9_data.gen_bus, state.qg_copy)
        np.subtract.at(p_balance, case9_data.branch_from, state.pij_copy)
        np.subtract.at(q_balance, case9_data.branch_from, state.qij_copy)
        np.subtract.at(p_balance, case9_data.branch_to, state.pji_copy)
        np.subtract.at(q_balance, case9_data.branch_to, state.qji_copy)
        assert np.allclose(p_balance, 0.0, atol=1e-9)
        assert np.allclose(q_balance, 0.0, atol=1e-9)

    def test_matches_generic_qp_solution_for_one_bus(self, case9_data, case9_state):
        """Cross-check the closed form against a generic equality-constrained QP."""
        state = case9_state
        update_buses(case9_data, state)
        bus = 4  # a load bus of case9 with two incident branches
        gens = [g for g in range(case9_data.n_gen) if case9_data.gen_bus[g] == bus]
        from_lines = np.flatnonzero(case9_data.branch_from == bus)
        to_lines = np.flatnonzero(case9_data.branch_to == bus)

        # Assemble the bus QP explicitly: variables ordered as
        # [pg..., qg..., pij..., qij..., pji..., qji..., w, theta].
        rho = case9_data.rho
        diag = []
        lin = []
        a_p = []
        a_q = []

        def add(var_rho, target, y, ap, aq):
            diag.append(var_rho)
            lin.append(var_rho * target + y)
            a_p.append(ap)
            a_q.append(aq)

        for g in gens:
            add(rho["gp"], state.pg[g] + state.z["gp"][g], state.y["gp"][g], 1.0, 0.0)
        for g in gens:
            add(rho["gq"], state.qg[g] + state.z["gq"][g], state.y["gq"][g], 0.0, 1.0)
        for l in from_lines:
            add(rho["pij"], state.pij[l] + state.z["pij"][l], state.y["pij"][l], -1.0, 0.0)
        for l in from_lines:
            add(rho["qij"], state.qij[l] + state.z["qij"][l], state.y["qij"][l], 0.0, -1.0)
        for l in to_lines:
            add(rho["pji"], state.pji[l] + state.z["pji"][l], state.y["pji"][l], -1.0, 0.0)
        for l in to_lines:
            add(rho["qji"], state.qji[l] + state.z["qji"][l], state.y["qji"][l], 0.0, -1.0)
        # w variable: one consensus term per incident branch end.
        w_rho = rho["wi"] * len(from_lines) + rho["wj"] * len(to_lines)
        w_lin = sum(rho["wi"] * (state.vi[l] ** 2 + state.z["wi"][l]) + state.y["wi"][l]
                    for l in from_lines)
        w_lin += sum(rho["wj"] * (state.vj[l] ** 2 + state.z["wj"][l]) + state.y["wj"][l]
                     for l in to_lines)
        add_w_ap = -case9_data.bus_gs[bus]
        add_w_aq = case9_data.bus_bs[bus]
        diag.append(w_rho)
        lin.append(w_lin)
        a_p.append(add_w_ap)
        a_q.append(add_w_aq)

        q_mat = np.diag(diag)
        c_vec = np.array(lin)
        a_mat = np.vstack([a_p, a_q])
        b_vec = np.array([case9_data.bus_pd[bus], case9_data.bus_qd[bus]])
        # Solve the KKT system directly.
        n = len(diag)
        kkt = np.block([[q_mat, a_mat.T], [a_mat, np.zeros((2, 2))]])
        rhs = np.concatenate([c_vec, b_vec])
        sol = np.linalg.solve(kkt, rhs)
        w_expected = sol[n - 1]
        assert np.isclose(state.w[bus], w_expected, atol=1e-8)


class TestArtificialAndMultipliers:
    def test_z_update_is_stationary_point(self, case9_data, case9_state, rng):
        state = case9_state
        for group in COUPLING_GROUPS:
            state.y[group] = rng.normal(size=case9_data.group_length(group))
            state.lz[group] = rng.normal(size=case9_data.group_length(group))
        update_artificial_variables(case9_data, state)
        residuals = state.coupling_residuals(case9_data)
        for group in COUPLING_GROUPS:
            rho = case9_data.rho[group]
            grad = (state.lz[group] + state.beta * state.z[group] + state.y[group]
                    + rho * (residuals[group] + state.z[group]))
            assert np.allclose(grad, 0.0, atol=1e-8)

    def test_multiplier_update_increments_by_rho_times_residual(self, case9_data, case9_state):
        state = case9_state
        before = {g: state.y[g].copy() for g in COUPLING_GROUPS}
        primal = update_multipliers(case9_data, state)
        for group in COUPLING_GROUPS:
            assert np.allclose(state.y[group],
                               before[group] + case9_data.rho[group] * primal[group])

    def test_outer_update_grows_beta_when_z_stalls(self, case9_data, case9_state):
        state = case9_state
        state.z["gp"][:] = 1.0  # pretend z is large and not contracting
        beta_before = state.beta
        update_outer_level(case9_data, state, previous_z_norm=1.0)
        assert state.beta == pytest.approx(
            min(beta_before * case9_data.params.beta_factor, case9_data.params.beta_max))

    def test_outer_update_keeps_beta_when_z_contracts(self, case9_data, case9_state):
        state = case9_state
        state.z["gp"][:] = 1e-9
        beta_before = state.beta
        update_outer_level(case9_data, state, previous_z_norm=1.0)
        assert state.beta == beta_before

    def test_outer_multiplier_projection(self, case9_data, case9_state):
        state = case9_state
        params = case9_data.params
        state.beta = 10.0
        state.z["gp"][:] = params.outer_multiplier_bound  # absurdly large
        update_outer_level(case9_data, state, previous_z_norm=1.0)
        assert np.all(np.abs(state.lz["gp"]) <= params.outer_multiplier_bound)


class TestBranchUpdate:
    def test_objective_gradient_matches_finite_differences(self, case9_data, case9_state, rng):
        objective = build_branch_objective(case9_data, case9_state)
        u = np.column_stack([case9_state.vi, case9_state.vj, case9_state.ti,
                             case9_state.tj, case9_state.sij, case9_state.sji])
        u += rng.normal(scale=0.01, size=u.shape)
        grad = objective.gradient(u)
        eps = 1e-7
        for k in range(6):
            up = u.copy()
            um = u.copy()
            up[:, k] += eps
            um[:, k] -= eps
            fd = (objective.objective(up) - objective.objective(um)) / (2 * eps)
            assert np.allclose(grad[:, k], fd, rtol=1e-4, atol=1e-4)

    def test_objective_hessian_matches_finite_differences(self, case9_data, case9_state, rng):
        objective = build_branch_objective(case9_data, case9_state)
        u = np.column_stack([case9_state.vi, case9_state.vj, case9_state.ti,
                             case9_state.tj, case9_state.sij, case9_state.sji])
        u += rng.normal(scale=0.01, size=u.shape)
        hess = objective.hessian(u)
        eps = 1e-6
        for k in range(6):
            up = u.copy()
            um = u.copy()
            up[:, k] += eps
            um[:, k] -= eps
            fd = (objective.gradient(up) - objective.gradient(um)) / (2 * eps)
            assert np.allclose(hess[:, k, :], fd, rtol=1e-3, atol=1e-3)

    def test_update_decreases_branch_objective(self, case9_data, case9_state):
        state = case9_state
        objective = build_branch_objective(case9_data, state)
        u_before = np.column_stack([state.vi, state.vj, state.ti, state.tj,
                                    state.sij, state.sji])
        f_before = objective.objective(u_before)
        update_branches(case9_data, state)
        u_after = np.column_stack([state.vi, state.vj, state.ti, state.tj,
                                   state.sij, state.sji])
        f_after = objective.objective(u_after)
        assert np.all(f_after <= f_before + 1e-9)

    def test_update_respects_voltage_bounds(self, case9_data, case9_state):
        update_branches(case9_data, case9_state)
        assert np.all(case9_state.vi >= case9_data.branch_vi_min - 1e-10)
        assert np.all(case9_state.vi <= case9_data.branch_vi_max + 1e-10)
        assert np.all(case9_state.vj >= case9_data.branch_vj_min - 1e-10)
        assert np.all(case9_state.vj <= case9_data.branch_vj_max + 1e-10)

    def test_update_refreshes_cached_flows(self, case9_data, case9_state):
        update_branches(case9_data, case9_state)
        flows = all_flow_values(case9_data.quantities, case9_state.vi, case9_state.vj,
                                case9_state.ti, case9_state.tj)
        assert np.allclose(flows[0], case9_state.pij)

    def test_unlimited_branches_keep_zero_slack(self, small_synthetic):
        params = AdmmParameters()
        data = ComponentData.from_network(small_synthetic, params)
        state = cold_start_state(data)
        update_branches(data, state)
        free = ~data.branch_has_limit
        if free.any():
            assert np.allclose(state.sij[free], 0.0)
            assert np.allclose(state.sji[free], 0.0)
