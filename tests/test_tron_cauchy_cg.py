"""Tests for the Cauchy-point search and the Steihaug CG solver."""

import numpy as np

from repro.tron.cauchy import _quadratic_model, cauchy_point
from repro.tron.cg import steihaug_cg


def random_spd_batch(rng, batch, n, shift=0.5):
    a = rng.normal(size=(batch, n, n))
    return np.einsum("bij,bkj->bik", a, a) + shift * np.eye(n)


class TestCauchyPoint:
    def test_decreases_quadratic_model(self, rng):
        batch, n = 20, 6
        hess = random_spd_batch(rng, batch, n)
        g = rng.normal(size=(batch, n))
        x = np.zeros((batch, n))
        lb = np.full((batch, n), -2.0)
        ub = np.full((batch, n), 2.0)
        delta = np.full(batch, 1.0)
        s, alpha = cauchy_point(x, g, hess, delta, lb, ub)
        q = _quadratic_model(g, hess, s)
        assert np.all(q <= 1e-12)
        assert np.all(alpha >= 0)

    def test_step_stays_in_box_and_radius(self, rng):
        batch, n = 30, 4
        hess = random_spd_batch(rng, batch, n)
        g = rng.normal(size=(batch, n)) * 5
        x = rng.uniform(-1, 1, size=(batch, n))
        lb = np.full((batch, n), -1.0)
        ub = np.full((batch, n), 1.0)
        delta = rng.uniform(0.1, 2.0, batch)
        s, _ = cauchy_point(x, g, hess, delta, lb, ub)
        assert np.all(x + s >= lb - 1e-10)
        assert np.all(x + s <= ub + 1e-10)
        assert np.all(np.linalg.norm(s, axis=-1) <= delta * (1 + 1e-6))

    def test_zero_gradient_gives_zero_step(self):
        hess = np.eye(3)[None]
        s, alpha = cauchy_point(np.zeros((1, 3)), np.zeros((1, 3)), hess,
                                np.array([1.0]), np.full((1, 3), -1.0), np.full((1, 3), 1.0))
        assert np.allclose(s, 0.0)
        assert alpha[0] == 0.0

    def test_indefinite_hessian_still_decreases(self, rng):
        batch, n = 10, 5
        a = rng.normal(size=(batch, n, n))
        hess = 0.5 * (a + np.transpose(a, (0, 2, 1)))  # indefinite
        g = rng.normal(size=(batch, n))
        x = np.zeros((batch, n))
        s, _ = cauchy_point(x, g, hess, np.full(batch, 0.5),
                            np.full((batch, n), -1.0), np.full((batch, n), 1.0))
        q = _quadratic_model(g, hess, s)
        assert np.all(q <= 1e-12)


class TestSteihaugCg:
    def test_solves_unconstrained_newton_system(self, rng):
        batch, n = 15, 6
        hess = random_spd_batch(rng, batch, n)
        rhs = rng.normal(size=(batch, n))
        free = np.ones((batch, n), dtype=bool)
        result = steihaug_cg(hess, rhs, np.full(batch, 1e6), free, tol=1e-10, max_iter=50)
        expected = np.stack([np.linalg.solve(hess[b], rhs[b]) for b in range(batch)])
        assert np.allclose(result.step, expected, atol=1e-6)
        assert not result.negative_curvature.any()

    def test_respects_trust_radius(self, rng):
        batch, n = 15, 6
        hess = random_spd_batch(rng, batch, n, shift=0.1)
        rhs = rng.normal(size=(batch, n)) * 10
        free = np.ones((batch, n), dtype=bool)
        radius = np.full(batch, 0.3)
        result = steihaug_cg(hess, rhs, radius, free, tol=1e-10)
        assert np.all(np.linalg.norm(result.step, axis=-1) <= radius + 1e-8)

    def test_negative_curvature_goes_to_boundary(self):
        hess = np.array([[[-1.0, 0.0], [0.0, -2.0]]])
        rhs = np.array([[1.0, 0.5]])
        free = np.ones((1, 2), dtype=bool)
        radius = np.array([2.0])
        result = steihaug_cg(hess, rhs, radius, free)
        assert result.negative_curvature[0]
        assert np.isclose(np.linalg.norm(result.step[0]), 2.0, atol=1e-8)

    def test_frozen_variables_do_not_move(self, rng):
        batch, n = 8, 5
        hess = random_spd_batch(rng, batch, n)
        rhs = rng.normal(size=(batch, n))
        free = np.ones((batch, n), dtype=bool)
        free[:, 2] = False
        result = steihaug_cg(hess, rhs, np.full(batch, 10.0), free)
        assert np.allclose(result.step[:, 2], 0.0)

    def test_zero_rhs_returns_zero_step(self):
        hess = np.eye(4)[None]
        result = steihaug_cg(hess, np.zeros((1, 4)), np.array([1.0]),
                             np.ones((1, 4), dtype=bool))
        assert np.allclose(result.step, 0.0)
        assert result.iterations[0] == 0

    def test_model_decrease(self, rng):
        batch, n = 20, 6
        hess = random_spd_batch(rng, batch, n, shift=0.2)
        rhs = rng.normal(size=(batch, n))
        free = np.ones((batch, n), dtype=bool)
        result = steihaug_cg(hess, rhs, np.full(batch, 0.5), free)
        # model value q(w) = -rhs.w + 0.5 w H w must be non-positive
        q = -np.einsum("bi,bi->b", rhs, result.step) + 0.5 * np.einsum(
            "bi,bij,bj->b", result.step, hess, result.step)
        assert np.all(q <= 1e-10)
