"""End-to-end integration tests: the ADMM solver against the baseline.

These are the most expensive tests in the suite (tens of seconds): they run
the full two-level ADMM on small cases and check the paper's headline claims
at test scale — solution quality close to the centralized solver from cold
start, and warm starts that converge in fewer iterations.
"""

import numpy as np
import pytest

from repro.admm import AdmmParameters, AdmmSolver, solve_acopf_admm
from repro.analysis import relative_objective_gap
from repro.baseline import solve_acopf_ipm
from repro.grid.cases import load_case
from repro.parallel import SimulatedDevice

#: Loosened settings so the integration tests stay fast; quality thresholds
#: below are chosen accordingly (the benchmarks exercise the full-quality
#: configuration).
FAST_PARAMS = dict(max_outer=12, max_inner=400)


class TestColdStart:
    @pytest.fixture(scope="class")
    def case3_solutions(self):
        network = load_case("case3")
        baseline = solve_acopf_ipm(network)
        admm = solve_acopf_admm(network, params=AdmmParameters(**FAST_PARAMS))
        return network, baseline, admm

    def test_admm_converges(self, case3_solutions):
        _, _, admm = case3_solutions
        assert admm.converged
        assert admm.inner_iterations > 0
        assert admm.outer_iterations >= 1

    def test_solution_quality_close_to_baseline(self, case3_solutions):
        _, baseline, admm = case3_solutions
        gap = relative_objective_gap(admm.objective, baseline.objective)
        assert gap < 0.02, f"objective gap {gap:.3%} too large"
        assert admm.max_constraint_violation < 5e-3

    def test_solution_within_bounds(self, case3_solutions):
        network, _, admm = case3_solutions
        assert np.all(admm.vm <= network.bus_vmax + 1e-6)
        assert np.all(admm.vm >= network.bus_vmin - 1e-6)
        assert np.all(admm.pg <= network.gen_pmax + 1e-6)
        assert np.all(admm.pg >= network.gen_pmin - 1e-6)

    def test_reference_angle_zero(self, case3_solutions):
        network, _, admm = case3_solutions
        assert abs(admm.va[network.ref_bus]) < 1e-12

    def test_iteration_log_populated(self, case3_solutions):
        _, _, admm = case3_solutions
        assert len(admm.iteration_log) == admm.outer_iterations
        assert admm.iteration_log[-1].z_norm <= admm.iteration_log[0].z_norm


class TestDeviceAccounting:
    def test_kernel_breakdown_recorded(self):
        network = load_case("case3")
        device = SimulatedDevice()
        solver = AdmmSolver(network, params=AdmmParameters(max_outer=2, max_inner=30),
                            device=device)
        solver.solve()
        names = set(device.kernels)
        assert {"generator_update", "branch_update", "bus_update",
                "z_update", "multiplier_update"} <= names
        # Branch subproblems dominate, as the paper reports for the GPU.
        assert device.kernels["branch_update"].total_seconds >= \
            device.kernels["generator_update"].total_seconds

    def test_loop_backend_matches_batched(self):
        network = load_case("case3")
        batched = solve_acopf_admm(network, params=AdmmParameters(
            max_outer=2, max_inner=40, tron_backend="batched"))
        loop = solve_acopf_admm(network, params=AdmmParameters(
            max_outer=2, max_inner=40, tron_backend="loop"))
        assert np.isclose(batched.objective, loop.objective, rtol=1e-3)


class TestWarmStart:
    def test_warm_start_converges_faster(self):
        network = load_case("case3")
        params = AdmmParameters(**FAST_PARAMS)
        solver = AdmmSolver(network, params=params)
        cold = solver.solve()

        # Perturb the load slightly (a tracking step) and re-solve warm.
        perturbed = network.with_scaled_loads(1.01)
        solver_warm = AdmmSolver(perturbed, params=params)
        warm = solver_warm.solve(warm_start=cold.state)
        cold_again = solver_warm.solve()

        assert warm.converged
        assert warm.inner_iterations <= cold_again.inner_iterations
        assert warm.max_constraint_violation < 5e-3

    def test_warm_start_state_reusable_across_solves(self):
        network = load_case("case3")
        params = AdmmParameters(max_outer=6, max_inner=200)
        solver = AdmmSolver(network, params=params)
        first = solver.solve()
        second = solver.solve(warm_start=first.state)
        assert second.converged
        assert np.isclose(second.objective, first.objective, rtol=1e-2)


@pytest.mark.slow
class TestCase9FullQuality:
    def test_case9_matches_baseline_within_paper_band(self):
        network = load_case("case9")
        baseline = solve_acopf_ipm(network)
        admm = solve_acopf_admm(network)
        gap = relative_objective_gap(admm.objective, baseline.objective)
        # Paper Table II: violations 1e-4..1e-2 and gaps below 2.5%.
        assert admm.max_constraint_violation < 1e-2
        assert gap < 0.025
