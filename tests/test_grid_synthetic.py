"""Tests for the synthetic grid generator."""

import numpy as np
import pytest

from repro.exceptions import DataError
from repro.grid.synthetic import make_synthetic_grid
from repro.grid.validation import connected_components, validate_network


class TestStructure:
    def test_requested_counts(self):
        net = make_synthetic_grid(n_bus=50, n_gen=10, n_branch=70, seed=1)
        assert net.n_bus == 50
        assert net.n_gen == 10
        assert net.n_branch == 70

    def test_default_counts_follow_style_ratios(self):
        net = make_synthetic_grid(n_bus=200, style="pegase", seed=2)
        assert 200 * 1.3 < net.n_branch < 200 * 1.7
        assert 0.1 * 200 < net.n_gen < 0.3 * 200

    def test_connected(self):
        net = make_synthetic_grid(n_bus=120, seed=3)
        assert len(connected_components(net)) == 1

    def test_validates(self):
        net = make_synthetic_grid(n_bus=80, seed=4)
        report = validate_network(net)
        assert report.ok, report.errors

    def test_slack_bus_has_generator(self):
        net = make_synthetic_grid(n_bus=40, seed=5)
        assert net.gens_at_bus[net.ref_bus]

    def test_capacity_margin(self):
        net = make_synthetic_grid(n_bus=60, seed=6)
        load, _ = net.total_load()
        assert net.gen_pmax[net.gen_status].sum() > 1.2 * load

    def test_activsg_style(self):
        net = make_synthetic_grid(n_bus=90, style="activsg", seed=7)
        assert net.n_bus == 90
        assert validate_network(net).ok

    def test_paper_scale_counts(self):
        # The registry builds full-size analogues of the paper's systems; the
        # generator must honour exact counts at that scale too.
        net = make_synthetic_grid(n_bus=1354, n_gen=260, n_branch=1991, seed=8)
        assert (net.n_bus, net.n_gen, net.n_branch) == (1354, 260, 1991)


class TestDeterminism:
    def test_same_seed_same_grid(self):
        a = make_synthetic_grid(n_bus=40, seed=11)
        b = make_synthetic_grid(n_bus=40, seed=11)
        assert np.array_equal(a.bus_pd, b.bus_pd)
        assert np.array_equal(a.branch_from, b.branch_from)
        assert np.array_equal(a.gen_cost_c1, b.gen_cost_c1)

    def test_different_seed_different_grid(self):
        a = make_synthetic_grid(n_bus=40, seed=11)
        b = make_synthetic_grid(n_bus=40, seed=12)
        assert not np.array_equal(a.bus_pd, b.bus_pd)


class TestErrors:
    def test_too_few_buses(self):
        with pytest.raises(DataError):
            make_synthetic_grid(n_bus=1)

    def test_unknown_style(self):
        with pytest.raises(DataError, match="style"):
            make_synthetic_grid(n_bus=10, style="martian")

    def test_too_few_branches(self):
        with pytest.raises(DataError, match="branches"):
            make_synthetic_grid(n_bus=20, n_branch=5)
