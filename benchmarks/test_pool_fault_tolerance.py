"""Benchmark: recovery overhead of the fault-tolerant DevicePool.

The workload is the same 8-scenario heterogeneous N-1 batch the pool
throughput benchmark shards.  Two 2-worker **process-executor** runs are
compared: a failure-free one, and one where a scripted
:class:`~repro.parallel.faults.FaultPlan` kills worker 1 on its second
chunk (``os._exit`` inside the worker — a real process death, detected by
the liveness poll, recovered by replaying the lost chunk and respawning the
worker).  The recovered run must return bitwise-identical solutions; what
the benchmark *records* is the price of that recovery — the makespan and
wall-clock overhead versus the clean run, which is dominated by one
re-solved chunk plus the respawn backoff.

Results merge into ``BENCH_pool.json`` under ``fault_tolerance`` (the
throughput sweep owns the rest of the file; `merge_bench_json` keeps both
contributions regardless of which benchmark ran last).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
from test_compaction_throughput import CASE, heterogeneous_n1_batch

from repro.admm import solve_acopf_admm_batch
from repro.admm.parameters import parameters_for_case
from repro.grid.cases import load_case
from repro.parallel import DevicePool, FaultPlan, FaultSpec

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_pool.json"


def assert_identical(pooled, reference) -> None:
    for a, b in zip(pooled, reference):
        assert a.inner_iterations == b.inner_iterations
        assert np.array_equal(a.vm, b.vm)
        assert np.array_equal(a.va, b.va)
        assert np.array_equal(a.pg, b.pg)
        assert np.array_equal(a.qg, b.qg)


def make_pool(fault_plan=None) -> DevicePool:
    return DevicePool(n_workers=2, executor="process", chunk_scenarios=1,
                      on_failure="retry", respawn_backoff=0.05,
                      fault_plan=fault_plan)


def test_recovery_overhead_of_one_worker_crash(smoke, bench_merger):
    scenario_set = heterogeneous_n1_batch()
    if smoke:
        params = parameters_for_case(load_case(CASE), max_outer=2, max_inner=12,
                                     outer_tol=1e-2)
    else:
        params = parameters_for_case(load_case(CASE), max_outer=3, max_inner=40,
                                     outer_tol=1e-2)
    reference = solve_acopf_admm_batch(scenario_set, params=params)

    clean = make_pool().solve(scenario_set, params=params)
    assert_identical(clean.solutions, reference)
    assert clean.retries == 0 and clean.respawns == 0

    plan = FaultPlan([FaultSpec("crash", worker=1, chunk=2)])
    faulty = make_pool(plan).solve(scenario_set, params=params)
    assert_identical(faulty.solutions, reference)
    assert faulty.respawns == 1
    assert faulty.retries >= 1
    assert faulty.failed_scenarios == ()

    makespan_overhead = faulty.makespan_seconds - clean.makespan_seconds
    wall_overhead = faulty.wall_seconds - clean.wall_seconds
    print(f"\nclean run:     makespan {clean.makespan_seconds:.3f}s, "
          f"wall {clean.wall_seconds:.3f}s")
    print(f"crash + replay: makespan {faulty.makespan_seconds:.3f}s, "
          f"wall {faulty.wall_seconds:.3f}s "
          f"({faulty.retries} retries, {faulty.respawns} respawn)")
    print(f"recovery overhead: makespan {makespan_overhead:+.3f}s, "
          f"wall {wall_overhead:+.3f}s")

    bench_merger(RESULT_PATH, {
        "fault_tolerance": {
            "benchmark": "pool_fault_tolerance",
            "case": CASE,
            "fault": "crash(worker=1,chunk=2)",
            "clean": {"makespan_seconds": clean.makespan_seconds,
                      "wall_seconds": clean.wall_seconds},
            "recovered": {"makespan_seconds": faulty.makespan_seconds,
                          "wall_seconds": faulty.wall_seconds,
                          "retries": faulty.retries,
                          "respawns": faulty.respawns,
                          "replayed_scenarios": list(faulty.replayed_scenarios),
                          "failures": [f.as_dict() for f in faulty.failures]},
            "makespan_overhead_seconds": makespan_overhead,
            "wall_overhead_seconds": wall_overhead,
            "solutions_identical": True,
        },
    }, workers=2)
    print(f"merged fault_tolerance into {RESULT_PATH}")
