"""Shared configuration of the benchmark harness.

Every benchmark prints the rows / series the paper reports and asserts the
qualitative shape (who wins, by roughly what factor) rather than absolute
numbers: the substrate here is a vectorised NumPy simulation of the paper's
GPU kernels, so wall-clock values differ but the comparisons should not.

Environment knobs (all optional):

``REPRO_BENCH_CASES``
    Comma-separated case list for the cold-start table
    (default ``case9,pegase118_like``).
``REPRO_BENCH_TRACKING_CASE``
    Case used for the warm-start tracking figures (default ``case9``).
``REPRO_BENCH_PERIODS``
    Number of tracking periods (default 12; the paper uses 30).
``REPRO_BENCH_SMOKE``
    ``1`` switches the throughput benchmarks to reduced iteration budgets
    (the CI benchmark-smoke job); assertions that need full budgets relax.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.experiments import (
    bench_cases,
    bench_tracking_case,
    bench_tracking_periods,
    table2,
    tracking_experiment,
)


def smoke_mode() -> bool:
    """Whether the reduced-size benchmark mode is requested (CI smoke job)."""
    return os.environ.get("REPRO_BENCH_SMOKE", "").strip().lower() in ("1", "true", "yes")


@pytest.fixture(scope="session")
def smoke() -> bool:
    """Fixture view of :func:`smoke_mode` for the benchmark tests."""
    return smoke_mode()


@pytest.fixture(scope="session")
def coldstart_rows():
    """Run the cold-start comparison once and share it across benchmarks."""
    return table2(bench_cases())


@pytest.fixture(scope="session")
def tracking_results():
    """Run the warm-start tracking experiment once (shared by Figures 1-3)."""
    return tracking_experiment(bench_tracking_case(),
                               n_periods=bench_tracking_periods())
