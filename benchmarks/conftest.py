"""Shared configuration of the benchmark harness.

Every benchmark prints the rows / series the paper reports and asserts the
qualitative shape (who wins, by roughly what factor) rather than absolute
numbers: the substrate here is a vectorised NumPy simulation of the paper's
GPU kernels, so wall-clock values differ but the comparisons should not.

Environment knobs (all optional):

``REPRO_BENCH_CASES``
    Comma-separated case list for the cold-start table
    (default ``case9,pegase118_like``).
``REPRO_BENCH_TRACKING_CASE``
    Case used for the warm-start tracking figures (default ``case9``).
``REPRO_BENCH_PERIODS``
    Number of tracking periods (default 12; the paper uses 30).
``REPRO_BENCH_SMOKE``
    ``1`` switches the throughput benchmarks to reduced iteration budgets
    (the CI benchmark-smoke job); assertions that need full budgets relax.
"""

from __future__ import annotations

import json
import os
import subprocess
from pathlib import Path

import pytest

from repro.analysis.experiments import (
    bench_cases,
    bench_tracking_case,
    bench_tracking_periods,
    table2,
    tracking_experiment,
)
from repro.parallel.backends import default_backend_name


def smoke_mode() -> bool:
    """Whether the reduced-size benchmark mode is requested (CI smoke job)."""
    return os.environ.get("REPRO_BENCH_SMOKE", "").strip().lower() in ("1", "true", "yes")


def repo_git_sha() -> str:
    """The repo's HEAD commit, or ``"unknown"`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent.parent,
            capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 and out.stdout.strip() else "unknown"


def write_bench_json(path: Path, payload: dict, workers: int = 1) -> Path:
    """Atomically write one ``BENCH_*.json`` artifact, stamped for provenance.

    The payload is written to a same-directory temp file and ``os.replace``d
    into place, so concurrent pool runs / CI artifact uploads can never
    observe a partially written file; it is stamped with the git SHA, the
    worker count that produced it, the smoke-mode flag, and the active
    kernel-backend name so artifacts are attributable after the fact (and
    the regression gate never compares measurements across backends).
    """
    path = Path(path)
    payload = dict(payload)
    payload.setdefault("git_sha", repo_git_sha())
    payload.setdefault("worker_count", int(workers))
    payload.setdefault("smoke_mode", smoke_mode())
    payload.setdefault("backend", default_backend_name())
    text = json.dumps(payload, indent=2) + "\n"
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    try:
        tmp.write_text(text)
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)
    return path


def merge_bench_json(path: Path, payload: dict, workers: int = 1) -> Path:
    """Like :func:`write_bench_json`, but keep keys an earlier benchmark wrote.

    Several benchmarks contribute to one artifact (``BENCH_pool.json`` holds
    the throughput sweep *and* the fault-tolerance overhead), and pytest's
    collection order must not decide which contribution survives: the new
    payload is overlaid on whatever the file already holds, and only the
    provenance stamp is re-taken by the newest writer.
    """
    path = Path(path)
    existing: dict = {}
    if path.exists():
        try:
            existing = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            existing = {}
    merged = {**existing, **payload}
    for stamp in ("git_sha", "worker_count", "smoke_mode", "backend"):
        merged.pop(stamp, None)
    return write_bench_json(path, merged, workers=workers)


@pytest.fixture(scope="session")
def bench_writer():
    """Fixture view of :func:`write_bench_json` for the benchmark tests."""
    return write_bench_json


@pytest.fixture(scope="session")
def bench_merger():
    """Fixture view of :func:`merge_bench_json` for shared artifacts."""
    return merge_bench_json


@pytest.fixture(scope="session")
def smoke() -> bool:
    """Fixture view of :func:`smoke_mode` for the benchmark tests."""
    return smoke_mode()


@pytest.fixture(scope="session")
def coldstart_rows():
    """Run the cold-start comparison once and share it across benchmarks."""
    return table2(bench_cases())


@pytest.fixture(scope="session")
def tracking_results():
    """Run the warm-start tracking experiment once (shared by Figures 1-3)."""
    return tracking_experiment(bench_tracking_case(),
                               n_periods=bench_tracking_periods())
