"""Benchmark: stream compaction sweeps only active work, for real speedups.

The workload is the heterogeneous case the paper's execution model suffers
on: an 8-scenario N-1 contingency batch of ``pegase118_like`` in which each
outage is screened at its own operating point (load factors 0.2–1.05), so
easy scenarios freeze after 2 outer rounds while the hardest runs 5.  A
plain batched sweep keeps processing every row regardless — frozen
scenarios *and* branch TRON subproblems that converged in their first
iterations.  The compaction engine gathers only the active rows (TRON
working-set windows inside every ``branch_update``, scenario packing once
batch members freeze) and scatters results back, bitwise identically.

Shape asserted: the compacted stream beats the ``REPRO_COMPACTION=0``
full-sweep baseline by ≥ 2× wall-clock with *identical* per-scenario
solutions and iteration counts, and the baseline's kernel occupancy is
below 1 while the compacted stream's is 1.  Results (timings, speedup,
per-kernel occupancy/throughput) are written to ``BENCH_compaction.json``.

``REPRO_BENCH_SMOKE=1`` switches to a reduced iteration budget for CI smoke
runs: the bitwise-equivalence assertions stay, the 2× bar relaxes to >1
(tiny budgets leave too little converged work to reclaim for a stable 2×).
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np

from repro.admm import solve_acopf_admm_batch
from repro.admm.parameters import parameters_for_case
from repro.analysis.reporting import render_table
from repro.grid.cases import load_case
from repro.parallel.device import SimulatedDevice
from repro.scenarios import ScenarioSet, contingency_scenarios

CASE = "pegase118_like"
LOAD_FACTORS = (0.20, 0.30, 0.40, 0.55, 0.70, 0.85, 1.00, 1.05)
OUTAGES = (0, 20, 41, 61, 123, 143, 164, 185)

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_compaction.json"


def heterogeneous_n1_batch() -> ScenarioSet:
    """8 N-1 outage scenarios, each screened at its own operating point."""
    network = load_case(CASE)
    scenarios = []
    for factor, outage in zip(LOAD_FACTORS, OUTAGES):
        scaled = network.with_scaled_loads(factor, name=f"{CASE}@x{factor:g}")
        scenarios.append(contingency_scenarios(scaled, branch_indices=[outage])
                         .scenarios[0])
    return ScenarioSet(scenarios=tuple(scenarios), name=f"{CASE}-n1-heterogeneous")


def test_compaction_speedup_on_heterogeneous_n1_batch(benchmark, monkeypatch, smoke,
                                                      bench_writer):
    scenario_set = heterogeneous_n1_batch()
    if smoke:
        params = parameters_for_case(load_case(CASE), max_outer=2, max_inner=12,
                                     outer_tol=1e-2)
    else:
        params = parameters_for_case(load_case(CASE), max_outer=5, max_inner=60,
                                     outer_tol=1e-2)

    monkeypatch.setenv("REPRO_COMPACTION", "1")
    compacted_device = SimulatedDevice(name="compacted")
    start = time.perf_counter()
    compacted = benchmark.pedantic(
        solve_acopf_admm_batch, args=(scenario_set,),
        kwargs=dict(params=params, device=compacted_device),
        rounds=1, iterations=1)
    compacted_seconds = time.perf_counter() - start

    monkeypatch.setenv("REPRO_COMPACTION", "0")
    full_device = SimulatedDevice(name="full-sweep")
    start = time.perf_counter()
    full = solve_acopf_admm_batch(scenario_set, params=params, device=full_device)
    full_seconds = time.perf_counter() - start

    speedup = full_seconds / compacted_seconds
    print()
    print(render_table(
        ["mode", "wall-clock (s)", "branch occupancy", "kernel sweeps"],
        [["compacted", compacted_seconds,
          compacted_device.kernels["branch_update"].occupancy,
          compacted_device.kernels["branch_update"].launches],
         ["full sweep", full_seconds,
          full_device.kernels["branch_update"].occupancy,
          full_device.kernels["branch_update"].launches]],
        title=f"Stream compaction, 8-scenario heterogeneous N-1 x {CASE}"))
    print(f"\nspeedup: {speedup:.2f}x")
    print(compacted_device.report())
    print(full_device.report())

    # Identical work, bit for bit: compaction only removes retired rows.
    for a, b in zip(compacted, full):
        assert a.inner_iterations == b.inner_iterations
        assert a.outer_iterations == b.outer_iterations
        assert np.array_equal(a.vm, b.vm)
        assert np.array_equal(a.va, b.va)
        assert np.array_equal(a.pg, b.pg)
        assert np.array_equal(a.qg, b.qg)

    if not smoke:
        # The batch is genuinely heterogeneous: easy scenarios freeze in a
        # fraction of the hardest scenario's iterations...
        inner = [s.inner_iterations for s in compacted]
        assert min(inner) < max(inner)
        # ...so the full sweep wastes width that compaction reclaims.
        assert compacted_device.kernels["branch_update"].occupancy == 1.0
        assert full_device.kernels["branch_update"].occupancy < 1.0

    required = 1.0 if smoke else 2.0
    assert speedup >= required, (
        f"compacted {compacted_seconds:.2f}s vs full sweep {full_seconds:.2f}s "
        f"({speedup:.2f}x, required ≥ {required}x)")

    bench_writer(RESULT_PATH, {
        "benchmark": "compaction_throughput",
        "case": CASE,
        "scenarios": [s.name for s in scenario_set.scenarios],
        "smoke_mode": smoke,
        "params": {"max_outer": params.max_outer, "max_inner": params.max_inner,
                   "outer_tol": params.outer_tol,
                   "compaction_threshold": params.compaction_threshold,
                   "tron_compaction_threshold": params.tron.compaction_threshold},
        "compacted_seconds": compacted_seconds,
        "full_sweep_seconds": full_seconds,
        "speedup": speedup,
        "per_scenario": [
            {"name": s.network_name, "inner_iterations": s.inner_iterations,
             "outer_iterations": s.outer_iterations, "converged": s.converged}
            for s in compacted],
        "compacted_device": compacted_device.as_dict(),
        "full_sweep_device": full_device.as_dict(),
    })
    print(f"wrote {RESULT_PATH}")
