"""Benchmark: Figure 3 — relative objective gap under warm start.

Prints the per-period relative objective gap of the warm-started ADMM
solutions against the centralized baseline solved over the same horizon, and
asserts the paper's observation that the gap stays at cold-start levels
(below a few percent, mostly below 1 %).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.experiments import render_figure3


def test_fig3_relative_gap(benchmark, tracking_results):
    experiment = tracking_results
    benchmark.pedantic(render_figure3, args=(experiment,), rounds=1, iterations=1)
    print()
    print(render_figure3(experiment))

    gaps = experiment.admm_gaps
    assert gaps.shape == (experiment.periods,)
    assert np.all(np.isfinite(gaps))
    # Paper Figure 3: gaps stay below a few percent across the horizon.
    assert np.all(gaps < 0.05)
    # Most periods stay below 1.5% (the paper reports <1% after period 7).
    assert np.median(gaps) < 0.015
