"""Benchmark: scenario batching beats sequential solves on wall-clock.

The paper's thesis is that thousands of tiny independent subproblems
saturate a device.  A small case leaves our batch axis nearly empty, so the
scenario-batched driver stacks S independent scenarios into one kernel
stream.  Per scenario the iteration trajectories are identical to
sequential solves (see ``tests/test_admm_batch.py``), so the comparison is
pure launch-overhead amortisation: the batched run performs
``max_s(iterations_s)`` kernel sweeps over S-times-wider arrays instead of
``sum_s(iterations_s)`` sweeps over narrow ones.

Shape asserted: batched wall-clock strictly beats sequential for S=8
scenarios of case9, and the batched branch-update kernel sustains higher
element throughput (occupancy) than the sequential one.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.admm import AdmmParameters, scenario_parameters, solve_acopf_admm, solve_acopf_admm_batch
from repro.analysis.reporting import render_table
from repro.grid.cases import load_case
from repro.parallel.device import SimulatedDevice
from repro.scenarios import load_scaling_scenarios

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_batch.json"

#: Shared iteration budget — both arms run exactly the same trajectories,
#: so capping it changes benchmark time, not the comparison.  The CI smoke
#: job (``REPRO_BENCH_SMOKE=1``, the ``smoke`` fixture) shrinks it further;
#: the batched-beats-sequential shape holds at any budget.
PARAMS = dict(max_outer=3, max_inner=100)
SMOKE_PARAMS = dict(max_outer=2, max_inner=25)

N_SCENARIOS = 8


def test_batched_beats_sequential_wallclock(benchmark, smoke, bench_writer):
    network = load_case("case9")
    factors = [0.75 + 0.05 * k for k in range(N_SCENARIOS)]
    scenario_set = load_scaling_scenarios(network, factors)
    params = AdmmParameters(**(SMOKE_PARAMS if smoke else PARAMS))

    batched_device = SimulatedDevice(name="batched")
    start = time.perf_counter()
    batched = benchmark.pedantic(
        solve_acopf_admm_batch, args=(scenario_set,),
        kwargs=dict(params=params, device=batched_device),
        rounds=1, iterations=1)
    batched_seconds = time.perf_counter() - start

    sequential_device = SimulatedDevice(name="sequential")
    start = time.perf_counter()
    sequential = [
        solve_acopf_admm(scenario.network,
                         params=scenario_parameters(scenario, params),
                         device=sequential_device)
        for scenario in scenario_set]
    sequential_seconds = time.perf_counter() - start

    print()
    print(render_table(
        ["mode", "wall-clock (s)", "total inner iters", "kernel sweeps"],
        [["batched", batched_seconds,
          sum(s.inner_iterations for s in batched),
          batched_device.kernels["branch_update"].launches],
         ["sequential", sequential_seconds,
          sum(s.inner_iterations for s in sequential),
          sequential_device.kernels["branch_update"].launches]],
        title=f"Scenario batching, S={N_SCENARIOS} x case9"))
    print()
    print(batched_device.report())
    print(sequential_device.report())

    # Identical per-scenario work...
    for b, s in zip(batched, sequential):
        assert b.inner_iterations == s.inner_iterations
        assert abs(b.objective - s.objective) <= 1e-6
    # ...but the batched stream amortises every launch across S scenarios.
    assert batched_seconds < sequential_seconds, (
        f"batched {batched_seconds:.2f}s should beat sequential "
        f"{sequential_seconds:.2f}s")
    batched_stats = batched_device.as_dict()["kernels"]
    sequential_stats = sequential_device.as_dict()["kernels"]
    for kernel in ("branch_update", "bus_update"):
        assert (batched_stats[kernel]["elements_per_second"]
                > sequential_stats[kernel]["elements_per_second"]), (
            f"{kernel}: batched occupancy should beat sequential")

    bench_writer(RESULT_PATH, {
        "benchmark": "batch_throughput",
        "case": "case9",
        "n_scenarios": N_SCENARIOS,
        "batched_seconds": batched_seconds,
        "sequential_seconds": sequential_seconds,
        "speedup": sequential_seconds / batched_seconds,
        "batched_device": batched_device.as_dict(),
        "sequential_device": sequential_device.as_dict(),
    })
    print(f"wrote {RESULT_PATH}")
