"""Benchmark: batched rolling-horizon tracking — warm start vs. cold ablation.

The paper's tracking experiment warm-starts every period from the previous
solution; this benchmark runs it the way the execution stack now runs
everything: the whole fleet per period, in one stacked stream, with the
:class:`~repro.tracking.pipeline.WarmStartCache` threading each scenario's
state across periods.  An 8-scenario load-scaled fleet of the tracking case
follows a 12-period demand profile twice — warm-started and the cold-start
ablation — and the headline metric is the **total-ADMM-iteration ratio**
between the two runs (iteration counts are deterministic, so the gated
metric is noise-free on any host).

Tolerances are loosened the way the other throughput benchmarks loosen
their budgets (``outer_tol=1e-2`` with matching inner tolerances) so the
cold ablation actually converges in benchmark time; at that stopping
criterion the warm and cold objectives agree to the corresponding band
(asserted ≤ 10× the outer tolerance — the tight-tolerance agreement, down
to bitwise identity for S=1, lives in ``tests/test_tracking_pipeline.py``).

A warm run is additionally repeated through a 2-worker ``DevicePool`` with
shard affinity; its per-period solutions are asserted identical to the
single-device stream and its makespan and steal count are recorded.

Shape asserted: ≥ 2× fewer total inner iterations warm vs. cold, every
period converged in both runs, and a ≥ 1.5× makespan advantage.  Results
go to ``BENCH_tracking.json``.  ``REPRO_BENCH_SMOKE=1`` shrinks the run to
2 scenarios × 4 periods (the CI tracking-smoke leg).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.admm.parameters import parameters_for_case
from repro.analysis.experiments import (
    bench_tracking_case,
    bench_tracking_periods,
    render_tracking_table,
    tracking_rows,
)
from repro.grid.cases import load_case
from repro.parallel import DevicePool
from repro.scenarios import tracking_fleet
from repro.tracking import make_load_profile, track_horizon_batch
from repro.tracking.horizon import relative_gap_series

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_tracking.json"


def assert_identical_per_period(pooled, reference) -> None:
    for period_a, period_b in zip(pooled.periods, reference.periods):
        for a, b in zip(period_a.solutions, period_b.solutions):
            assert a.inner_iterations == b.inner_iterations
            assert np.array_equal(a.pg, b.pg)
            assert np.array_equal(a.vm, b.vm)
            assert np.array_equal(a.va, b.va)


def test_tracking_warm_start_iteration_ratio(benchmark, smoke, bench_merger):
    case = bench_tracking_case()
    network = load_case(case)
    n_scenarios = 2 if smoke else 8
    n_periods = 4 if smoke else bench_tracking_periods()
    # Loose-but-converging budgets: the cold ablation must actually converge
    # (capped runs would make the iteration ratio meaningless).
    params = parameters_for_case(network, outer_tol=1e-2,
                                 inner_tol_primal=1e-3, inner_tol_dual=1e-2)
    fleet = tracking_fleet(network, kind="load", n_scenarios=n_scenarios,
                           spread=0.06)
    profile = make_load_profile(n_periods=n_periods, seed=0)

    warm = benchmark.pedantic(
        track_horizon_batch, args=(fleet, profile),
        kwargs=dict(params=params, warm_start=True), rounds=1, iterations=1)
    cold = track_horizon_batch(fleet, profile, params=params, warm_start=False)

    assert all(p.converged.all() for p in warm.periods)
    assert all(p.converged.all() for p in cold.periods)

    iteration_speedup = cold.total_inner_iterations / warm.total_inner_iterations
    makespan_speedup = cold.total_seconds / warm.total_seconds
    gaps = relative_gap_series(warm.objectives, cold.objectives)
    # Periods beyond the (identical) cold start agree to the band the loose
    # stopping criterion determines objectives to.
    assert gaps.max() <= 10 * params.outer_tol, (
        f"warm-vs-cold objective gap {gaps.max():.3f} exceeds the "
        f"solver-tolerance band {10 * params.outer_tol:.3f}")

    # The same warm horizon through a DevicePool with shard affinity: the
    # re-merged per-period results must be identical to the stream's.
    pool = DevicePool(n_workers=2, executor="sequential",
                      chunk_scenarios=max(1, n_scenarios // 4))
    pooled = track_horizon_batch(fleet, profile, params=params,
                                 warm_start=True, pool=pool)
    assert_identical_per_period(pooled, warm)

    print()
    print(render_tracking_table(
        tracking_rows(warm, cold),
        title=f"Rolling-horizon tracking, {n_scenarios} scenarios x "
              f"{n_periods} periods ({case})"))
    print(f"\niteration speedup (cold/warm): {iteration_speedup:.2f}x, "
          f"makespan speedup: {makespan_speedup:.2f}x")
    print(f"pooled warm run: makespan {pooled.total_seconds:.2f}s, "
          f"{pooled.n_steals} steals over {pooled.n_workers} workers")

    assert iteration_speedup >= 2.0, (
        f"warm start saved only {iteration_speedup:.2f}x iterations "
        f"({warm.total_inner_iterations} warm vs "
        f"{cold.total_inner_iterations} cold)")
    assert makespan_speedup >= 1.5

    bench_merger(RESULT_PATH, {
        "benchmark": "tracking_throughput",
        "case": case,
        "scenarios": [s.name for s in fleet.scenarios],
        "n_scenarios": n_scenarios,
        "n_periods": n_periods,
        "params": {"outer_tol": params.outer_tol,
                   "inner_tol_primal": params.inner_tol_primal,
                   "inner_tol_dual": params.inner_tol_dual,
                   "max_outer": params.max_outer,
                   "max_inner": params.max_inner},
        "iteration_speedup": iteration_speedup,
        "makespan_speedup": makespan_speedup,
        "max_objective_gap": float(gaps.max()),
        "warm": {
            "total_inner_iterations": warm.total_inner_iterations,
            "makespan_seconds": warm.total_seconds,
            "per_period_iterations": [int(p.iterations.sum())
                                      for p in warm.periods],
        },
        "cold": {
            "total_inner_iterations": cold.total_inner_iterations,
            "makespan_seconds": cold.total_seconds,
            "per_period_iterations": [int(p.iterations.sum())
                                      for p in cold.periods],
        },
        "pool": {
            "n_workers": pooled.n_workers,
            "executor": pooled.executor,
            "makespan_seconds": pooled.total_seconds,
            "n_steals": pooled.n_steals,
        },
    }, workers=pooled.n_workers)
    print(f"wrote {RESULT_PATH}")
