"""Benchmark: multi-device scenario sharding scales the batch across a pool.

The workload is the same 8-scenario heterogeneous N-1 batch of
``pegase118_like`` the compaction benchmark uses (each outage screened at
its own operating point, so per-scenario solve times differ by design).  A
``DevicePool`` shards it across 1 / 2 / 4 workers with cost-aware placement
and work-stealing rebalance; per-scenario solutions are asserted identical
— same iterates — to the single-device batched solve at every width.

**What is timed.**  Each chunk's solve runs on its own simulated device and
is timed inside the worker; a worker's busy time is the sum of its chunks
and the pool's *makespan* (max per-worker busy time) is the wall-clock a
fleet of real devices would need.  The scaling assertion uses the
sequential executor, which runs chunks one at a time so the per-chunk
timings are contention-free — on a single-core CI host, concurrent worker
processes merely timeshare the core and real wall-clock cannot improve, so
asserting on it would measure the host, not the scheduler.  A 2-worker
``multiprocessing`` run is still executed to verify the default executor
end-to-end (identical solutions through real process boundaries) and its
wall-clock is recorded for multi-core machines.

Shape asserted: ≥ 2× makespan speedup at 4 workers vs 1 (the batch's
heterogeneity caps the ideal 4× — the hardest scenario bounds the makespan
from below; stealing is what keeps the remaining workers busy).  Results,
including the per-worker chunk log and merged device metrics, go to
``BENCH_pool.json``.

``REPRO_BENCH_POOL_WORKERS`` overrides the worker-count sweep (the CI
pool-smoke leg runs ``1,2``); ``REPRO_BENCH_SMOKE=1`` shrinks iteration
budgets and relaxes the bar accordingly.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np
from test_compaction_throughput import CASE, heterogeneous_n1_batch

from repro.admm import solve_acopf_admm_batch
from repro.admm.parameters import parameters_for_case
from repro.analysis.reporting import render_table
from repro.grid.cases import load_case
from repro.parallel import DevicePool, SimulatedDevice

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_pool.json"


def pool_worker_counts() -> list[int]:
    """Worker-count sweep (``REPRO_BENCH_POOL_WORKERS``, default ``1,2,4``).

    1 is always included: the speedup metric is "makespan at N workers vs
    1", so the sweep needs its baseline even when the env var omits it.
    """
    raw = os.environ.get("REPRO_BENCH_POOL_WORKERS", "1,2,4")
    counts = {max(1, int(item)) for item in raw.split(",") if item.strip()}
    return sorted(counts | {1}) if counts else [1, 2, 4]


def assert_identical(pooled, reference) -> None:
    for a, b in zip(pooled, reference):
        assert a.inner_iterations == b.inner_iterations
        assert a.outer_iterations == b.outer_iterations
        assert np.array_equal(a.vm, b.vm)
        assert np.array_equal(a.va, b.va)
        assert np.array_equal(a.pg, b.pg)
        assert np.array_equal(a.qg, b.qg)


def test_pool_scaling_on_heterogeneous_n1_batch(benchmark, smoke, bench_merger):
    scenario_set = heterogeneous_n1_batch()
    if smoke:
        params = parameters_for_case(load_case(CASE), max_outer=2, max_inner=12,
                                     outer_tol=1e-2)
    else:
        params = parameters_for_case(load_case(CASE), max_outer=3, max_inner=40,
                                     outer_tol=1e-2)
    worker_counts = pool_worker_counts()

    reference_device = SimulatedDevice(name="single-device")
    reference = solve_acopf_admm_batch(scenario_set, params=params,
                                       device=reference_device)

    # chunk_scenarios=1 keeps the dispatched unit identical at every pool
    # width, so the sweep isolates scheduling (placement + stealing) from
    # within-chunk batching effects.
    reports = {}
    for workers in worker_counts:
        pool = DevicePool(n_workers=workers, executor="sequential",
                          chunk_scenarios=1)
        if workers == worker_counts[-1]:
            report = benchmark.pedantic(pool.solve, args=(scenario_set,),
                                        kwargs=dict(params=params),
                                        rounds=1, iterations=1)
        else:
            report = pool.solve(scenario_set, params=params)
        assert_identical(report.solutions, reference)
        reports[workers] = report

    max_workers = worker_counts[-1]
    base = reports[worker_counts[0]]
    top = reports[max_workers]
    speedup = base.makespan_seconds / top.makespan_seconds

    process_pool = DevicePool(n_workers=min(2, max_workers), executor="process",
                              chunk_scenarios=1)
    process_report = process_pool.solve(scenario_set, params=params)
    assert_identical(process_report.solutions, reference)

    print()
    print(render_table(
        ["workers", "makespan (s)", "total busy (s)", "speedup", "steals"],
        [[w, reports[w].makespan_seconds, reports[w].total_busy_seconds,
          base.makespan_seconds / reports[w].makespan_seconds,
          reports[w].n_steals] for w in worker_counts],
        title=f"DevicePool scaling, 8-scenario heterogeneous N-1 x {CASE}"))
    print(f"\nmakespan speedup at {max_workers} workers: {speedup:.2f}x")
    print(f"process executor ({process_report.n_workers} workers): "
          f"wall {process_report.wall_seconds:.2f}s, "
          f"makespan {process_report.makespan_seconds:.2f}s")

    if max_workers >= 4:
        required = 1.3 if smoke else 2.0
    elif max_workers >= 2:
        required = 1.2
    else:
        required = 1.0
    assert speedup >= required, (
        f"{max_workers}-worker makespan {top.makespan_seconds:.2f}s vs "
        f"1-worker {base.makespan_seconds:.2f}s "
        f"({speedup:.2f}x, required ≥ {required}x)")

    bench_merger(RESULT_PATH, {
        "benchmark": "pool_throughput",
        "case": CASE,
        "scenarios": [s.name for s in scenario_set.scenarios],
        "params": {"max_outer": params.max_outer, "max_inner": params.max_inner,
                   "outer_tol": params.outer_tol},
        "worker_counts": worker_counts,
        "speedup": speedup,
        "single_device_seconds": reference[-1].solve_seconds,
        "sweep": {str(w): reports[w].as_dict() for w in worker_counts},
        "process_executor": process_report.as_dict(),
    }, workers=max_workers)
    print(f"wrote {RESULT_PATH}")
