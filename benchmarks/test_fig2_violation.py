"""Benchmark: Figure 2 — maximum constraint violation under warm start.

Prints the per-period ‖c(x)‖∞ of the warm-started ADMM solutions over the
tracking horizon and asserts the paper's observation: the violation stays at
cold-start levels (no deterioration as the horizon progresses).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.experiments import render_figure2


def test_fig2_constraint_violation(benchmark, tracking_results):
    experiment = tracking_results
    benchmark.pedantic(render_figure2, args=(experiment,), rounds=1, iterations=1)
    print()
    print(render_figure2(experiment))

    violations = experiment.admm_violations
    assert violations.shape == (experiment.periods,)
    # Paper Figure 2: violations remain in the cold-start band (1e-4..1e-2,
    # we allow a small amount of headroom) across all periods.
    assert np.all(violations < 5e-2)
    # No systematic deterioration: the late-horizon violations are not an
    # order of magnitude worse than the early ones.
    early = violations[: max(2, len(violations) // 3)].mean()
    late = violations[-max(2, len(violations) // 3):].mean()
    assert late < max(10 * early, 2e-2)
