#!/usr/bin/env python
"""CI performance-regression gate: compare fresh BENCH_*.json to baselines.

Every throughput benchmark writes a ``BENCH_*.json`` artifact; blessed
copies of those artifacts live in ``benchmarks/baselines/``.  This script
compares the *gated metric* of each fresh artifact against its baseline and
fails (exit 1) when the fresh value has dropped by more than the tolerance
(default 25 %).

The gated metrics are all **speedup ratios** (compacted vs full sweep,
batched vs sequential, pooled makespan at N workers vs 1), not absolute
wall-clock numbers — ratios compare a machine to itself, so the gate is
meaningful on CI runners of any speed.  Baselines are recorded at smoke
sizes (``REPRO_BENCH_SMOKE=1``) because that is what the PR-gating job
runs; a fresh artifact whose ``smoke_mode`` disagrees with its baseline is
skipped with a warning rather than compared apples-to-oranges (the weekly
full-size workflow uploads artifacts without gating).

Updating a baseline (see EXPERIMENTS.md for the full workflow)::

    REPRO_BENCH_SMOKE=1 PYTHONPATH=src python -m pytest \
        benchmarks/test_compaction_throughput.py \
        benchmarks/test_batch_throughput.py \
        benchmarks/test_pool_throughput.py \
        benchmarks/test_tracking_throughput.py \
        "benchmarks/test_ablation_penalty.py::test_ablation_adaptive_rho_tracking" -q
    cp BENCH_compaction.json BENCH_batch.json BENCH_pool.json \
        BENCH_tracking.json benchmarks/baselines/

then bless each gated value in each copied file: move the measured
``speedup`` into ``speedup_measured`` and set ``speedup`` slightly below
it, so run-to-run noise at smoke sizes doesn't trip the gate (same for
``iteration_speedup`` and ``adaptive_iteration_speedup`` in
``BENCH_tracking.json``).  A gated metric that is **absent from the
committed baseline** is reported and skipped rather than failed — that is
how a new gate rolls out before its first baseline refresh.

Usage::

    python benchmarks/check_regression.py [--results-dir .] \
        [--baseline-dir benchmarks/baselines] [--tolerance 0.25] [--require-all]
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

#: file name -> ((dotted metric path, per-metric tolerance or None), ...)
GATED_METRICS: dict[str, tuple[tuple[str, float | None], ...]] = {
    "BENCH_compaction.json": (("speedup", None),),
    "BENCH_batch.json": (("speedup", None),),
    "BENCH_pool.json": (("speedup", None),),
    # warm-start tracking: cold/warm total-ADMM-iteration ratio, plus the
    # fixed-ρ/adaptive-ρ ratio of the penalty ablation — iteration counts
    # are deterministic, so both gates are noise-free by construction
    "BENCH_tracking.json": (("iteration_speedup", None),
                            ("adaptive_iteration_speedup", None)),
}


def extract(payload: dict, dotted: str):
    value = payload
    for key in dotted.split("."):
        if not isinstance(value, dict) or key not in value:
            raise KeyError(dotted)
        value = value[key]
    return float(value)


def check_file(name: str, results_dir: Path, baseline_dir: Path,
               default_tolerance: float, require_all: bool) -> tuple[bool, str]:
    """Returns ``(ok, message)`` for one artifact/baseline pair."""
    metrics = GATED_METRICS[name]
    baseline_path = baseline_dir / name
    fresh_path = results_dir / name

    if not baseline_path.exists():
        return True, f"SKIP {name}: no baseline committed"
    if not fresh_path.exists():
        message = f"{name}: baseline exists but no fresh artifact was produced"
        return (not require_all), ("FAIL " if require_all else "SKIP ") + message

    try:
        baseline = json.loads(baseline_path.read_text())
        fresh = json.loads(fresh_path.read_text())
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        # a truncated / corrupt artifact must fail loudly, not crash the gate
        return False, f"FAIL {name}: malformed JSON ({exc})"
    if not isinstance(baseline, dict) or not isinstance(fresh, dict):
        return False, f"FAIL {name}: artifact is not a JSON object"
    if bool(baseline.get("smoke_mode")) != bool(fresh.get("smoke_mode")):
        return True, (f"SKIP {name}: smoke_mode mismatch "
                      f"(baseline={baseline.get('smoke_mode')}, "
                      f"fresh={fresh.get('smoke_mode')}) — not comparable")
    if baseline.get("worker_count") != fresh.get("worker_count"):
        # e.g. a local REPRO_BENCH_POOL_WORKERS=1,2 run vs the committed
        # 4-worker baseline: a 2-worker speedup is not a regression
        return True, (f"SKIP {name}: worker_count mismatch "
                      f"(baseline={baseline.get('worker_count')}, "
                      f"fresh={fresh.get('worker_count')}) — not comparable")
    # artifacts predating the backend stamp were all NumPy-produced
    baseline_backend = baseline.get("backend") or "numpy"
    fresh_backend = fresh.get("backend") or "numpy"
    if baseline_backend != fresh_backend:
        # e.g. a REPRO_BACKEND=numba run vs the committed NumPy baseline: a
        # different kernel implementation is a different machine, not a
        # regression of this one
        return True, (f"SKIP {name}: kernel-backend mismatch "
                      f"(baseline={baseline_backend}, "
                      f"fresh={fresh_backend}) — not comparable")

    ok = True
    compared = False
    details = []
    for metric, tolerance in metrics:
        tolerance = default_tolerance if tolerance is None else tolerance
        try:
            baseline_value = extract(baseline, metric)
        except KeyError:
            # metric not blessed in the committed baseline yet (staged
            # rollout of a new gate): note it, keep gating the others
            details.append(f"{metric} not in baseline (not yet blessed)")
            continue
        except (TypeError, ValueError):
            ok = False
            details.append(f"gated metric {metric!r} is not numeric in baseline")
            continue
        try:
            fresh_value = extract(fresh, metric)
        except KeyError:
            # a renamed / missing gated key is a harness bug, not a skip: it
            # would otherwise silently disarm the gate
            ok = False
            details.append(f"gated metric {metric!r} missing from artifact")
            continue
        except (TypeError, ValueError):
            ok = False
            details.append(f"gated metric {metric!r} is not numeric")
            continue
        compared = True
        floor = baseline_value * (1.0 - tolerance)
        detail = (f"{metric} fresh={fresh_value:.3f} "
                  f"baseline={baseline_value:.3f} "
                  f"(floor={floor:.3f}, tolerance={tolerance:.0%}, "
                  f"baseline sha={baseline.get('git_sha', 'unknown')[:8]})")
        if fresh_value < floor:
            ok = False
        details.append(detail)
    joined = f"{name}: " + "; ".join(details)
    if not ok:
        return False, f"FAIL {joined}"
    if not compared:
        return True, f"SKIP {joined}"
    return True, f"OK   {joined}"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument("--results-dir", type=Path, default=Path("."),
                        help="directory holding the fresh BENCH_*.json files")
    parser.add_argument("--baseline-dir", type=Path,
                        default=Path(__file__).resolve().parent / "baselines")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional drop before failing "
                             "(default 0.25 = 25%%)")
    parser.add_argument("--require-all", action="store_true",
                        help="fail when a committed baseline has no fresh "
                             "artifact (CI: every gated benchmark must run)")
    args = parser.parse_args(argv)

    failed = False
    for name in sorted(GATED_METRICS):
        ok, message = check_file(name, args.results_dir, args.baseline_dir,
                                 args.tolerance, args.require_all)
        print(message)
        failed = failed or not ok

    if failed:
        print("\nperformance regression gate FAILED — if the drop is expected "
              "(e.g. a deliberate trade-off), refresh the baselines per "
              "EXPERIMENTS.md and commit them with the change")
        return 1
    print("\nperformance regression gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
