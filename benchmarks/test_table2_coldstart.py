"""Benchmark: Table II — solving ACOPF from cold start.

Reproduces the paper's cold-start comparison between the component-based
two-level ADMM and the centralized interior-point baseline: ADMM iteration
counts, wall-clock time of both solvers, the maximum constraint violation of
the ADMM solution, and its relative objective gap.

Shape asserted (paper Table II): violations in the 1e-4 … ~1.5e-2 band,
objective gaps below ~2.5 %, and iteration counts in the hundreds to
thousands.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.experiments import render_table2


def test_table2_coldstart(benchmark, coldstart_rows):
    rows = coldstart_rows
    # The heavy solves happen once in the session fixture; the benchmark
    # records the (cheap) table assembly so pytest-benchmark has a record,
    # while the printed table carries the per-case solve times.
    benchmark.pedantic(render_table2, args=(rows,), rounds=1, iterations=1)
    print()
    print(render_table2(rows))

    for row in rows:
        assert 100 <= row.admm_iterations <= 20000
        assert row.max_violation < 2.5e-2, f"{row.case}: violation {row.max_violation}"
        assert row.relative_gap < 0.025, f"{row.case}: gap {row.relative_gap:.3%}"
        assert row.admm_seconds > 0 and row.ipm_seconds > 0
        assert np.isfinite(row.admm_objective) and np.isfinite(row.ipm_objective)
