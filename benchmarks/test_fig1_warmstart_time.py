"""Benchmark: Figure 1 — cumulative computation time under warm start.

Reproduces the paper's tracking experiment: a horizon of one-minute periods
with drifting load, the first period solved cold and the rest warm-started.
The printed series is the data behind Figure 1 (cumulative seconds per
period) for the ADMM solver and the centralized baseline.

Shape asserted: warm-started ADMM periods are substantially cheaper than the
cold-start period (the paper's headline warm-start claim).  Note that at the
scaled-down benchmark sizes the centralized baseline is still fast in
absolute terms — the paper's absolute-time crossover appears only at the
thousands-of-buses scale documented in EXPERIMENTS.md.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.experiments import render_figure1


def test_fig1_cumulative_time(benchmark, tracking_results):
    experiment = tracking_results
    benchmark.pedantic(render_figure1, args=(experiment,), rounds=1, iterations=1)
    print()
    print(render_figure1(experiment))

    admm_cumulative = experiment.admm_cumulative_seconds
    assert admm_cumulative.shape == (experiment.periods,)
    assert np.all(np.diff(admm_cumulative) >= 0)

    per_period = np.diff(admm_cumulative, prepend=0.0)
    cold = per_period[0]
    warm = per_period[1:]
    assert warm.size >= 3
    # Warm-started periods must be cheaper than the cold start on average —
    # the paper reports a large factor; we require at least 1.5x.
    assert warm.mean() < cold / 1.5, (
        f"warm-start periods ({warm.mean():.2f}s avg) not cheaper than cold start ({cold:.2f}s)")
