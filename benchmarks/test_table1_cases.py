"""Benchmark: Table I — data and parameters for the experiments.

Regenerates the paper's case-inventory table (generator / branch / bus counts
and the consensus penalty parameters) for the benchmark case suite, and
checks that the full-size synthetic analogues reproduce the paper's exact
component counts.
"""

from __future__ import annotations

from repro.analysis.experiments import bench_cases, render_table1, table1
from repro.grid.cases import PAPER_SYSTEM_SIZES, load_case


def test_table1_case_inventory(benchmark):
    rows = benchmark.pedantic(table1, args=(bench_cases(),), rounds=1, iterations=1)
    print()
    print(render_table1(bench_cases()))

    assert len(rows) == len(bench_cases())
    for row in rows:
        assert row["buses"] > 0
        assert row["branches"] >= row["buses"] - 1
        assert row["rho_va"] > row["rho_pq"] > 0


def test_table1_full_size_analogues(benchmark):
    """The pegase-scale synthetic analogues reproduce the paper's exact counts."""

    def build():
        return {name: load_case(f"{name}_like")
                for name, (buses, _, _) in PAPER_SYSTEM_SIZES.items() if buses <= 3000}

    networks = benchmark.pedantic(build, rounds=1, iterations=1)
    for name, network in networks.items():
        buses, gens, branches = PAPER_SYSTEM_SIZES[name]
        assert network.n_bus == buses
        assert network.n_gen == gens
        assert network.n_branch == branches
