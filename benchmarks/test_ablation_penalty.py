"""Ablation benchmark: sensitivity to the consensus penalty parameters.

The paper fixes (rho_pq, rho_va) per case (Table I) and highlights automatic
penalty selection as future work.  This ablation quantifies the trade-off on
one small case: larger penalties enforce consensus more aggressively (fewer
iterations, smaller violation) at the price of a larger objective gap.
"""

from __future__ import annotations

import numpy as np

from repro.admm import AdmmParameters, solve_acopf_admm
from repro.analysis.metrics import relative_objective_gap
from repro.analysis.reporting import render_table
from repro.baseline import solve_acopf_ipm
from repro.grid.cases import load_case

CASE = "pegase30_like"
SWEEP = [(1e2, 1e4), (4e2, 4e4), (2e3, 2e5)]


def run_sweep():
    network = load_case(CASE)
    baseline = solve_acopf_ipm(network)
    rows = []
    for rho_pq, rho_va in SWEEP:
        params = AdmmParameters(rho_pq=rho_pq, rho_va=rho_va)
        solution = solve_acopf_admm(network, params=params)
        rows.append({
            "rho_pq": rho_pq,
            "rho_va": rho_va,
            "iterations": solution.inner_iterations,
            "seconds": solution.solve_seconds,
            "violation": solution.max_constraint_violation,
            "gap": relative_objective_gap(solution.objective, baseline.objective),
        })
    return rows


def test_ablation_penalty_tradeoff(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print()
    print(render_table(
        ["rho_pq", "rho_va", "iterations", "time (s)", "||c(x)||inf", "gap"],
        [[r["rho_pq"], r["rho_va"], r["iterations"], r["seconds"], r["violation"], r["gap"]]
         for r in rows],
        title=f"Penalty ablation on {CASE}"))

    # Every configuration must still produce a usable solution.
    for row in rows:
        assert row["violation"] < 5e-2
        assert row["gap"] < 0.10
    # The largest penalty must not be the best on objective gap — i.e. the
    # trade-off the paper describes is visible.
    gaps = np.array([r["gap"] for r in rows])
    assert gaps[-1] >= gaps.min() - 1e-12
