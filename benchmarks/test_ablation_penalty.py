"""Ablation benchmarks: sensitivity to the consensus penalty parameters.

The paper fixes (rho_pq, rho_va) per case (Table I) and highlights automatic
penalty selection as future work.  Two ablations live here:

* ``test_ablation_penalty_tradeoff`` quantifies the fixed-ρ trade-off on one
  small case — larger penalties enforce consensus more aggressively (fewer
  iterations, smaller violation) at the price of a larger objective gap;
* ``test_ablation_adaptive_rho_tracking`` runs the smoke tracking workload
  with the opt-in residual-balancing adaptation (``adaptive_rho=True``)
  against the fixed-ρ warm run and records the **fixed/adaptive
  total-inner-iteration ratio** into ``BENCH_tracking.json`` as
  ``adaptive_iteration_speedup`` (deterministic, noise-free, gated by
  ``check_regression.py``).  The adaptive run's ρ-cache seeds each period
  from the previous period's converged penalties, and a pooled adaptive run
  is asserted bitwise identical to the single-device stream.
"""

from __future__ import annotations

from dataclasses import replace
from pathlib import Path

import numpy as np

from repro.admm import AdmmParameters, solve_acopf_admm
from repro.admm.parameters import parameters_for_case
from repro.analysis.experiments import bench_tracking_case, bench_tracking_periods
from repro.analysis.metrics import relative_objective_gap
from repro.analysis.reporting import render_table
from repro.baseline import solve_acopf_ipm
from repro.grid.cases import load_case
from repro.parallel import DevicePool
from repro.scenarios import tracking_fleet
from repro.tracking import make_load_profile, track_horizon_batch
from repro.tracking.horizon import relative_gap_series

CASE = "pegase30_like"
SWEEP = [(1e2, 1e4), (4e2, 4e4), (2e3, 2e5)]
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_tracking.json"


def run_sweep():
    network = load_case(CASE)
    baseline = solve_acopf_ipm(network)
    rows = []
    for rho_pq, rho_va in SWEEP:
        params = AdmmParameters(rho_pq=rho_pq, rho_va=rho_va)
        solution = solve_acopf_admm(network, params=params)
        rows.append({
            "rho_pq": rho_pq,
            "rho_va": rho_va,
            "iterations": solution.inner_iterations,
            "seconds": solution.solve_seconds,
            "violation": solution.max_constraint_violation,
            "gap": relative_objective_gap(solution.objective, baseline.objective),
        })
    return rows


def test_ablation_penalty_tradeoff(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print()
    print(render_table(
        ["rho_pq", "rho_va", "iterations", "time (s)", "||c(x)||inf", "gap"],
        [[r["rho_pq"], r["rho_va"], r["iterations"], r["seconds"], r["violation"], r["gap"]]
         for r in rows],
        title=f"Penalty ablation on {CASE}"))

    # Every configuration must still produce a usable solution.
    for row in rows:
        assert row["violation"] < 5e-2
        assert row["gap"] < 0.10
    # The largest penalty must not be the best on objective gap — i.e. the
    # trade-off the paper describes is visible.
    gaps = np.array([r["gap"] for r in rows])
    assert gaps[-1] >= gaps.min() - 1e-12


def assert_identical_per_period(pooled, reference) -> None:
    for period_a, period_b in zip(pooled.periods, reference.periods):
        for a, b in zip(period_a.solutions, period_b.solutions):
            assert a.inner_iterations == b.inner_iterations
            assert a.rho_pq == b.rho_pq and a.rho_va == b.rho_va
            assert np.array_equal(a.pg, b.pg)
            assert np.array_equal(a.vm, b.vm)
            assert np.array_equal(a.va, b.va)


def test_ablation_adaptive_rho_tracking(benchmark, smoke, bench_merger):
    """Fixed-ρ vs adaptive-ρ warm tracking: the paper's named future work.

    Same workload and budgets as ``test_tracking_warm_start_iteration_ratio``
    so the two contributions to ``BENCH_tracking.json`` stay comparable.
    """
    case = bench_tracking_case()
    network = load_case(case)
    n_scenarios = 2 if smoke else 8
    n_periods = 4 if smoke else bench_tracking_periods()
    fixed_params = parameters_for_case(network, outer_tol=1e-2,
                                       inner_tol_primal=1e-3,
                                       inner_tol_dual=1e-2)
    adaptive_params = replace(fixed_params, adaptive_rho=True)
    fleet = tracking_fleet(network, kind="load", n_scenarios=n_scenarios,
                           spread=0.06)
    profile = make_load_profile(n_periods=n_periods, seed=0)

    adaptive = benchmark.pedantic(
        track_horizon_batch, args=(fleet, profile),
        kwargs=dict(params=adaptive_params, warm_start=True),
        rounds=1, iterations=1)
    fixed = track_horizon_batch(fleet, profile, params=fixed_params,
                                warm_start=True)

    assert all(p.converged.all() for p in fixed.periods)
    assert all(p.converged.all() for p in adaptive.periods)

    # Residual balancing must not trade iterations for solution quality:
    # both runs stop at the same criterion, so objectives agree to the band
    # the loose tolerance determines them to.
    gaps = relative_gap_series(adaptive.objectives, fixed.objectives)
    assert gaps.max() <= 10 * fixed_params.outer_tol, (
        f"adaptive-vs-fixed objective gap {gaps.max():.3f} exceeds the "
        f"solver-tolerance band {10 * fixed_params.outer_tol:.3f}")

    ratio = fixed.total_inner_iterations / adaptive.total_inner_iterations
    print(f"\nadaptive-rho iteration speedup (fixed/adaptive): {ratio:.2f}x "
          f"({fixed.total_inner_iterations} fixed vs "
          f"{adaptive.total_inner_iterations} adaptive)")

    # The adaptive horizon through a 2-worker DevicePool: ShardTasks carry
    # each scenario's cached penalties, so pooled == single-device bitwise.
    pool = DevicePool(n_workers=2, executor="sequential",
                      chunk_scenarios=max(1, n_scenarios // 4))
    pooled = track_horizon_batch(fleet, profile, params=adaptive_params,
                                 warm_start=True, pool=pool)
    assert_identical_per_period(pooled, adaptive)

    assert ratio > 1.0, (
        f"adaptive rho used MORE iterations than fixed "
        f"({adaptive.total_inner_iterations} vs "
        f"{fixed.total_inner_iterations})")

    bench_merger(RESULT_PATH, {
        "adaptive_iteration_speedup": ratio,
        "adaptive_max_objective_gap": float(gaps.max()),
        "adaptive_params": {
            "adaptive_rho_ratio": adaptive_params.adaptive_rho_ratio,
            "adaptive_rho_factor": adaptive_params.adaptive_rho_factor,
            "adaptive_rho_interval": adaptive_params.adaptive_rho_interval,
        },
        "adaptive": {
            "total_inner_iterations": adaptive.total_inner_iterations,
            "per_period_iterations": [int(p.iterations.sum())
                                      for p in adaptive.periods],
        },
        "fixed_warm": {
            "total_inner_iterations": fixed.total_inner_iterations,
            "per_period_iterations": [int(p.iterations.sum())
                                      for p in fixed.periods],
        },
    }, workers=pooled.n_workers)
    print(f"merged adaptive ablation into {RESULT_PATH}")
