"""Ablation benchmarks: execution strategy and kernel backend.

The paper's core systems claim is that batching the branch NLPs (one GPU
thread block per branch in ExaTron) is what makes the component decomposition
fast.  The simulated analogue compares the vectorised batched TRON backend
against the loop backend (one branch at a time) for the same number of ADMM
iterations: identical numerics, very different wall-clock.

A second ablation sweeps the registered *kernel* backends (the orthogonal
axis: how each kernel is implemented, not how the batch is driven) over the
same solve, printing per-backend wall-clock and device kernel throughput;
exact backends must agree bitwise with the NumPy oracle.
"""

from __future__ import annotations

import time

import numpy as np

from repro.admm import AdmmParameters, solve_acopf_admm
from repro.analysis.reporting import render_table
from repro.grid.cases import load_case
from repro.parallel import SimulatedDevice, available_backends, get_backend

CASE = "case9"
ITERATION_BUDGET = dict(max_outer=2, max_inner=40)


def run_backend(backend: str):
    network = load_case(CASE)
    params = AdmmParameters(tron_backend=backend, **ITERATION_BUDGET)
    start = time.perf_counter()
    solution = solve_acopf_admm(network, params=params)
    elapsed = time.perf_counter() - start
    return solution, elapsed


def test_ablation_batched_vs_loop_backend(benchmark):
    def run_both():
        return {"batched": run_backend("batched"), "loop": run_backend("loop")}

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    batched_solution, batched_seconds = results["batched"]
    loop_solution, loop_seconds = results["loop"]

    print()
    print(render_table(
        ["backend", "time (s)", "objective", "inner iterations"],
        [["batched", batched_seconds, batched_solution.objective,
          batched_solution.inner_iterations],
         ["loop", loop_seconds, loop_solution.objective,
          loop_solution.inner_iterations]],
        title=f"Branch-solver backend ablation on {CASE} "
              f"(fixed {ITERATION_BUDGET['max_outer']}x{ITERATION_BUDGET['max_inner']} budget)"))
    print(f"batching speed-up: x{loop_seconds / max(batched_seconds, 1e-9):.1f}")

    # Same algorithm, same trajectory: objectives agree closely.
    assert np.isclose(batched_solution.objective, loop_solution.objective, rtol=1e-3)
    # Batching must win, and by a visible margin even on a 9-branch case.
    assert batched_seconds < loop_seconds


def run_kernel_backend(name: str):
    network = load_case(CASE)
    params = AdmmParameters(kernel_backend=name, **ITERATION_BUDGET)
    device = SimulatedDevice(name=f"ablation-{name}")
    start = time.perf_counter()
    solution = solve_acopf_admm(network, params=params, device=device)
    elapsed = time.perf_counter() - start
    return solution, elapsed, device


def test_ablation_kernel_backends(benchmark):
    """Sweep every registered kernel backend over the same fixed budget."""
    names = available_backends()

    def run_all():
        return {name: run_kernel_backend(name) for name in names}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    oracle_solution, _, _ = results["numpy"]

    rows = []
    for name in names:
        solution, elapsed, device = results[name]
        snapshot = device.as_dict()
        assert snapshot["backend"] == name
        kernel_elems = sum(rec["total_elements"]
                           for rec in snapshot["kernels"].values())
        throughput = kernel_elems / max(snapshot["total_seconds"], 1e-9)
        rows.append([name, "yes" if get_backend(name).exact else "no",
                     elapsed, solution.objective, throughput])
        if get_backend(name).exact:
            # The oracle contract: exact backends reproduce NumPy bitwise,
            # so the whole trajectory (hence the objective) is identical.
            assert solution.objective == oracle_solution.objective
            assert np.array_equal(solution.vm, oracle_solution.vm)
        else:
            assert np.isclose(solution.objective, oracle_solution.objective,
                              rtol=1e-6)

    print()
    print(render_table(
        ["kernel backend", "exact", "time (s)", "objective", "kernel elem/s"],
        rows,
        title=f"Kernel-backend ablation on {CASE} "
              f"(fixed {ITERATION_BUDGET['max_outer']}x{ITERATION_BUDGET['max_inner']} budget)"))
