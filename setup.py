"""Setup shim.

The project metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` also works on environments whose setuptools lacks PEP
660 editable-wheel support (no ``wheel`` package available), via the legacy
``setup.py develop`` code path.
"""

from setuptools import setup

setup()
